"""Ablation sweeps of the architecture's quantitative design choices."""

from conftest import bench_size

from repro.experiments import ablations
from repro.perf.report import format_table


def _print(name, rows):
    headers = list(rows[0].keys())
    print(f"\n== ablation: {name} ==")
    print(format_table(headers, [[r[h] for h in headers] for r in rows]))


def test_scoreboard_depth(once):
    rows = once(ablations.sweep_scoreboard, size=bench_size())
    _print("scoreboard depth (PR)", rows)
    # MLP is the point of the 63-entry scoreboard: deep >> shallow.
    assert rows[-1]["speedup"] > 2.5
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups)


def test_ruche_factor(once):
    rows = once(ablations.sweep_ruche_factor, size=bench_size())
    _print("ruche factor (FFT)", rows)
    by_factor = {r["ruche_factor"]: r["speedup"] for r in rows}
    # Long links beat plain mesh; returns flatten after factor 3.
    assert by_factor[3] > by_factor[0]
    assert by_factor[4] - by_factor[3] < by_factor[3] - by_factor[2] + 0.05


def test_mshr_capacity(once):
    rows = once(ablations.sweep_mshr, size=bench_size())
    _print("MSHR entries (miss-heavy SpGEMM)", rows)
    assert rows[-1]["speedup"] >= rows[0]["speedup"] - 0.02


def test_cache_capacity(once):
    rows = once(ablations.sweep_cache_sets, size=bench_size())
    _print("cache capacity (Fig-12 SpGEMM)", rows)
    assert rows[-1]["speedup"] > 1.5  # capacity matters for the multi-task set
