#!/usr/bin/env python
"""Engine host-throughput benchmark: events/sec and wall-clock per kernel.

Measures how fast the discrete-event engine itself runs (host wall-clock
and executed events per second) on a subset of the suite kernels, and
writes the results to ``BENCH_engine.json``.  Simulated cycle counts are
deterministic, so this file doubles as a quick regression check: if the
cycles in two ``BENCH_engine.json`` files differ for the same size and
config, the model changed behaviour, not just speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke    # CI seconds
    PYTHONPATH=src python benchmarks/bench_engine.py --kernels PR BFS
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch.config import HB_16x8, small_config  # noqa: E402
from repro.profile.speed import measure_suite  # noqa: E402

#: The kernels the default run times (a spread of network-bound, compute-
#: bound and irregular workloads); --kernels overrides.
DEFAULT_KERNELS = ["PR", "BFS", "SpGEMM", "AES", "SGEMM", "Jacobi"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny machine, two kernels, one repeat (CI)")
    parser.add_argument("--size", default="small",
                        choices=("tiny", "small", "full"))
    parser.add_argument("--kernels", nargs="+", default=None,
                        metavar="NAME", help=f"default: {DEFAULT_KERNELS}")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats; best is reported")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path (default: ./BENCH_engine.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        config = small_config(4, 4)
        size = "tiny"
        kernels = args.kernels or ["PR", "AES"]
        repeats = 1
    else:
        config = HB_16x8
        size = args.size
        kernels = args.kernels or list(DEFAULT_KERNELS)
        repeats = args.repeats

    print(f"config={config.name} size={size} repeats={repeats}")
    samples = {}
    for name in kernels:
        sample = measure_suite(config, size=size, kernels=[name],
                               repeats=repeats)[name]
        samples[name] = sample
        print(f"{name:8s} wall={sample['wall_seconds']:.3f}s "
              f"events={sample['events']:>9d} "
              f"events/sec={sample['events_per_sec']:>12,.0f} "
              f"cycles={sample['cycles']:g}")

    payload = {
        "config": config.name,
        "size": size,
        "repeats": repeats,
        "python": platform.python_version(),
        "kernels": samples,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
