#!/usr/bin/env python
"""Engine host-throughput benchmark: events/sec and wall-clock per kernel.

Measures how fast the discrete-event engine itself runs (host wall-clock
and executed events per second) on a subset of the suite kernels, and
writes the results to ``BENCH_engine.json``.  Simulated cycle counts are
deterministic, so this file doubles as a quick regression check: if the
cycles in two ``BENCH_engine.json`` files differ for the same size and
config, the model changed behaviour, not just speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke    # CI seconds
    PYTHONPATH=src python benchmarks/bench_engine.py --kernels PR BFS
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch.config import HB_16x8, small_config  # noqa: E402
from repro.profile.speed import measure_suite  # noqa: E402

#: All ten Table-I suite kernels; --kernels overrides.
DEFAULT_KERNELS = ["PR", "BFS", "SpGEMM", "AES", "SGEMM", "Jacobi",
                   "BS", "SW", "FFT", "BH"]

#: Default speed-trajectory file: every run appends one JSON line here,
#: so the repo keeps an auditable history of engine throughput.
DEFAULT_HISTORY = "BENCH_engine_history.jsonl"

_CALIBRATION_OPS = 200_000


def measure_pim(size: str, repeats: int) -> dict:
    """Wall-clock the memory-side GEMV offload (the PIM command path).

    Mirrors the sample shape of ``repro.profile.speed.measure_kernel``
    so the entry rides the same history/regression plumbing under the
    name ``GEMV/pim``.
    """
    from repro.experiments.pim_offload import _base_config, _offload_args
    from repro.pim.kernels import OFFLOADS
    from repro.session import run as run_kernel

    off = OFFLOADS["GEMV"]
    config = _base_config(size).with_pim()
    cell = (0, 0)
    best_wall = float("inf")
    events = 0
    result = None
    for _ in range(repeats):
        args = _offload_args(off, config, size)

        def preload(machine, args=args):
            off.preload(machine.memsys.pim_engines[cell], args)

        t0 = time.perf_counter()
        result = run_kernel(config, off.pim, args, cell=cell,
                            setup=preload, keep_machine=True)
        wall = time.perf_counter() - t0
        best_wall = min(best_wall, wall)
        events = result.machine.sim.events_executed
    return {
        "kernel": "GEMV/pim",
        "size": size,
        "config": result.config_name,
        "repeats": repeats,
        "wall_seconds": best_wall,
        "events": events,
        "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
        "cycles": result.cycles,
        "sim_cycles_per_sec": (result.cycles / best_wall
                               if best_wall > 0 else 0.0),
        "instructions": result.instructions,
        "num_tiles": result.num_tiles,
    }


def calibrate(loops: int = 3) -> float:
    """Host-speed yardstick: ops/sec of a fixed pure-Python workload.

    Stored alongside the benchmark so a regression check on a different
    machine can normalize away raw host speed (see check_regression.py).
    """
    best = 0.0
    for _ in range(loops):
        t0 = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_OPS):
            acc = (acc + i * 17) % 1000003
        dt = time.perf_counter() - t0
        if dt > 0:
            best = max(best, _CALIBRATION_OPS / dt)
    return best


def append_history(path: Path, payload: dict) -> None:
    """Append one slim JSONL line summarizing a benchmark run."""
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": payload["config"],
        "size": payload["size"],
        "repeats": payload["repeats"],
        "python": payload["python"],
        "calibration_ops_per_sec": payload.get("calibration_ops_per_sec"),
        "kernels": {
            name: {
                "wall_seconds": s["wall_seconds"],
                "events_per_sec": s["events_per_sec"],
                "sim_cycles_per_sec": s["sim_cycles_per_sec"],
                "cycles": s["cycles"],
            }
            for name, s in payload["kernels"].items()
        },
    }
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny machine, two kernels, one repeat (CI)")
    parser.add_argument("--size", default="small",
                        choices=("tiny", "small", "full"))
    parser.add_argument("--kernels", nargs="+", default=None,
                        metavar="NAME", help=f"default: {DEFAULT_KERNELS}")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats; best is reported")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path (default: ./BENCH_engine.json)")
    parser.add_argument("--history", default=DEFAULT_HISTORY, metavar="PATH",
                        help="speed-trajectory JSONL to append to "
                             f"(default: ./{DEFAULT_HISTORY})")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append to the history file")
    parser.add_argument("--no-pim", action="store_true",
                        help="skip the GEMV/pim offload entry")
    args = parser.parse_args(argv)

    if args.smoke:
        config = small_config(4, 4)
        size = "tiny"
        kernels = args.kernels or ["PR", "AES"]
        repeats = 1
    else:
        config = HB_16x8
        size = args.size
        kernels = args.kernels or list(DEFAULT_KERNELS)
        repeats = args.repeats

    print(f"config={config.name} size={size} repeats={repeats}")
    samples = {}
    for name in kernels:
        sample = measure_suite(config, size=size, kernels=[name],
                               repeats=repeats)[name]
        samples[name] = sample
        print(f"{name:8s} wall={sample['wall_seconds']:.3f}s "
              f"events={sample['events']:>9d} "
              f"events/sec={sample['events_per_sec']:>12,.0f} "
              f"cycles={sample['cycles']:g}")

    # One memory-side entry rides along unless the kernel list was
    # overridden (regression baselines predate the PIM subsystem).
    if not args.no_pim and args.kernels is None:
        sample = measure_pim(size, repeats)
        samples["GEMV/pim"] = sample
        print(f"{'GEMV/pim':8s} wall={sample['wall_seconds']:.3f}s "
              f"events={sample['events']:>9d} "
              f"events/sec={sample['events_per_sec']:>12,.0f} "
              f"cycles={sample['cycles']:g}")

    payload = {
        "config": config.name,
        "size": size,
        "repeats": repeats,
        "python": platform.python_version(),
        "calibration_ops_per_sec": calibrate(),
        "kernels": samples,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if not args.no_history:
        history = Path(args.history)
        append_history(history, payload)
        print(f"appended to {history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
