"""Fig 3: bisection utilization during sparse inter-Cell transfer."""

from conftest import bench_size

from repro.experiments import fig03_bisection_transfer as fig03
from repro.perf.report import format_series


def _transfer_bytes():
    return 1024 * 1024 if bench_size() == "full" else 128 * 1024


def test_fig03_horizontal(once):
    out = once(fig03.run, transfer_bytes=_transfer_bytes(),
               orientation="horizontal")
    print(f"\n== Fig 3 (horizontal adjacency, "
          f"{out['payload_bytes'] >> 10} KiB sparse) ==")
    print(f"active bisection utilization: {out['active_utilization']:.2f} "
          f"(peak link {out['peak_link_utilization']:.2f}; paper: 0.8-0.9 "
          "on the carrying links)")
    print(f"1024-bit hierarchical channel efficiency: "
          f"{out['wide_channel_efficiency']:.3f}")
    if out["series"]:
        print(format_series(out["series"][:64],
                            title="utilization over time (cut links)"))
    # Shape: the word network moves sparse data efficiently, wide
    # channels catastrophically.
    assert out["peak_link_utilization"] > 0.6
    assert out["wide_channel_efficiency"] < 0.05


def test_fig03_vertical(once):
    out = once(fig03.run, transfer_bytes=_transfer_bytes(),
               orientation="vertical")
    print(f"\n== Fig 3 (vertical adjacency) ==")
    print(f"active bisection utilization: {out['active_utilization']:.2f}")
    assert out["active_utilization"] > 0.3
