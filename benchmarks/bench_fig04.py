"""Fig 4: HW barrier latency vs software barriers."""

from repro.experiments import fig04_barrier as fig04
from repro.perf.report import format_table


def test_fig04_barrier_scaling(once):
    out = once(fig04.run)
    print("\n== Fig 4: barrier latency (cycles) ==")
    print(f"16x8 in-sweep via Ruche: {out['in_sweep_16x8']} (paper: 8)")
    print(format_table(
        ["group", "tiles", "HW(ruche)", "HW(mesh)", "SW"],
        [(r["group"], r["tiles"], r["hw_ruche"], r["hw_mesh"], r["sw"])
         for r in out["rows"]]))
    assert out["in_sweep_16x8"] == 8
    big = out["rows"][-1]
    assert big["sw"] > 10 * big["hw_ruche"]
    assert all(r["hw_ruche"] <= r["hw_mesh"] for r in out["rows"])
