"""Fig 10: incremental feature analysis over the benchmark suite."""

from conftest import bench_kernels, bench_size

from repro.experiments import fig10_incremental as fig10
from repro.perf.report import format_table

#: Default subset keeps the bench under a few minutes; set
#: REPRO_BENCH_KERNELS=AES,BS,SW,SGEMM,FFT,Jacobi,SpGEMM,PR,BFS,BH for all.
DEFAULT_KERNELS = ("AES", "PR", "Jacobi", "BH", "SGEMM", "SpGEMM")


def test_fig10_feature_ladder(once):
    kernels = bench_kernels(DEFAULT_KERNELS)
    out = once(fig10.run, size=bench_size(), kernels=kernels)
    print("\n== Fig 10: speedup over Baseline Manycore ==")
    rows = []
    for rung in out["rungs"]:
        rows.append([rung] + [out["speedups"][rung][k] for k in kernels]
                    + [out["geomean"][rung]])
    print(format_table(["config"] + list(kernels) + ["geomean"], rows))
    print(f"\nfinal geomean: {out['final_geomean']:.2f}x (paper: 5.2x)")

    geo = out["geomean"]
    rungs = out["rungs"]
    # Shape checks from the paper's reading of the figure:
    # every kernel ends faster than the baseline...
    final = out["speedups"][rungs[-1]]
    assert all(s > 1.0 for s in final.values())
    # ...the geomean improves overall and lands in the right ballpark...
    assert 2.5 < out["final_geomean"] < 12
    # ...density is a major contributor...
    density_gain = geo[rungs[3]] / geo[rungs[2]]
    assert density_gain > 1.0
    # ...and the full-feature machine beats the cellular baseline well.
    assert out["final_geomean"] > 1.5 * geo[rungs[3]]
    # BH benefits from IPOLY the most (when it is in the subset).
    if "BH" in final:
        ipoly_jump = (out["speedups"][rungs[8]]["BH"]
                      / out["speedups"][rungs[7]]["BH"])
        assert ipoly_jump > 1.5
