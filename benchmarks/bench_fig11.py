"""Fig 11: core and HBM2 utilization breakdowns per kernel."""

from conftest import bench_kernels, bench_size

from repro.experiments import fig11_utilization as fig11
from repro.perf.counters import BREAKDOWN_ORDER, HBM_ORDER
from repro.perf.report import format_stacked

DEFAULT_KERNELS = ("PR", "BFS", "SpGEMM", "BH", "Jacobi", "SGEMM", "SW",
                   "BS", "AES")


def test_fig11_utilization(once):
    kernels = bench_kernels(DEFAULT_KERNELS)
    out = once(fig11.run, size=bench_size(), kernels=kernels)
    print("\n== Fig 11: core utilization breakdown ==")
    print(format_stacked(out["core_breakdown"], BREAKDOWN_ORDER))
    print("\n== Fig 11: HBM2 utilization ==")
    print(format_stacked(out["hbm_breakdown"], HBM_ORDER))

    util = out["core_utilization"]
    hbm = out["hbm_breakdown"]
    # Memory-intensive kernels use the HBM channel harder than AES.
    if "PR" in util and "AES" in util:
        pr_hbm = hbm["PR"]["read"] + hbm["PR"]["write"] + hbm["PR"]["busy"]
        aes_hbm = hbm["AES"]["read"] + hbm["AES"]["write"] + hbm["AES"]["busy"]
        assert pr_hbm > aes_hbm
    # Compute kernels issue instructions at a higher rate than PR.
    if "SW" in util and "PR" in util:
        assert util["SW"] > util["PR"]
    # SW shows branch misses; BS shows fdiv/bypass pressure.
    if "SW" in out["core_breakdown"]:
        assert out["core_breakdown"]["SW"].get("stall_branch_miss", 0) > 0.01
    if "BS" in out["core_breakdown"]:
        bs = out["core_breakdown"]["BS"]
        assert bs.get("stall_fdiv", 0) + bs.get("stall_bypass", 0) > 0.02
