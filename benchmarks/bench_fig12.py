"""Fig 12: tile-group scaling of irregular SpGEMM."""

from conftest import bench_size

from repro.experiments import fig12_tilegroups as fig12
from repro.perf.report import format_table


def test_fig12_tile_groups(once):
    scale = 0.25 if bench_size() == "full" else 0.15
    out = once(fig12.run, scale=scale)
    print("\n== Fig 12: SpGEMM (WV-like) vs tile-group shape ==")
    print(format_table(
        ["groups", "shape", "cycles", "throughput x", "HBM r+w", "HBM x"],
        [(r["groups"], r["shape"], r["cycles"], r["throughput_x"],
          r["hbm_rw"], r["hbm_x"]) for r in out["rows"]]))
    print(f"best shape: {out['best_shape']} at "
          f"{out['best_throughput_x']:.2f}x (paper: 4x4 at ~4x)")

    rows = {r["shape"]: r for r in out["rows"]}
    # Smaller groups beat the single whole-Cell group substantially...
    assert rows["4x4"]["throughput_x"] > 2.0
    # ...HBM utilization rises with task-level parallelism...
    assert rows["4x4"]["hbm_x"] > 1.5
    # ...and returns diminish below 4x4 (working sets blow the cache).
    assert rows["2x2"]["throughput_x"] < rows["4x4"]["throughput_x"]
