"""Fig 13: energy per instruction vs the OpenPiton power study."""

from repro.experiments import fig13_energy as fig13
from repro.perf.report import format_table


def test_fig13_energy_per_instruction(once):
    out = once(fig13.run)
    print("\n== Fig 13: EPI (pJ, CV^2-normalized to 14/16 nm) ==")
    print(format_table(
        ["class", "HB", "Piton", "Piton/HB"],
        [(r["class"], r["hb_pj"], r["piton_pj"], r["ratio"])
         for r in out["rows"]]))
    print(f"band: {out['min_ratio']:.1f}x - {out['max_ratio']:.1f}x "
          "(paper: 3.6x - 15.1x)")
    assert 3.3 <= out["min_ratio"] <= 4.0
    assert 14.0 <= out["max_ratio"] <= 16.0
    # Every class favours HB; loads benefit most (no L1/L1.5/L2 stack).
    assert all(r["ratio"] > 1 for r in out["rows"])
    ratios = {r["class"]: r["ratio"] for r in out["rows"]}
    assert ratios["load"] == max(ratios.values())
