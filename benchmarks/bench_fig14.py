"""Fig 14: bisection stalls -- mesh vs Ruche vs Ruche + compression."""

from conftest import bench_kernels, bench_size

from repro.experiments import fig14_noc_bisection as fig14
from repro.perf.report import format_table

DEFAULT_KERNELS = ("PR", "Jacobi($)", "Jacobi(DRAM)", "FFT", "SGEMM",
                   "SpGEMM")


def test_fig14_bisection_stalls(once):
    kernels = bench_kernels(DEFAULT_KERNELS)
    out = once(fig14.run, size=bench_size(), kernels=kernels)
    print("\n== Fig 14: bisection stall fraction ==")
    variants = [v for v, _f in fig14.VARIANTS]
    rows = [[k] + [out["stall_fraction"][v][k] for v in variants]
            for k in out["kernels"]]
    print(format_table(["kernel"] + variants, rows))

    stall = out["stall_fraction"]
    # Mesh bisections stall heavily (paper: up to ~50%).
    assert max(stall["mesh"].values()) > 0.4
    # Ruche reduces stalls for the DRAM-traffic kernels.
    for k in out["kernels"]:
        if k != "Jacobi($)":
            assert stall["ruche"][k] <= stall["mesh"][k] + 0.05, k
    # Compression helps the sequential-access kernels further.
    for k in ("SGEMM", "FFT"):
        if k in stall["ruche"]:
            assert stall["ruche+lpc"][k] <= stall["ruche"][k] + 0.02, k
