"""Fig 15: three strategies of doubling hardware at constant bandwidth."""

from conftest import bench_kernels

from repro.experiments import fig15_doubling as fig15
from repro.perf.report import format_table

DEFAULT_KERNELS = ("AES", "BS", "SGEMM", "PR", "SpGEMM", "BH")


def test_fig15_doubling_strategies(once):
    kernels = bench_kernels(DEFAULT_KERNELS)
    out = once(fig15.run, kernels=kernels)
    print("\n== Fig 15: speedup over the 16x8 baseline ==")
    configs = ("16x16", "32x8", "2x16x8")
    rows = [[k] + [out["speedups"][c][k] for c in configs]
            for k in out["kernels"]]
    rows.append(["geomean"] + [out["geomean"][c] for c in configs])
    print(format_table(["kernel"] + list(configs), rows))
    print("paper geomeans: 1.25x / 1.39x / 1.34x")

    geo = out["geomean"]
    # All three strategies help overall...
    assert geo["32x8"] > 1.0
    assert geo["2x16x8"] > 1.0
    # ...doubling without cache bandwidth (16x16) helps least of the two
    # in-Cell strategies (the paper's main comparative claim)...
    assert geo["16x16"] <= geo["32x8"] + 0.02
    # ...and BH prefers the larger Cell over more Cells + duplication.
    if "BH" in out["kernels"]:
        assert out["speedups"]["32x8"]["BH"] > 1.0
