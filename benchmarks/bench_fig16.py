"""Fig 16: HB vs hierarchical manycore (ET model) on irregular kernels."""

from conftest import bench_kernels, bench_size

from repro.experiments import fig16_vs_hierarchical as fig16
from repro.perf.report import format_table

DEFAULT_KERNELS = ("SpGEMM", "PR", "BFS", "BH")


def test_fig16_vs_hierarchical(once):
    kernels = bench_kernels(DEFAULT_KERNELS)
    out = once(fig16.run, size=bench_size(), kernels=kernels)
    print(f"\n== Fig 16: {out['hb_config']} vs {out['et_config']} ==")
    print(format_table(
        ["kernel", "HB exec", "HB xfer", "ET exec", "ET xfer", "speedup"],
        [(r["kernel"], r["hb_exec"], r["hb_transfer"], r["et_exec"],
          r["et_transfer"], r["speedup"]) for r in out["rows"]]))
    print(f"geomean HB advantage: {out['geomean_speedup']:.2f}x")

    # HB's independent-thread density wins overall...
    assert out["geomean_speedup"] > 1.0
    for r in out["rows"]:
        # ...and sparse transfers over wide channels hurt ET everywhere.
        assert r["et_transfer"] > 5 * r["hb_transfer"], r["kernel"]
