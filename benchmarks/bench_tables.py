"""Tables I, II and IV regenerated."""

from repro.experiments import tables
from repro.perf.report import format_table


def test_table1_benchmark_coverage(once):
    out = once(tables.table1, scale=0.15)
    print("\n== Table I(a): benchmarks and dwarfs ==")
    print(format_table(["kernel", "dwarf", "category"],
                       [(r["name"], r["dwarf"], r["category"])
                        for r in out["benchmarks"]]))
    print("\n== Table I(b): synthetic CSR inputs ==")
    print(format_table(["graph", "nodes", "nnz", "avg deg", "deg CV"],
                       [(r["name"], r["nodes"], r["nnz"], r["avg_degree"],
                         r["degree_cv"]) for r in out["graphs"]]))
    assert len(out["benchmarks"]) == 10
    dwarves = {r["dwarf"] for r in out["benchmarks"]}
    assert len(dwarves) >= 7  # broad dwarf coverage
    wv = next(r for r in out["graphs"] if r["name"] == "WV")
    rc = next(r for r in out["graphs"] if r["name"] == "RC")
    assert wv["degree_cv"] > 3 * rc["degree_cv"]


def test_table2_configurations(once):
    rows = once(tables.table2)
    print("\n== Table II: machine configurations ==")
    print(format_table(
        ["config", "cores", "banks", "cache MB", "area mm2", "cores/mm2"],
        [(r["name"], r["core_array"], r["cell_cache_banks"],
          r["cell_cache_mb"], r["published_area_mm2"],
          r["published_cores_per_mm2"]) for r in rows]))
    by_name = {r["name"]: r for r in rows}
    assert by_name["HB-16x8"]["cell_cache_banks"] == 32
    assert by_name["HB-32x8"]["cell_cache_banks"] == 64
    assert by_name["HB-16x16"]["cell_cache_mb"] == 1.0


def test_table4_density_comparison(once):
    rows = once(tables.table4)
    print("\n== Table IV: manycore density comparison ==")
    print(format_table(
        ["chip", "category", "cores", "area", "cores/mm2", "our x"],
        [(r["name"], r["category"], r["cores"], r["scaled_area_mm2"],
          r["cores_per_mm2"], r["our_core_x"]) for r in rows]))
    by_name = {r["name"]: r for r in rows}
    # The paper's headline ratios.
    assert abs(by_name["ET-SoC-1"]["our_core_x"] - 41.4) < 0.5
    assert abs(by_name["OpenPiton"]["our_core_x"] - 11.7) < 0.3
    assert abs(by_name["TILE64"]["our_core_x"] - 8.0) < 0.3
    assert by_name["Celerity"]["our_core_x"] < 1.0
