#!/usr/bin/env python
"""Compare a fresh bench_engine.py run against a committed baseline.

Two independent checks:

* **Model drift** (hard): simulated ``cycles`` are deterministic for a
  given config and size, so any difference between baseline and new run
  means the timing model changed behaviour -- always a failure here
  (golden-cycle tests pin the same values; this is a belt-and-braces
  check on the benchmarked configuration).

* **Speed regression** (thresholded): geomean of per-kernel
  ``sim_cycles_per_sec`` ratios (new/old).  Raw host throughput is not
  comparable across machines, so when both files carry the pure-Python
  ``calibration_ops_per_sec`` yardstick the ratio is normalized by it
  (a 2x-faster host makes both numbers ~2x larger, cancelling out).
  Fails when the normalized geomean drops more than ``--threshold``.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline BENCH_engine.json --new bench_ci.json --threshold 0.20
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path


def load(path: str) -> dict:
    payload = json.loads(Path(path).read_text())
    if "kernels" not in payload:
        # Flat samples dict (repro bench-speed --out format).
        payload = {"kernels": payload}
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--new", required=True)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed geomean slowdown fraction "
                             "(default: 0.20)")
    args = parser.parse_args(argv)

    base = load(args.baseline)
    new = load(args.new)
    base_kernels = base["kernels"]
    new_kernels = new["kernels"]
    common = sorted(set(base_kernels) & set(new_kernels))
    if not common:
        print("check_regression: no common kernels", file=sys.stderr)
        return 2

    same_shape = (base.get("config") == new.get("config")
                  and base.get("size") == new.get("size"))
    base_cal = base.get("calibration_ops_per_sec")
    new_cal = new.get("calibration_ops_per_sec")
    normalize = bool(base_cal and new_cal)
    if normalize:
        host_ratio = new_cal / base_cal
        print(f"host calibration ratio (new/old): {host_ratio:.2f}x")
    else:
        host_ratio = 1.0
        print("no calibration in one of the files; comparing raw speeds")

    failures = []
    ratios = []
    print(f"{'kernel':8s} {'old c/s':>12s} {'new c/s':>12s} "
          f"{'norm ratio':>10s}  cycles")
    for name in common:
        b, n = base_kernels[name], new_kernels[name]
        if same_shape and b["cycles"] != n["cycles"]:
            failures.append(
                f"{name}: simulated cycles drifted "
                f"{b['cycles']:g} -> {n['cycles']:g} (model change)")
            drift = "DRIFT"
        else:
            drift = "ok" if same_shape else "n/a"
        ratio = (n["sim_cycles_per_sec"] / b["sim_cycles_per_sec"]
                 / host_ratio)
        ratios.append(ratio)
        print(f"{name:8s} {b['sim_cycles_per_sec']:>12,.0f} "
              f"{n['sim_cycles_per_sec']:>12,.0f} {ratio:>9.2f}x  {drift}")

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    floor = 1.0 - args.threshold
    print(f"geomean speed ratio (normalized): {geomean:.2f}x "
          f"(floor {floor:.2f}x)")
    if geomean < floor:
        failures.append(
            f"geomean sim_cycles_per_sec ratio {geomean:.2f}x is below "
            f"the {floor:.2f}x floor (>{args.threshold:.0%} regression)")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("ok: no model drift, no speed regression beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
