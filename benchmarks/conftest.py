"""Benchmark configuration.

Each ``bench_*.py`` regenerates one paper figure/table, printing the
reproduced rows/series and asserting the paper's qualitative shape.
Simulations are deterministic, so every benchmark runs pedantic with a
single round: the interesting output is the figure, not the wall time.

Environment:
    REPRO_BENCH_SIZE  -- "small" (default) or "full" input sizes.
    REPRO_BENCH_KERNELS -- comma-separated kernel subset (where relevant).
"""

import os

import pytest


def bench_size() -> str:
    return os.environ.get("REPRO_BENCH_SIZE", "small")


def bench_kernels(default):
    raw = os.environ.get("REPRO_BENCH_KERNELS")
    if not raw:
        return list(default)
    return [k.strip() for k in raw.split(",") if k.strip()]


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are long and
    deterministic); returns its result."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
