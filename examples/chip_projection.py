"""From one Cell to the chip: the paper's multi-Cell methodology.

Measures one Cell in the simulator, then projects the 8x8-Cell
(8192-core) chip the way the paper does -- parallel per-Cell executions
plus conservatively-priced inter-Cell exchanges -- and prints the
headline peak-rate arithmetic (2.8 Tera inst/s for the 2048-core ASIC,
100K+ cores at 3 nm).

Run:  python examples/chip_projection.py
"""

from repro.experiments.chip_scale import (
    compare_transfer_models,
    hundred_k_projection,
    peak_instruction_rate,
    project_chip,
)
from repro.perf.report import format_table


def main() -> None:
    print("== headline arithmetic ==")
    print(f"2048-core ASIC peak: {peak_instruction_rate() / 1e12:.2f} "
          "Tera RISC-V inst/s (paper: 2.8)")
    p = hundred_k_projection()
    print(f"3 nm, {p['die_mm2']:.0f} mm^2 die: {p['cores']:,} cores, "
          f"{p['peak_tera_ops']:.0f} Tera inst/s peak\n")

    print("== 8x8-Cell chip projections (measured Cell + exchange) ==")
    rows = []
    for name in ("SGEMM", "FFT", "PR", "SpGEMM"):
        prj = project_chip(name, cells_x=8, cells_y=8, phases=2)
        rows.append([
            name, prj.cell_cycles, prj.transfer_cycles,
            prj.instructions_per_cycle,
            f"{prj.transfer_fraction:.1%}",
        ])
    print(format_table(
        ["kernel", "cell cycles", "exchange cycles", "chip IPC",
         "exchange share"], rows))

    print("\n== why word-granular inter-Cell links matter ==")
    for sparse in (True, False):
        cmp = compare_transfer_models(1 << 20, sparse=sparse)
        kind = "sparse" if sparse else "dense"
        print(f"  1 MiB {kind:6s}: HB {cmp['hb_cycles']:8,.0f} cycles, "
              f"1024-bit channels {cmp['hierarchical_cycles']:8,.0f} "
              f"({cmp['hb_advantage']:.1f}x)")


if __name__ == "__main__":
    main()
