"""Graph analytics on a Cell: direction-optimizing BFS and PageRank.

Exercises the memory-intensive irregular side of the suite on two very
different graph shapes -- a road-network lattice (tiny frontiers, huge
diameter) and a power-law social graph (hub-dominated) -- and shows the
tile-group task-parallelism lever from Fig 12.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import HB_16x8, run
from repro.kernels import bfs, pagerank, spgemm
from repro.workloads.graphs import roadnet_like, wiki_vote_like


def bfs_demo() -> None:
    print("== BFS: road lattice vs power-law graph ==")
    for graph in (roadnet_like(width=20, height=20), wiki_vote_like(0.2)):
        args = bfs.make_args(graph=graph, source=0)
        result = run(HB_16x8, bfs.KERNEL, args)
        dist = args["state"]["distance"]
        reached = int((dist >= 0).sum())
        print(f"  {graph.name:3s} n={graph.num_rows:5d} nnz={graph.nnz:6d} "
              f"reached={reached:5d} levels={dist.max():3d} "
              f"cycles={result.cycles:9,.0f} "
              f"core util={result.core_utilization:.1%}")
        # Cross-check against the host reference.
        expected = bfs.reference_bfs(graph, 0)
        assert np.array_equal(dist, expected), "BFS diverged from reference!"
    print("  (road networks keep frontiers small -> low utilization,")
    print("   exactly the Fig 11 observation)\n")


def pagerank_demo() -> None:
    print("== PageRank on the power-law graph ==")
    graph = wiki_vote_like(0.2)
    args = pagerank.make_args(graph=graph, iters=2)
    result = run(HB_16x8, pagerank.KERNEL, args)
    hbm_active = result.hbm["read"] + result.hbm["write"] + result.hbm["busy"]
    print(f"  cycles={result.cycles:,.0f}  HBM active={hbm_active:.1%} "
          f"(memory-bound, as in Fig 11)")
    ranks = pagerank.reference_pagerank(graph, iters=2)
    top = np.argsort(ranks)[-3:][::-1]
    print(f"  top nodes by rank: {list(top)} "
          f"(in-degrees {[int(graph.row_nnz(v)) for v in top]})\n")


def tile_group_demo() -> None:
    print("== Tile groups: one task vs eight concurrent tasks (Fig 12) ==")
    one = spgemm.make_args(tasks=1, scale=0.15)
    r1 = run(HB_16x8, spgemm.KERNEL, one, group_shape=(16, 8))
    eight = spgemm.make_args(tasks=8, scale=0.15)
    r8 = run(HB_16x8, spgemm.KERNEL, eight, group_shape=(4, 4))
    n = one["matrix"].num_rows
    thr1 = n / r1.cycles
    thr8 = 8 * n / r8.cycles
    print(f"  1 x 16x8 group: {r1.cycles:9,.0f} cycles for 1 task")
    print(f"  8 x 4x4 groups: {r8.cycles:9,.0f} cycles for 8 tasks")
    print(f"  throughput gain: {thr8 / thr1:.2f}x (paper: ~4x)")


def main() -> None:
    bfs_demo()
    pagerank_demo()
    tile_group_demo()


if __name__ == "__main__":
    main()
