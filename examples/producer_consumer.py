"""Producer-consumer Cells over Group DRAM pointers (paper Fig 6).

Two Cells run *different* kernels concurrently: Cell 0 produces a block
of results and writes them directly into Cell 1's Local DRAM through a
Group DRAM pointer (no host round trip, no copy through global space);
Cell 1 polls a flag, then consumes.

This is the chip-level programming model of Section IV: Cells as
independent SPMD machines composed through the PGAS.

Run:  python examples/producer_consumer.py
"""

from repro.arch.config import MachineConfig
from repro.arch.geometry import CellGeometry
from repro.isa import kernel
from repro.kernels.base import num_tiles, range_split, sync, tile_id
from repro.runtime.machine import Machine

WORDS = 4096


@kernel("producer")
def producer(t, args):
    """Compute a block and push it straight into the consumer's DRAM."""
    lo, hi = range_split(WORDS, num_tiles(t), tile_id(t))
    out_ptr = args["out_ptr"]  # Group DRAM pointer into Cell 1
    val = t.reg()
    top = t.loop_top()
    for i in range(lo, hi):
        yield t.fma(val, [val])  # "produce" the value
        yield t.store(out_ptr + 4 * i, srcs=[val])
        yield t.branch_back(top, taken=(i < hi - 1))
    yield from sync(t)
    # Tile (rank 0) raises the ready flag in the consumer's DRAM.
    if t.group_rank == 0:
        yield t.amoadd(args["flag_ptr"], 1)
        args["shared"]["produced"] = True
    yield t.fence()


@kernel("consumer")
def consumer(t, args):
    """Wait for the flag, then reduce the delivered block."""
    # Poll the flag with amoadd(0): a timed read-modify-write.
    top = t.loop_top()
    while True:
        flag = yield t.amoadd(t.local_dram(args["flag"]), 0)
        ready = flag > 0 and args["shared"].get("produced", False)
        yield t.branch_back(top, taken=not ready)
        if ready:
            break
        yield t.sleep(64)  # back off between polls
    lo, hi = range_split(WORDS, num_tiles(t), tile_id(t))
    acc = t.reg()
    top = t.loop_top()
    for i in range(lo, hi, 4):
        vl = t.vload(t.local_dram(args["data"] + 4 * i))
        yield vl
        for r in vl.dsts:
            yield t.fma(acc, [acc, r])
        yield t.branch_back(top, taken=(i + 4 < hi))
    yield from sync(t)


def main() -> None:
    # A 2-Cell machine: Cells are horizontally adjacent, so the producer's
    # stores stream across the inter-Cell bisection (cf. Fig 3).
    config = MachineConfig(name="duo", cell=CellGeometry(8, 4),
                           cells_x=2, cells_y=1)
    machine = Machine(config)
    cell0, cell1 = machine.cell(0, 0), machine.cell(1, 0)

    data = cell1.malloc(4 * WORDS)
    flag = cell1.malloc(64)
    shared = {}

    cell0.load_kernel(producer)
    h0 = cell0.launch({
        "out_ptr": cell1.group_dram(data),  # Fig 6's group_dram() idiom
        "flag_ptr": cell1.group_dram(flag),
        "shared": shared,
    })
    cell1.load_kernel(consumer)
    h1 = cell1.launch({"data": data, "flag": flag, "shared": shared})

    machine.run()
    print(f"producer finished at cycle {max(c.finish_time for c in h0.cores):,.0f}")
    print(f"consumer finished at cycle {max(c.finish_time for c in h1.cores):,.0f}")
    print(f"flag value in Cell 1's DRAM: {cell1.peek(flag)}")
    req = machine.memsys.req_net.counters
    print(f"request-network packets: {req.get('packets'):,.0f} "
          f"({req.get('flits'):,.0f} flits, "
          f"{req.get('stall_cycles'):,.0f} stall cycles)")


if __name__ == "__main__":
    main()
