"""Quickstart: write an SPMD kernel, run it on a HammerBlade Cell.

This is the 60-second tour: a dot-product kernel written against the
kernel context API (the Python analogue of HB's C/C++ SPMD interface),
launched on the paper's baseline 16x8 Cell, with the stats every
experiment in this repo is built from.

Run:  python examples/quickstart.py
"""

import repro
from repro.isa import kernel
from repro.kernels.base import num_tiles, range_split, sync, tile_id
from repro.perf.counters import ordered_breakdown
from repro.perf.report import format_bars


@kernel("dot-product")
def dot_product(t, args):
    """Each tile reduces its slice of two vectors in Local DRAM.

    The idioms to note:
      * ``t.vload`` -- four sequential words in one (compressible) packet;
      * issuing both vloads before the fmas -- the non-blocking scoreboard
        keeps them in flight while earlier maths executes;
      * ``t.amoadd`` -- combine partial sums at a single memory word with
        simulated-time-ordered atomics;
      * ``sync(t)`` -- fence + HW-barrier at the end of the phase.
    """
    n = args["n"]
    lo, hi = range_split(n, num_tiles(t), tile_id(t))
    acc = t.reg()
    yield t.alu(acc)
    top = t.loop_top()
    for i in range(lo, hi, 4):
        xv = t.vload(t.local_dram(args["x"] + 4 * i))
        yield xv
        yv = t.vload(t.local_dram(args["y"] + 4 * i))
        yield yv
        for xr, yr in zip(xv.dsts, yv.dsts):
            yield t.fma(acc, [acc, xr, yr])
        yield t.branch_back(top, taken=(i + 4 < hi))
    # Fixed-point partial sum into the shared accumulator.
    yield t.alu(t.reg(), [acc])
    yield t.amoadd(t.local_dram(args["sum"]), 1)
    yield from sync(t)


def main() -> None:
    args = {"n": 16 * 1024, "x": 0x10000, "y": 0x30000, "sum": 0x50000}
    result = repro.run(repro.HB_16x8, dot_product, args, keep_machine=True)

    print(f"machine:            {result.config_name} "
          f"({result.num_tiles} tiles)")
    print(f"kernel cycles:      {result.cycles:,.0f}")
    print(f"instructions:       {result.instructions:,.0f} "
          f"({result.throughput:.1f} per cycle across the Cell)")
    print(f"core utilization:   {result.core_utilization:.1%}")
    print(f"LLC hit rate:       {result.cache_hit_rate:.1%}")
    print(f"tiles that summed:  "
          f"{result.machine.cell(0, 0).peek(args['sum'])}")
    print("\nwhere the cycles went:")
    print(format_bars(ordered_breakdown(result), width=36))
    print("\nHBM2 channel:")
    print(format_bars(result.hbm, width=36))


if __name__ == "__main__":
    main()
