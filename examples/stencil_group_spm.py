"""The Group SPM stencil idiom (paper Fig 7): Jacobi two ways.

Runs the same 3-D Jacobi stencil with (a) columns resident in each
tile's scratchpad, neighbours read through Group SPM pointers with
pipelined non-blocking loads, and (b) everything in Local DRAM through
the cache banks -- then contrasts where the traffic went.

Run:  python examples/stencil_group_spm.py
"""

import repro
from repro import HB_16x8
from repro.kernels import jacobi
from repro.perf.bisection import cell_bisection


def run_variant(use_spm: bool):
    args = jacobi.make_args(z_depth=48, iters=3, use_spm=use_spm)
    return repro.run(HB_16x8, jacobi.KERNEL, args, keep_machine=True)


def main() -> None:
    spm = run_variant(use_spm=True)
    dram = run_variant(use_spm=False)

    print("== Jacobi 3-D stencil: Group SPM vs Local DRAM ==\n")
    header = f"{'':24s}{'Group SPM':>14s}{'Local DRAM':>14s}"
    print(header)
    print("-" * len(header))

    def row(label, a, b, fmt="{:>14,.0f}"):
        print(f"{label:24s}" + fmt.format(a) + fmt.format(b))

    row("cycles", spm.cycles, dram.cycles)
    row("request packets", spm.network["packets"], dram.network["packets"])
    row("network stall cycles", spm.network["stall_cycles"],
        dram.network["stall_cycles"])
    row("HBM reads (frac)", spm.hbm["read"], dram.hbm["read"],
        fmt="{:>14.3f}")

    for label, result in (("Group SPM", spm), ("Local DRAM", dram)):
        net = result.machine.memsys.req_net
        stats = cell_bisection(net, HB_16x8.cell.tiles_x, result.cycles)
        print(f"bisection util ({label}): {stats.utilization:.3f}  "
              f"stall fraction: {stats.stall_fraction:.3f}")

    print("\nReading: with Group SPM the nearest-neighbour traffic stays")
    print("between adjacent tiles -- the cache banks, the HBM channel and")
    print("the Cell bisection barely see it (the Fig 14 'Jacobi ($)' row),")
    print("and the network queues far less.  The data also *persists* in")
    print("the scratchpads across iterations, which is what lets the")
    print("paper's full-scale runs gain 17-48x once loads are non-blocking.")


if __name__ == "__main__":
    main()
