"""repro: an architectural reproduction of the HammerBlade RISC-V manycore.

Public API (see ``docs/API.md`` for the full surface and the migration
table from the legacy ``run_on_cell`` entry points):

* :class:`Session` / :func:`run` -- build a machine, launch kernels,
  collect :class:`RunResult`\\ s, optionally with tracing;
* :class:`MachineConfig` / :class:`FeatureSet` and the Table II presets
  (``HB_16x8`` ..., ``TABLE_II``, ``small_config``) -- machine configs;
* :class:`Trace` / :class:`TraceConfig` -- the observability layer
  (cycle timelines, metrics registry, Perfetto export);
* :class:`SanitizeConfig` -- knobs for ``Session(sanitize=...)``, the
  PGAS data-race and synchronization checker;
* :class:`AuditConfig` -- knobs for ``Session(audit=...)``, the
  timing-model invariant and differential-validation checker;
* :class:`Client` / :class:`ServeConfig` -- the simulation service:
  talk to (or configure) a ``repro serve`` scheduler daemon that
  shares one warm worker pool, result cache and journal across
  clients (see :mod:`repro.serve`);
* ``KERNELS`` -- the ten-benchmark parallel suite (Table I).

Quickstart::

    import repro
    from repro.kernels import sgemm

    result = repro.run(repro.HB_16x8, sgemm.KERNEL, sgemm.make_args(n=32))
    print(result.cycles, result.core_utilization)

Deeper layers stay importable for model work: :mod:`repro.arch`
(geometry/timings), :mod:`repro.runtime` (machines, Cells),
:mod:`repro.isa` (kernel IR), :mod:`repro.workloads` (inputs),
:mod:`repro.experiments` (paper figures), :mod:`repro.orch` (sweeps).
"""

try:  # installed package: single source of truth is the metadata
    from importlib.metadata import version as _version

    __version__ = _version("repro")
except Exception:  # PYTHONPATH=src checkout without installed metadata
    __version__ = "0.1.0"

from .arch.config import (
    ALL_FEATURES,
    HB_2x16x8,
    HB_16x8,
    HB_16x16,
    HB_32x8,
    TABLE_II,
    FeatureSet,
    MachineConfig,
    small_config,
)
from .audit import AuditConfig
from .kernels.registry import SUITE as KERNELS
from .pim import PimConfig
from .runtime.result import RunResult
from .sanitize import SanitizeConfig
from .serve import Client, ServeConfig
from .session import Session, run
from .trace import Trace, TraceConfig

__all__ = [
    "__version__",
    "Session",
    "run",
    "RunResult",
    "Client",
    "ServeConfig",
    "MachineConfig",
    "FeatureSet",
    "Trace",
    "TraceConfig",
    "SanitizeConfig",
    "AuditConfig",
    "PimConfig",
    "KERNELS",
    "HB_16x8",
    "HB_16x16",
    "HB_32x8",
    "HB_2x16x8",
    "TABLE_II",
    "ALL_FEATURES",
    "small_config",
]
