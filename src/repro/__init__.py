"""repro: an architectural reproduction of the HammerBlade RISC-V manycore.

Public API tour
---------------
* :mod:`repro.arch` -- machine configurations (Table II presets, feature sets).
* :mod:`repro.runtime` -- host runtime: ``Machine``, ``Cell``, ``run_on_cell``.
* :mod:`repro.isa` -- the kernel IR and per-tile kernel context.
* :mod:`repro.kernels` -- the ten-benchmark parallel suite (Table I).
* :mod:`repro.workloads` -- synthetic inputs (graphs, matrices, bodies).
* :mod:`repro.experiments` -- one harness per paper figure/table.

Quickstart::

    from repro.arch import HB_16x8
    from repro.kernels import sgemm
    from repro.runtime import run_on_cell

    args = sgemm.make_args(n=32)
    result = run_on_cell(HB_16x8, sgemm.KERNEL, args)
    print(result.cycles, result.core_utilization)
"""

try:  # installed package: single source of truth is the metadata
    from importlib.metadata import version as _version

    __version__ = _version("repro")
except Exception:  # PYTHONPATH=src checkout without installed metadata
    __version__ = "0.1.0"

__all__ = ["__version__"]
