"""Machine configurations: architectural feature flags and Table II presets.

The Fig 10 feature ladder is expressed by toggling :class:`FeatureSet`
flags on an otherwise-identical machine; the Fig 15 scaling study is
expressed by the four Table II presets.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from .geometry import CellGeometry, ChipGeometry
from .params import DEFAULT_TIMINGS, CacheTiming, HBMTiming, Timings
from ..pim.config import PimConfig


@dataclass(frozen=True)
class FeatureSet:
    """The architectural mechanisms evaluated incrementally in Fig 10."""

    nonblocking_loads: bool = True  # 63-entry scoreboard vs stall-on-load
    ruche_network: bool = True  # half-ruche horizontal links (factor 3)
    write_validate: bool = True  # vs fetch-on-write-miss (write-allocate)
    load_compression: bool = True  # sequential remote loads share packets
    ipoly_hashing: bool = True  # vs plain modulo bank interleaving
    nonblocking_cache: bool = True  # MSHR-based hit-under-miss vs blocking
    hw_barrier: bool = True  # 1-bit barrier tree vs software barrier

    def describe(self) -> str:
        on = [f.name for f in dataclasses.fields(self) if getattr(self, f.name)]
        return "+".join(on) if on else "none"


def _check_fields(cls: type, kind: str, fields: Dict[str, object]) -> None:
    """Reject typo'd override names with the valid set in the message.

    ``dataclasses.replace`` raises its own ``TypeError`` on an unknown
    keyword, but without naming the legal fields; every ``with_*``
    override funnels through here instead so a misspelled knob fails
    with its neighbours listed.
    """
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(fields) - known)
    if unknown:
        raise TypeError(
            f"unknown {kind} field(s): " + ", ".join(unknown)
            + "; valid fields: " + ", ".join(sorted(known)))


def _checked_replace(current: object, kind: str,
                     fields: Dict[str, object]) -> object:
    _check_fields(type(current), kind, fields)
    return replace(current, **fields)


ALL_FEATURES = FeatureSet()
NO_FEATURES = FeatureSet(
    nonblocking_loads=False,
    ruche_network=False,
    write_validate=False,
    load_compression=False,
    ipoly_hashing=False,
    nonblocking_cache=False,
    hw_barrier=False,
)


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to instantiate a machine model.

    ``published`` carries the Table II figures we report but do not derive
    (die area, density); the simulator itself only consumes the geometry,
    timing and feature fields.
    """

    name: str
    cell: CellGeometry
    cells_x: int = 1
    cells_y: int = 1
    features: FeatureSet = field(default_factory=FeatureSet)
    timings: Timings = field(default_factory=lambda: DEFAULT_TIMINGS)
    # One HBM2 pseudo-channel per Cell, as in the paper's baseline mapping.
    pseudo_channels_per_cell: int = 1
    # Fraction of one pseudo-channel's bandwidth each Cell receives; the
    # constant-bandwidth scaling study (Fig 15) halves it when the Cell
    # count doubles against a fixed HBM2 system.
    hbm_scale: float = 1.0
    # GLOBAL_DRAM grid partitioning (paper Section IV-A(5)): (gx, gy)
    # groups of Cells hash the global space locally; (0, 0) spreads it
    # across the whole chip.  Meant for very large Cell arrays where
    # all-to-all interleaving stops scaling.
    global_grid: "Tuple[int, int]" = (0, 0)
    # Processing-in-memory backend embedded in the HBM pseudo-channels;
    # ``None`` keeps the memory system entirely PIM-free (bit-identical
    # timing to configs that predate the subsystem).
    pim: Optional[PimConfig] = None
    published: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cells_x <= 0 or self.cells_y <= 0:
            raise ValueError("cell array dimensions must be positive")
        if self.pseudo_channels_per_cell <= 0:
            raise ValueError("need at least one pseudo-channel per cell")

    @property
    def chip(self) -> ChipGeometry:
        return ChipGeometry(cell=self.cell, cells_x=self.cells_x, cells_y=self.cells_y)

    @property
    def num_cells(self) -> int:
        return self.cells_x * self.cells_y

    @property
    def num_tiles(self) -> int:
        return self.num_cells * self.cell.num_tiles

    @property
    def cell_cache_bytes(self) -> int:
        return self.cell.num_banks * self.timings.cache.capacity_bytes

    # -- builder family -----------------------------------------------------
    #
    # Each ``with_*`` returns a new (frozen) config; chains read like the
    # experiment they describe:
    #
    #   HB_16x8.with_features(hw_barrier=False).with_hbm(scale=0.5)

    def with_features(self, features: Optional[FeatureSet] = None,
                      **flags: bool) -> "MachineConfig":
        """Replace the feature set, or toggle individual flags.

        ``with_features(fs)`` swaps the whole set; ``with_features(
        hw_barrier=False)`` flips one flag on the current set.
        """
        if features is not None and flags:
            raise TypeError("pass a FeatureSet or flag overrides, not both")
        if features is None:
            features = _checked_replace(self.features, "feature", flags)
        return replace(self, features=features)

    def with_cache(self, cache: Optional[CacheTiming] = None,
                   **fields: object) -> "MachineConfig":
        """Replace the cache timing, or override individual fields
        (e.g. ``with_cache(mshr_entries=1)``)."""
        if cache is not None and fields:
            raise TypeError("pass a CacheTiming or field overrides, not both")
        if cache is None:
            cache = _checked_replace(self.timings.cache, "cache timing",
                                     fields)
        return replace(self, timings=replace(self.timings, cache=cache))

    def with_timings(self, timings: Optional[Timings] = None, *,
                     core: Optional[object] = None,
                     cache: Optional[object] = None,
                     hbm: Optional[object] = None,
                     noc: Optional[object] = None,
                     barrier: Optional[object] = None) -> "MachineConfig":
        """Replace the timing bundle, or swap individual sub-timings.

        Each sub-timing accepts either the dataclass or a dict of field
        overrides applied to the current value, e.g.
        ``with_timings(hbm={"t_cl": 20})``.
        """
        if timings is not None:
            if any(v is not None for v in (core, cache, hbm, noc, barrier)):
                raise TypeError("pass a Timings or sub-timing overrides, "
                                "not both")
            return replace(self, timings=timings)
        new = self.timings
        for name, value in (("core", core), ("cache", cache), ("hbm", hbm),
                            ("noc", noc), ("barrier", barrier)):
            if value is None:
                continue
            if isinstance(value, dict):
                value = _checked_replace(getattr(new, name),
                                         f"{name} timing", value)
            new = replace(new, **{name: value})
        return replace(self, timings=new)

    def with_hbm(self, hbm: Optional[object] = None, *,
                 scale: Optional[float] = None,
                 pseudo_channels_per_cell: Optional[int] = None,
                 **fields: object) -> "MachineConfig":
        """Adjust the memory system: HBM timing (dataclass or field
        overrides), per-Cell bandwidth ``scale``, and/or channel count."""
        if hbm is not None and fields:
            raise TypeError("pass an HBMTiming or field overrides, not both")
        if fields:
            _check_fields(HBMTiming, "HBM timing", fields)
        cfg = self
        if hbm is not None or fields:
            cfg = cfg.with_timings(hbm=hbm if hbm is not None else fields)
        if scale is not None:
            cfg = replace(cfg, hbm_scale=scale)
        if pseudo_channels_per_cell is not None:
            cfg = replace(cfg,
                          pseudo_channels_per_cell=pseudo_channels_per_cell)
        return cfg

    def with_pim(self, pim: Optional[PimConfig] = None,
                 **fields: object) -> "MachineConfig":
        """Enable (or adjust) the processing-in-memory backend.

        ``with_pim()`` enables it with defaults; ``with_pim(t_mac=8)``
        overrides fields on the current (or default) :class:`PimConfig`;
        ``with_pim(PimConfig(...))`` swaps the whole block.
        """
        if pim is not None and fields:
            raise TypeError("pass a PimConfig or field overrides, not both")
        if pim is None:
            _check_fields(PimConfig, "PIM config", fields)
            pim = replace(self.pim, **fields) if self.pim is not None \
                else PimConfig(**fields)
        return replace(self, pim=pim)

    def with_geometry(self, *, tiles_x: Optional[int] = None,
                      tiles_y: Optional[int] = None,
                      cells_x: Optional[int] = None,
                      cells_y: Optional[int] = None,
                      **extra: object) -> "MachineConfig":
        """Resize the tile array and/or the Cell array."""
        if extra:
            raise TypeError(
                "unknown geometry field(s): " + ", ".join(sorted(extra))
                + "; valid fields: cells_x, cells_y, tiles_x, tiles_y")
        cfg = self
        if tiles_x is not None or tiles_y is not None:
            cell = replace(
                self.cell,
                tiles_x=tiles_x if tiles_x is not None else self.cell.tiles_x,
                tiles_y=tiles_y if tiles_y is not None else self.cell.tiles_y,
            )
            cfg = replace(cfg, cell=cell)
        if cells_x is not None:
            cfg = replace(cfg, cells_x=cells_x)
        if cells_y is not None:
            cfg = replace(cfg, cells_y=cells_y)
        return cfg

    def describe(self) -> str:
        """One-line human summary (mirrors FeatureSet.describe)."""
        geo = f"{self.cell.tiles_x}x{self.cell.tiles_y}"
        if self.num_cells > 1:
            geo = f"{self.cells_x}x{self.cells_y} cells of {geo}"
        parts = [self.name, geo,
                 f"{self.pseudo_channels_per_cell} pc/cell"]
        if self.hbm_scale != 1.0:
            parts.append(f"hbm x{self.hbm_scale:g}")
        if self.pim is not None:
            parts.append("pim")
        parts.append(f"features: {self.features.describe()}")
        return " | ".join(parts)


def _table2(name: str, tiles_x: int, tiles_y: int, cells_x: int, cells_y: int,
            cache_sets: int, published: Dict[str, float],
            hbm_scale: float = 1.0) -> MachineConfig:
    cache = replace(DEFAULT_TIMINGS.cache, sets=cache_sets)
    return MachineConfig(
        name=name,
        cell=CellGeometry(tiles_x=tiles_x, tiles_y=tiles_y),
        cells_x=cells_x,
        cells_y=cells_y,
        timings=replace(DEFAULT_TIMINGS, cache=cache),
        hbm_scale=hbm_scale,
        published=published,
    )


# Table II: the four machine configurations.  The simulator instantiates a
# configurable number of Cells; the paper's chip-level Cell arrays (8x8 /
# 16x8) are recorded in ``published`` and used by the multi-Cell scaling
# methodology rather than simulated monolithically.
HB_16x8 = _table2(
    "HB-16x8", 16, 8, 1, 1, 64,
    {
        "area_mm2": 311, "chip_cells_x": 8, "chip_cells_y": 8,
        "cell_cache_banks": 32, "cell_cache_mb": 1,
        "total_storage_mb": 96, "cores_per_mm2": 26.4,
        "core_freq_ghz": 1.35, "mem_freq_ghz": 1.0,
    },
)

HB_16x16 = _table2(
    # Doubling vertically keeps the bank count, halving cache per tile.
    "HB-16x16", 16, 16, 1, 1, 64,
    {
        "area_mm2": 539, "chip_cells_x": 8, "chip_cells_y": 8,
        "cell_cache_banks": 32, "cell_cache_mb": 1,
        "total_storage_mb": 128, "cores_per_mm2": 30.3,
        "core_freq_ghz": 1.35, "mem_freq_ghz": 1.0,
    },
)

HB_32x8 = _table2(
    # Doubling horizontally doubles banks, cache capacity and bandwidth.
    "HB-32x8", 32, 8, 1, 1, 64,
    {
        "area_mm2": 620, "chip_cells_x": 8, "chip_cells_y": 8,
        "cell_cache_banks": 64, "cell_cache_mb": 2,
        "total_storage_mb": 192, "cores_per_mm2": 26.4,
        "core_freq_ghz": 1.35, "mem_freq_ghz": 1.0,
    },
)

HB_2x16x8 = _table2(
    # Doubling the Cell count: two 16x8 Cells sharing the HBM2 bandwidth
    # of one (each pseudo-channel is half-rate in the constant-BW study).
    "HB-2x16x8", 16, 8, 2, 1, 64, hbm_scale=0.5,
    published={
        "area_mm2": 620, "chip_cells_x": 16, "chip_cells_y": 8,
        "cell_cache_banks": 32, "cell_cache_mb": 1,
        "total_storage_mb": 192, "cores_per_mm2": 26.4,
        "core_freq_ghz": 1.35, "mem_freq_ghz": 1.0,
    },
)

TABLE_II = {cfg.name: cfg for cfg in (HB_16x8, HB_16x16, HB_32x8, HB_2x16x8)}


def small_config(tiles_x: int = 4, tiles_y: int = 4,
                 features: Optional[FeatureSet] = None,
                 name: str = "HB-small") -> MachineConfig:
    """A reduced machine for fast tests; same mechanisms, smaller arrays."""
    cfg = MachineConfig(name=name, cell=CellGeometry(tiles_x, tiles_y))
    if features is not None:
        cfg = cfg.with_features(features)
    return cfg
