"""Machine configurations: architectural feature flags and Table II presets.

The Fig 10 feature ladder is expressed by toggling :class:`FeatureSet`
flags on an otherwise-identical machine; the Fig 15 scaling study is
expressed by the four Table II presets.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from .geometry import CellGeometry, ChipGeometry
from .params import DEFAULT_TIMINGS, CacheTiming, Timings


@dataclass(frozen=True)
class FeatureSet:
    """The architectural mechanisms evaluated incrementally in Fig 10."""

    nonblocking_loads: bool = True  # 63-entry scoreboard vs stall-on-load
    ruche_network: bool = True  # half-ruche horizontal links (factor 3)
    write_validate: bool = True  # vs fetch-on-write-miss (write-allocate)
    load_compression: bool = True  # sequential remote loads share packets
    ipoly_hashing: bool = True  # vs plain modulo bank interleaving
    nonblocking_cache: bool = True  # MSHR-based hit-under-miss vs blocking
    hw_barrier: bool = True  # 1-bit barrier tree vs software barrier

    def describe(self) -> str:
        on = [f.name for f in dataclasses.fields(self) if getattr(self, f.name)]
        return "+".join(on) if on else "none"


ALL_FEATURES = FeatureSet()
NO_FEATURES = FeatureSet(
    nonblocking_loads=False,
    ruche_network=False,
    write_validate=False,
    load_compression=False,
    ipoly_hashing=False,
    nonblocking_cache=False,
    hw_barrier=False,
)


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to instantiate a machine model.

    ``published`` carries the Table II figures we report but do not derive
    (die area, density); the simulator itself only consumes the geometry,
    timing and feature fields.
    """

    name: str
    cell: CellGeometry
    cells_x: int = 1
    cells_y: int = 1
    features: FeatureSet = field(default_factory=FeatureSet)
    timings: Timings = field(default_factory=lambda: DEFAULT_TIMINGS)
    # One HBM2 pseudo-channel per Cell, as in the paper's baseline mapping.
    pseudo_channels_per_cell: int = 1
    # Fraction of one pseudo-channel's bandwidth each Cell receives; the
    # constant-bandwidth scaling study (Fig 15) halves it when the Cell
    # count doubles against a fixed HBM2 system.
    hbm_scale: float = 1.0
    # GLOBAL_DRAM grid partitioning (paper Section IV-A(5)): (gx, gy)
    # groups of Cells hash the global space locally; (0, 0) spreads it
    # across the whole chip.  Meant for very large Cell arrays where
    # all-to-all interleaving stops scaling.
    global_grid: "Tuple[int, int]" = (0, 0)
    published: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cells_x <= 0 or self.cells_y <= 0:
            raise ValueError("cell array dimensions must be positive")
        if self.pseudo_channels_per_cell <= 0:
            raise ValueError("need at least one pseudo-channel per cell")

    @property
    def chip(self) -> ChipGeometry:
        return ChipGeometry(cell=self.cell, cells_x=self.cells_x, cells_y=self.cells_y)

    @property
    def num_cells(self) -> int:
        return self.cells_x * self.cells_y

    @property
    def num_tiles(self) -> int:
        return self.num_cells * self.cell.num_tiles

    @property
    def cell_cache_bytes(self) -> int:
        return self.cell.num_banks * self.timings.cache.capacity_bytes

    def with_features(self, features: FeatureSet) -> "MachineConfig":
        return replace(self, features=features)

    def with_cache(self, cache: CacheTiming) -> "MachineConfig":
        return replace(self, timings=replace(self.timings, cache=cache))


def _table2(name: str, tiles_x: int, tiles_y: int, cells_x: int, cells_y: int,
            cache_sets: int, published: Dict[str, float],
            hbm_scale: float = 1.0) -> MachineConfig:
    cache = replace(DEFAULT_TIMINGS.cache, sets=cache_sets)
    return MachineConfig(
        name=name,
        cell=CellGeometry(tiles_x=tiles_x, tiles_y=tiles_y),
        cells_x=cells_x,
        cells_y=cells_y,
        timings=replace(DEFAULT_TIMINGS, cache=cache),
        hbm_scale=hbm_scale,
        published=published,
    )


# Table II: the four machine configurations.  The simulator instantiates a
# configurable number of Cells; the paper's chip-level Cell arrays (8x8 /
# 16x8) are recorded in ``published`` and used by the multi-Cell scaling
# methodology rather than simulated monolithically.
HB_16x8 = _table2(
    "HB-16x8", 16, 8, 1, 1, 64,
    {
        "area_mm2": 311, "chip_cells_x": 8, "chip_cells_y": 8,
        "cell_cache_banks": 32, "cell_cache_mb": 1,
        "total_storage_mb": 96, "cores_per_mm2": 26.4,
        "core_freq_ghz": 1.35, "mem_freq_ghz": 1.0,
    },
)

HB_16x16 = _table2(
    # Doubling vertically keeps the bank count, halving cache per tile.
    "HB-16x16", 16, 16, 1, 1, 64,
    {
        "area_mm2": 539, "chip_cells_x": 8, "chip_cells_y": 8,
        "cell_cache_banks": 32, "cell_cache_mb": 1,
        "total_storage_mb": 128, "cores_per_mm2": 30.3,
        "core_freq_ghz": 1.35, "mem_freq_ghz": 1.0,
    },
)

HB_32x8 = _table2(
    # Doubling horizontally doubles banks, cache capacity and bandwidth.
    "HB-32x8", 32, 8, 1, 1, 64,
    {
        "area_mm2": 620, "chip_cells_x": 8, "chip_cells_y": 8,
        "cell_cache_banks": 64, "cell_cache_mb": 2,
        "total_storage_mb": 192, "cores_per_mm2": 26.4,
        "core_freq_ghz": 1.35, "mem_freq_ghz": 1.0,
    },
)

HB_2x16x8 = _table2(
    # Doubling the Cell count: two 16x8 Cells sharing the HBM2 bandwidth
    # of one (each pseudo-channel is half-rate in the constant-BW study).
    "HB-2x16x8", 16, 8, 2, 1, 64, hbm_scale=0.5,
    published={
        "area_mm2": 620, "chip_cells_x": 16, "chip_cells_y": 8,
        "cell_cache_banks": 32, "cell_cache_mb": 1,
        "total_storage_mb": 192, "cores_per_mm2": 26.4,
        "core_freq_ghz": 1.35, "mem_freq_ghz": 1.0,
    },
)

TABLE_II = {cfg.name: cfg for cfg in (HB_16x8, HB_16x16, HB_32x8, HB_2x16x8)}


def small_config(tiles_x: int = 4, tiles_y: int = 4,
                 features: Optional[FeatureSet] = None,
                 name: str = "HB-small") -> MachineConfig:
    """A reduced machine for fast tests; same mechanisms, smaller arrays."""
    cfg = MachineConfig(name=name, cell=CellGeometry(tiles_x, tiles_y))
    if features is not None:
        cfg = cfg.with_features(features)
    return cfg
