"""Physical layout of the HammerBlade Cellular Manycore.

A *Cell* is a 2-D array of compute tiles with two 1-D strips of last-level
cache banks, one above and one below the tile array (paper Fig 2).  The
chip replicates Cells in a 2-D array; the network is globally uniform, so
node coordinates are expressed on a single global grid covering all Cells.

Grid convention (matching the paper's X->Y routing discussion):

* ``x`` grows to the right, ``y`` grows downward;
* within a Cell of ``tiles_x`` x ``tiles_y`` tiles, row ``0`` is the north
  cache-bank strip, rows ``1 .. tiles_y`` are compute tiles, and row
  ``tiles_y + 1`` is the south cache-bank strip;
* Cell ``(cx, cy)`` occupies global columns ``cx*tiles_x ..`` and global
  rows ``cy*(tiles_y+2) ..``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Tuple

Coord = Tuple[int, int]


class NodeKind(Enum):
    """What sits at a network node."""

    TILE = "tile"
    CACHE = "cache"


@dataclass(frozen=True)
class CellGeometry:
    """Shape of one Cell: the unit of replication and of PGAS affinity."""

    tiles_x: int
    tiles_y: int

    def __post_init__(self) -> None:
        if self.tiles_x <= 0 or self.tiles_y <= 0:
            raise ValueError("cell dimensions must be positive")

    @property
    def rows(self) -> int:
        """Total grid rows a Cell occupies (tiles + two cache strips)."""
        return self.tiles_y + 2

    @property
    def cols(self) -> int:
        return self.tiles_x

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def num_banks(self) -> int:
        """Cache banks per Cell: one full strip on top and one on bottom."""
        return 2 * self.tiles_x

    def tile_coords(self) -> Iterator[Coord]:
        """Cell-local coordinates of all compute tiles."""
        for y in range(1, self.tiles_y + 1):
            for x in range(self.tiles_x):
                yield (x, y)

    def bank_coords(self) -> Iterator[Coord]:
        """Cell-local coordinates of all cache banks (north strip first)."""
        for x in range(self.tiles_x):
            yield (x, 0)
        for x in range(self.tiles_x):
            yield (x, self.tiles_y + 1)

    def bank_index(self, local: Coord) -> int:
        """Dense index of a bank from its cell-local coordinate."""
        x, y = local
        if y == 0:
            return x
        if y == self.tiles_y + 1:
            return self.tiles_x + x
        raise ValueError(f"{local} is not a cache-bank coordinate")

    def bank_coord(self, index: int) -> Coord:
        """Inverse of :meth:`bank_index`."""
        if not 0 <= index < self.num_banks:
            raise ValueError(f"bank index {index} out of range")
        if index < self.tiles_x:
            return (index, 0)
        return (index - self.tiles_x, self.tiles_y + 1)

    def tile_index(self, local: Coord) -> int:
        """Dense index of a tile from its cell-local coordinate."""
        x, y = local
        if not (0 <= x < self.tiles_x and 1 <= y <= self.tiles_y):
            raise ValueError(f"{local} is not a tile coordinate")
        return (y - 1) * self.tiles_x + x

    def tile_coord(self, index: int) -> Coord:
        if not 0 <= index < self.num_tiles:
            raise ValueError(f"tile index {index} out of range")
        return (index % self.tiles_x, index // self.tiles_x + 1)


@dataclass(frozen=True)
class ChipGeometry:
    """A 2-D array of Cells on one global network grid."""

    cell: CellGeometry
    cells_x: int
    cells_y: int

    def __post_init__(self) -> None:
        if self.cells_x <= 0 or self.cells_y <= 0:
            raise ValueError("cell array dimensions must be positive")

    @property
    def num_cells(self) -> int:
        return self.cells_x * self.cells_y

    @property
    def num_tiles(self) -> int:
        return self.num_cells * self.cell.num_tiles

    @property
    def grid_cols(self) -> int:
        return self.cells_x * self.cell.cols

    @property
    def grid_rows(self) -> int:
        return self.cells_y * self.cell.rows

    def cell_origin(self, cell_xy: Coord) -> Coord:
        """Global coordinate of a Cell's top-left grid node."""
        cx, cy = cell_xy
        if not (0 <= cx < self.cells_x and 0 <= cy < self.cells_y):
            raise ValueError(f"cell {cell_xy} out of range")
        return (cx * self.cell.cols, cy * self.cell.rows)

    def to_global(self, cell_xy: Coord, local: Coord) -> Coord:
        ox, oy = self.cell_origin(cell_xy)
        return (ox + local[0], oy + local[1])

    def to_local(self, node: Coord) -> Tuple[Coord, Coord]:
        """Split a global node coordinate into ``(cell_xy, local_xy)``."""
        x, y = node
        if not (0 <= x < self.grid_cols and 0 <= y < self.grid_rows):
            raise ValueError(f"node {node} outside the chip")
        cx, lx = divmod(x, self.cell.cols)
        cy, ly = divmod(y, self.cell.rows)
        return (cx, cy), (lx, ly)

    def cells(self) -> Iterator[Coord]:
        for cy in range(self.cells_y):
            for cx in range(self.cells_x):
                yield (cx, cy)

    def all_nodes(self) -> Iterator[Tuple[Coord, NodeKind]]:
        """Every network node on the chip with its kind."""
        for cell_xy in self.cells():
            for local in self.cell.tile_coords():
                yield self.to_global(cell_xy, local), NodeKind.TILE
            for local in self.cell.bank_coords():
                yield self.to_global(cell_xy, local), NodeKind.CACHE

    def kind_of(self, node: Coord) -> NodeKind:
        _cell, (_lx, ly) = self.to_local(node)
        if ly == 0 or ly == self.cell.tiles_y + 1:
            return NodeKind.CACHE
        return NodeKind.TILE


def manhattan(a: Coord, b: Coord) -> int:
    """Hop distance on a plain mesh."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
