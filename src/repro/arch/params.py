"""Timing, capacity and physical parameters of the modelled hardware.

All latencies are expressed in *core* clock cycles.  The paper runs cores
at 1.35 GHz and HBM2 at 1.0 GHz; memory-side timings below are therefore
the published HBM2 values scaled by the 1.35 clock ratio and rounded.

Sources: paper Sections III and V-A (core latencies, scoreboard depth,
icache geometry), Table II (cache geometry, frequencies), JESD235A-like
HBM2 timing for the DRAM model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


CORE_FREQ_GHZ = 1.35
MEM_FREQ_GHZ = 1.0
CLOCK_RATIO = CORE_FREQ_GHZ / MEM_FREQ_GHZ

WORD_BYTES = 4
SCOREBOARD_ENTRIES = 63  # "up to 63 outstanding requests" per tile
SPM_BYTES = 4 * 1024
ICACHE_BYTES = 4 * 1024
ICACHE_LINE_INSTRS = 4
INSTR_BYTES = 4
RUCHE_FACTOR = 3  # horizontal links skip three tiles


@dataclass(frozen=True)
class CoreTiming:
    """Per-instruction latencies of the HB 5-stage core (Section V-H)."""

    int_alu: int = 1
    mul: int = 2
    fma: int = 3
    fadd: int = 3
    fmul: int = 3
    fdiv: int = 25  # iterative divider
    fsqrt: int = 25  # iterative square root
    local_load: int = 2
    local_store: int = 1
    branch_miss_penalty: int = 2
    icache_miss_penalty: int = 40  # refill of a 4-instruction line via NoC
    scoreboard_entries: int = SCOREBOARD_ENTRIES


@dataclass(frozen=True)
class CacheTiming:
    """LLC bank timing and structure (Table II geometry)."""

    sets: int = 64
    ways: int = 8
    block_bytes: int = 64
    hit_latency: int = 2
    mshr_entries: int = 32  # consolidated, shared by all tiles
    port_cycles_per_access: int = 1

    @property
    def capacity_bytes(self) -> int:
        return self.sets * self.ways * self.block_bytes

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // WORD_BYTES


@dataclass(frozen=True)
class HBMTiming:
    """HBM2 pseudo-channel timing, in core cycles (scaled from 1 GHz).

    One pseudo-channel serves 64 B in a burst of ``t_bl`` bus cycles,
    giving 16 GB/s per pseudo-channel -- 1 TB/s across the 64 channels of
    the four-stack system in the paper.
    """

    banks: int = 16
    row_bytes: int = 1024
    t_rcd: int = 19  # activate -> column command
    t_cl: int = 19  # column command -> first data
    t_rp: int = 19  # precharge
    t_bl: int = 6  # 64 B burst occupies the channel bus
    t_rc: int = 63  # activate -> activate, same bank
    refresh_overhead: float = 0.05  # fraction of cycles lost to refresh

    @property
    def row_miss_latency(self) -> int:
        return self.t_rp + self.t_rcd + self.t_cl

    @property
    def row_hit_latency(self) -> int:
        return self.t_cl


@dataclass(frozen=True)
class NocTiming:
    """Link/router timing for the word-oriented global network."""

    ruche_factor: int = RUCHE_FACTOR  # hop distance of the long links
    link_cycles_per_flit: int = 1
    router_latency: int = 1  # pipeline latency added per hop
    inject_latency: int = 1
    eject_latency: int = 1
    # Load packet compression: four sequential word loads collapse into one
    # request flit; the four response words share headers across two flits.
    compression_group: int = 4
    compressed_request_flits: int = 1
    compressed_response_flits: int = 2


@dataclass(frozen=True)
class BarrierTiming:
    """The 1-bit HW barrier network (Fig 4)."""

    hop_latency: int = 1  # per ruche/mesh hop of the barrier tree
    config_latency: int = 4  # writing the two configuration registers


@dataclass(frozen=True)
class Timings:
    """Bundle of every timing domain; one instance per machine config."""

    core: CoreTiming = field(default_factory=CoreTiming)
    cache: CacheTiming = field(default_factory=CacheTiming)
    hbm: HBMTiming = field(default_factory=HBMTiming)
    noc: NocTiming = field(default_factory=NocTiming)
    barrier: BarrierTiming = field(default_factory=BarrierTiming)


DEFAULT_TIMINGS = Timings()
