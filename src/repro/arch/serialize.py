"""Machine-config serialization: reproducible experiment manifests.

``to_dict``/``from_dict`` round-trip a :class:`MachineConfig` through
plain JSON-compatible data, so experiment scripts can log exactly which
machine produced a result and reload it later.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from .config import FeatureSet, MachineConfig
from ..pim.config import PimConfig
from .geometry import CellGeometry
from .params import (
    BarrierTiming,
    CacheTiming,
    CoreTiming,
    HBMTiming,
    NocTiming,
    Timings,
)

_TIMING_CLASSES = {
    "core": CoreTiming,
    "cache": CacheTiming,
    "hbm": HBMTiming,
    "noc": NocTiming,
    "barrier": BarrierTiming,
}


def to_dict(config: MachineConfig) -> Dict[str, Any]:
    """A JSON-compatible description of the full machine configuration."""
    return {
        "name": config.name,
        "cell": {"tiles_x": config.cell.tiles_x,
                 "tiles_y": config.cell.tiles_y},
        "cells_x": config.cells_x,
        "cells_y": config.cells_y,
        "features": dataclasses.asdict(config.features),
        "timings": {
            domain: dataclasses.asdict(getattr(config.timings, domain))
            for domain in _TIMING_CLASSES
        },
        "pseudo_channels_per_cell": config.pseudo_channels_per_cell,
        "hbm_scale": config.hbm_scale,
        "global_grid": list(config.global_grid),
        "pim": (dataclasses.asdict(config.pim)
                if config.pim is not None else None),
        "published": dict(config.published),
    }


def from_dict(data: Dict[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :func:`to_dict` output."""
    try:
        timings = Timings(**{
            domain: cls(**data["timings"][domain])
            for domain, cls in _TIMING_CLASSES.items()
        })
        return MachineConfig(
            name=data["name"],
            cell=CellGeometry(**data["cell"]),
            cells_x=data["cells_x"],
            cells_y=data["cells_y"],
            features=FeatureSet(**data["features"]),
            timings=timings,
            pseudo_channels_per_cell=data["pseudo_channels_per_cell"],
            hbm_scale=data["hbm_scale"],
            global_grid=tuple(data["global_grid"]),
            # Absent in manifests that predate the PIM subsystem.
            pim=(PimConfig(**data["pim"])
                 if data.get("pim") is not None else None),
            published=dict(data.get("published", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed machine-config manifest: {exc}") from exc


def to_json(config: MachineConfig, indent: int = 2) -> str:
    return json.dumps(to_dict(config), indent=indent, sort_keys=True)


def from_json(text: str) -> MachineConfig:
    return from_dict(json.loads(text))
