"""repro.audit: invariant checking and differential validation.

The timing model's contention effects -- row-buffer locality, bank
parallelism, non-blocking cache banks, NoC congestion -- only support
the paper's conclusions if they are modelled *correctly*.  This package
cross-checks the optimized implementations against first principles:
debug-mode invariants wired through the engine, memory system and NoC,
plus naive reference models (an O(ways)-scan LRU, an explicit
opened-row DRAM tracker, hop-count latency bounds) shadowing the fast
paths live.

Usage (the Session flag is the normal entry point)::

    import repro

    session = repro.Session(repro.HB_16x8, audit=True)
    session.launch(kernel, args)
    session.run()
    print(session.auditor.summary())
    assert session.auditor.clean

or, from a shell::

    python -m repro audit Jacobi --size small
    python -m repro audit all --size small --json

See ``docs/MODEL.md`` ("Model invariants & validation") for the full
rule list and ``docs/API.md`` for the report schema.
"""

from .checker import AuditConfig, Auditor, Violation
from .instrument import attach
from .reference import (
    RefLruCache,
    RefLruSet,
    RefRowState,
    hbm_min_latency,
    hbm_serialization_floor,
    min_hops,
    noc_store_and_forward_floor,
)
from .report import audit_report, format_report

__all__ = [
    "AuditConfig",
    "Auditor",
    "RefLruCache",
    "RefLruSet",
    "RefRowState",
    "Violation",
    "attach",
    "audit_report",
    "format_report",
    "hbm_min_latency",
    "hbm_serialization_floor",
    "min_hops",
    "noc_store_and_forward_floor",
]
