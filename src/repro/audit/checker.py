"""The invariant and differential-validation engine.

An :class:`Auditor` receives observational callbacks from instrumented
components (see :mod:`repro.audit.instrument` for the wiring and
``docs/MODEL.md`` "Model invariants & validation" for the rule list) and
checks two kinds of property:

* **invariants** -- facts that must hold at every single step: event
  time never moves backwards, a bank port never double-books a cycle,
  MSHR entries are allocated/merged/released in balance, a cache set
  never holds more lines than it has ways, an HBM bank's ``ready_at``
  only advances, bus bursts serialize, utilization categories sum to 1;

* **differentials** -- the fast implementations shadowed live by the
  naive reference models of :mod:`repro.audit.reference`: the
  dict-ordered LRU against an O(ways) recency-list scan, the DRAM
  row-state classifier against an explicit opened-bank flag, packet
  latency against the hop-count lower bound.

Auditing is purely observational: an audited run is cycle-identical to
an unaudited one (pinned by ``tests/test_audit.py``).  Violations are
deduplicated per (kind, component) site with occurrence counts, the way
the sanitizer reports findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .reference import RefLruSet, RefRowState, min_hops


@dataclass(frozen=True)
class AuditConfig:
    """Knobs for ``Session(audit=...)``.

    * ``max_sites`` -- distinct (kind, component) violation sites kept;
      further occurrences at recorded sites still count.
    * ``tolerance`` -- slack for floating-point comparisons (category
      sums, latency bounds).
    * ``shadow_cache`` / ``shadow_hbm`` / ``check_noc`` -- disable
      individual check families (all on by default).
    """

    max_sites: int = 64
    tolerance: float = 1e-9
    shadow_cache: bool = True
    shadow_hbm: bool = True
    check_noc: bool = True


@dataclass
class Violation:
    """One deduplicated invariant/differential failure site."""

    kind: str
    component: str
    detail: str
    time: float
    count: int = 1
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "kind": self.kind,
            "component": self.component,
            "detail": self.detail,
            "time": self.time,
            "count": self.count,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out


class _BankShadow:
    """Reference state mirrored per audited cache bank."""

    __slots__ = ("sets", "ways", "mshr_lines", "mshr_capacity",
                 "port_free", "retries")

    def __init__(self, nsets: int, ways: int, mshr_capacity: int) -> None:
        self.sets = [RefLruSet(ways) for _ in range(nsets)]
        self.ways = ways
        self.mshr_lines: set = set()
        self.mshr_capacity = mshr_capacity
        self.port_free: float = 0.0
        self.retries = 0


class _ChannelShadow:
    """Reference state mirrored per audited HBM pseudo-channel."""

    __slots__ = ("rowstate", "bus_free", "bank_ready")

    def __init__(self, window: float) -> None:
        self.rowstate = RefRowState(window)
        self.bus_free: float = 0.0
        self.bank_ready: Dict[int, float] = {}


class _PimShadow:
    """Reference state mirrored per audited PIM engine."""

    __slots__ = ("grf_entries", "written")

    def __init__(self, grf_entries: int) -> None:
        self.grf_entries = grf_entries
        #: (bank, grf index) pairs initialized by WR_BIAS or a
        #: destination-writing micro-op; MAC accumulation and RD_MAC
        #: reads of anything else hit stale silicon.
        self.written: set = set()


class Auditor:
    """Collects violations from every instrumented component of one run."""

    def __init__(self, config: Optional[AuditConfig] = None) -> None:
        self.config = config or AuditConfig()
        #: Total individual checks evaluated (cheap integer bump each).
        self.checks = 0
        self.counts: Dict[str, int] = {}
        self.violations: List[Violation] = []
        self._sites: Dict[Tuple[str, str], Violation] = {}
        self._machine: Optional[Any] = None
        self._last_event_time: float = 0.0
        self._banks: Dict[int, _BankShadow] = {}
        self._channels: Dict[int, _ChannelShadow] = {}
        self._pims: Dict[int, _PimShadow] = {}
        self._strip_free: Dict[Tuple[int, int], float] = {}
        self.finalized = False

    # -- plumbing -----------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def bind(self, machine: Any) -> None:
        self._machine = machine

    def _record(self, kind: str, component: str, time: float, detail: str,
                **extra: Any) -> None:
        site = self._sites.get((kind, component))
        if site is not None:
            site.count += 1
        elif len(self._sites) < self.config.max_sites:
            site = Violation(kind, component, detail, time, extra=extra)
            self._sites[(kind, component)] = site
            self.violations.append(site)
        self.counts[kind] = self.counts.get(kind, 0) + 1

    # -- registration (instrument.attach + the differential tests) ----------

    def watch_bank(self, bank: Any) -> None:
        timing = bank.timing
        self._banks[id(bank)] = _BankShadow(
            timing.sets, timing.ways, timing.mshr_entries)

    def watch_channel(self, channel: Any) -> None:
        self._channels[id(channel)] = _ChannelShadow(channel.REORDER_WINDOW)

    def watch_pim(self, engine: Any) -> None:
        self._pims[id(engine)] = _PimShadow(engine.config.grf_entries)

    def watch_strip(self, strip: Any) -> None:
        for idx in range(strip.num_channels):
            self._strip_free[(id(strip), idx)] = 0.0

    def watch_network(self, net: Any) -> None:
        pass  # stateless checks; hook attribute is enough

    # -- engine -------------------------------------------------------------

    def engine_event(self, now: float) -> None:
        """Called after every dispatched event (slow run loop only)."""
        self.checks += 1
        if now < self._last_event_time:
            self._record(
                "event-time-regression", "engine", now,
                f"event dispatched at t={now:g} after t="
                f"{self._last_event_time:g}")
        else:
            self._last_event_time = now

    # -- cache banks --------------------------------------------------------

    def cache_access(self, bank: Any, set_idx: int, line: int, hit: bool,
                     time: float, start: float, port_cycles: float,
                     retry: bool = False) -> None:
        shadow = self._banks.get(id(bank))
        if shadow is None:
            return
        self.checks += 1
        tol = self.config.tolerance
        if port_cycles < 1:
            self._record(
                "port-occupancy-zero", bank.name, time,
                f"access reserved {port_cycles:g} port cycles (< 1): the "
                f"request occupies no bank-port time")
        if start < time - tol:
            self._record(
                "port-reserve-past", bank.name, time,
                f"port granted start {start:g} before request time {time:g}")
        if start < shadow.port_free - tol:
            self._record(
                "port-overlap", bank.name, time,
                f"reservation at {start:g} overlaps previous window ending "
                f"{shadow.port_free:g}")
        shadow.port_free = max(shadow.port_free, start + port_cycles)
        if not self.config.shadow_cache or retry:
            # A retried miss re-arbitrates for the port but deliberately
            # skips the tag probe, so the recency shadow has nothing to
            # compare against.
            return
        lru = shadow.sets[set_idx]
        present = lru.probe(line)
        if hit != present:
            self._record(
                "lru-divergence", bank.name, time,
                f"fast path classified line {line:#x} as "
                f"{'hit' if hit else 'miss'}, reference recency list says "
                f"{'resident' if present else 'absent'}")
            # Re-sync so one divergence does not cascade.
            if hit and not present:
                lru.install(line)
        if hit:
            lru.promote(line)

    def cache_evict(self, bank: Any, set_idx: int, victim: int,
                    time: float) -> None:
        shadow = self._banks.get(id(bank))
        if shadow is None or not self.config.shadow_cache:
            return
        self.checks += 1
        lru = shadow.sets[set_idx]
        expected = lru.lines[0] if lru.lines else None
        if expected != victim:
            self._record(
                "lru-victim-divergence", bank.name, time,
                f"fast path evicted line {victim:#x}, reference LRU order "
                f"expected {expected if expected is None else hex(expected)}")
        if lru.probe(victim):
            lru.evict(victim)
        elif expected is not None:
            lru.evict(expected)

    def cache_install(self, bank: Any, set_idx: int, line: int,
                      time: float) -> None:
        shadow = self._banks.get(id(bank))
        if shadow is None:
            return
        self.checks += 1
        occupancy = len(bank._sets[set_idx])
        if occupancy > shadow.ways:
            self._record(
                "set-overflow", bank.name, time,
                f"set {set_idx} holds {occupancy} lines but has only "
                f"{shadow.ways} ways")
        if self.config.shadow_cache:
            lru = shadow.sets[set_idx]
            if not lru.probe(line):
                lru.install(line)

    # -- MSHR accounting ----------------------------------------------------

    def mshr_alloc(self, bank: Any, line: int, time: float) -> None:
        shadow = self._banks.get(id(bank))
        if shadow is None:
            return
        self.checks += 1
        if line in shadow.mshr_lines:
            self._record(
                "mshr-double-alloc", bank.name, time,
                f"line {line:#x} allocated while already in flight")
        elif len(shadow.mshr_lines) >= shadow.mshr_capacity:
            self._record(
                "mshr-overflow", bank.name, time,
                f"allocation beyond the {shadow.mshr_capacity}-entry file")
        shadow.mshr_lines.add(line)

    def mshr_merge(self, bank: Any, line: int, time: float) -> None:
        shadow = self._banks.get(id(bank))
        if shadow is None:
            return
        self.checks += 1
        if line not in shadow.mshr_lines:
            self._record(
                "mshr-merge-missing", bank.name, time,
                f"secondary miss merged onto line {line:#x} with no "
                f"primary entry in flight")

    def mshr_release(self, bank: Any, line: int, time: float) -> None:
        shadow = self._banks.get(id(bank))
        if shadow is None:
            return
        self.checks += 1
        if line not in shadow.mshr_lines:
            self._record(
                "mshr-double-release", bank.name, time,
                f"line {line:#x} released twice (or never allocated)")
        else:
            shadow.mshr_lines.discard(line)

    def mshr_retry(self, bank: Any, line: int, time: float,
                   retry_at: float) -> None:
        shadow = self._banks.get(id(bank))
        if shadow is None:
            return
        self.checks += 1
        shadow.retries += 1
        if retry_at <= time:
            self._record(
                "mshr-retry-spin", bank.name, time,
                f"full-MSHR retry rescheduled at {retry_at:g} <= now "
                f"{time:g}: the retry can spin without advancing time")

    # -- HBM pseudo-channels ------------------------------------------------

    def hbm_access(self, channel: Any, bank_idx: int, row: int, time: float,
                   start: float, row_state: str, burst_start: float,
                   burst_cycles: float, done: float, ready_before: float,
                   ready_after: float) -> None:
        shadow = self._channels.get(id(channel))
        if shadow is None:
            return
        self.checks += 1
        tol = self.config.tolerance
        name = channel.name
        if ready_after < ready_before - tol:
            self._record(
                "hbm-ready-regression", name, time,
                f"bank {bank_idx} ready_at moved backwards "
                f"({ready_before:g} -> {ready_after:g})")
        last_bus = shadow.bus_free
        if burst_start < last_bus - tol:
            self._record(
                "hbm-bus-overlap", name, time,
                f"burst at {burst_start:g} overlaps previous burst ending "
                f"{last_bus:g}: the shared data bus must serialize")
        shadow.bus_free = max(last_bus, burst_start + burst_cycles)
        floor = channel.timing.row_hit_latency + burst_cycles
        if done - time < floor - tol:
            self._record(
                "hbm-latency-floor", name, time,
                f"access completed in {done - time:g} cycles, below the "
                f"analytic floor tCL + tBL = {floor:g}")
        if self.config.shadow_hbm:
            expected = shadow.rowstate.classify(bank_idx, row, start)
            if expected != row_state:
                self._record(
                    "row-state-divergence", name, time,
                    f"bank {bank_idx} row {row} classified "
                    f"'{row_state}', reference opened-row tracker says "
                    f"'{expected}'")
            shadow.rowstate.update(bank_idx, row,
                                   burst_start + burst_cycles)

    # -- PIM engines --------------------------------------------------------

    def pim_bus(self, engine: Any, cmd: str, start: float,
                cycles: float) -> None:
        """A PIM command's bus claim -- shares the channel's bus shadow,
        so PIM bursts and ordinary read/write bursts must mutually
        serialize (a separate shadow would miss mixed-traffic overlap)."""
        shadow = self._channels.get(id(engine.channel))
        if shadow is None:
            return
        self.checks += 1
        tol = self.config.tolerance
        if start < shadow.bus_free - tol:
            self._record(
                "pim-bus-overlap", engine.name, start,
                f"{cmd} bus claim at {start:g} overlaps previous burst "
                f"ending {shadow.bus_free:g}: PIM commands share the data "
                f"bus with ordinary traffic")
        shadow.bus_free = max(shadow.bus_free, start + cycles)

    def pim_bank_op(self, engine: Any, cmd: str, bank_idx: int, time: float,
                    start: float, ready_before: float, ready_after: float,
                    row: Optional[int] = None,
                    row_state: Optional[str] = None,
                    completion: Optional[float] = None) -> None:
        """One bank's share of a PIM command.

        Invariants: the op starts no earlier than the bank's ready time,
        occupies the bank at least one cycle, and never moves
        ``ready_at`` backwards.  Row-touching commands (``WR_SBK``,
        ``MAC_ABK``) pass ``row``/``row_state``/``completion`` and are
        additionally checked against the channel's reference opened-row
        tracker -- the same shadow ``hbm_access`` uses, so a PIM op can
        never overlap a row cycle an ordinary access already claimed.
        """
        if id(engine) not in self._pims:
            return
        self.checks += 1
        tol = self.config.tolerance
        name = engine.name
        if start < ready_before - tol:
            self._record(
                "pim-bank-overlap", name, time,
                f"{cmd} starts on bank {bank_idx} at {start:g}, before the "
                f"bank's ready time {ready_before:g}")
        if ready_after < start + 1 - tol:
            self._record(
                "pim-bank-underoccupied", name, time,
                f"{cmd} holds bank {bank_idx} until {ready_after:g}, less "
                f"than one cycle past its start {start:g}")
        if ready_after < ready_before - tol:
            self._record(
                "pim-ready-regression", name, time,
                f"bank {bank_idx} ready_at moved backwards "
                f"({ready_before:g} -> {ready_after:g})")
        if row is not None and self.config.shadow_hbm:
            shadow = self._channels.get(id(engine.channel))
            if shadow is not None:
                expected = shadow.rowstate.classify(bank_idx, row, start)
                if expected != row_state:
                    self._record(
                        "row-state-divergence", name, time,
                        f"{cmd} bank {bank_idx} row {row} classified "
                        f"'{row_state}', reference opened-row tracker says "
                        f"'{expected}'")
                shadow.rowstate.update(bank_idx, row, completion)

    def pim_grf(self, engine: Any, cmd: str, bank_idx: int,
                reads: Tuple[int, ...] = (),
                writes: Tuple[int, ...] = ()) -> None:
        """GRF discipline: indices in range, accumulators written before
        read (``reads`` are checked before ``writes`` are recorded, so a
        MAC accumulating into a never-initialized entry is flagged)."""
        shadow = self._pims.get(id(engine))
        if shadow is None:
            return
        self.checks += 1
        name = engine.name
        for idx in reads + writes:
            if not 0 <= idx < shadow.grf_entries:
                self._record(
                    "pim-grf-bounds", name, 0.0,
                    f"{cmd} touches GRF entry {idx} of bank {bank_idx}, "
                    f"outside [0, {shadow.grf_entries})")
        for idx in reads:
            if (bank_idx, idx) not in shadow.written:
                self._record(
                    "pim-acc-uninit", name, 0.0,
                    f"{cmd} reads GRF entry {idx} of bank {bank_idx} "
                    f"before any WR_BIAS or micro-op wrote it")
        for idx in writes:
            shadow.written.add((bank_idx, idx))

    # -- wormhole strips ----------------------------------------------------

    def strip_transfer(self, strip: Any, channel_idx: int, time: float,
                       start: float, burst: float, done: float,
                       bank_x: int) -> None:
        key = (id(strip), channel_idx)
        if key not in self._strip_free:
            return
        self.checks += 1
        tol = self.config.tolerance
        name = f"strip:ch{channel_idx}"
        last = self._strip_free[key]
        if start < last - tol:
            self._record(
                "strip-overlap", name, time,
                f"burst at {start:g} overlaps previous burst ending "
                f"{last:g} on channel {channel_idx}")
        self._strip_free[key] = max(last, start + burst)
        floor = burst + strip._transit_latency(bank_x)
        if done - start < floor - tol:
            self._record(
                "strip-latency-floor", name, time,
                f"transfer took {done - start:g} cycles, below burst + "
                f"transit = {floor:g}")

    # -- global NoC ---------------------------------------------------------

    def noc_send(self, net: Any, src: Any, dst: Any, flits: int, time: float,
                 report: Any) -> None:
        if not self.config.check_noc:
            return
        self.checks += 1
        tol = self.config.tolerance
        if report.stall_cycles < -tol:
            self._record(
                "noc-negative-stall", net.name, time,
                f"packet {src}->{dst} reports negative stall "
                f"{report.stall_cycles:g}")
        floor_hops = min_hops(src, dst, net.timing.ruche_factor,
                              net.topology.ruche)
        if report.hops < floor_hops:
            self._record(
                "noc-hop-undercount", net.name, time,
                f"packet {src}->{dst} traversed {report.hops} links, below "
                f"the topological minimum {floor_hops}")
        # Wormhole arrival decomposes exactly into the store-and-forward
        # style bound plus accumulated link stalls.
        bound = (time + net._inject + report.hops * net._hop_cost
                 + (flits - 1) + net._eject)
        if abs((report.arrival - report.stall_cycles) - bound) > tol:
            self._record(
                "noc-latency-decomposition", net.name, time,
                f"packet {src}->{dst}: arrival {report.arrival:g} - stalls "
                f"{report.stall_cycles:g} != zero-load bound {bound:g}")

    # -- end-of-run sweeps --------------------------------------------------

    def check_result(self, result: Any) -> None:
        """Post-run: reported utilization categories must sum to one."""
        tol = max(self.config.tolerance, 1e-6)
        self.checks += 1
        total = sum(result.core_breakdown.values())
        if result.core_breakdown and abs(total - 1.0) > tol:
            self._record(
                "breakdown-sum", f"result:{result.kernel_name}",
                result.cycles,
                f"core stall breakdown sums to {total:.9f}, not 1")
        self.checks += 1
        if result.hbm:
            total = sum(result.hbm.values())
            bad_range = any(not (0.0 - tol <= v <= 1.0 + tol)
                            for v in result.hbm.values())
            if abs(total - 1.0) > tol or bad_range:
                self._record(
                    "utilization-sum", f"result:{result.kernel_name}",
                    result.cycles,
                    f"HBM utilization categories sum to {total:.9f} "
                    f"(read/write/busy/idle must partition elapsed time)")

    def finalize(self, now: float) -> None:
        """End-of-run sweeps: leaked MSHRs, occupancy, channel categories."""
        if self.finalized:
            return
        self.finalized = True
        machine = self._machine
        if machine is None:
            return
        memsys = machine.memsys
        tol = max(self.config.tolerance, 1e-6)
        for bank in memsys.banks.values():
            shadow = self._banks.get(id(bank))
            self.checks += 1
            if len(bank.mshr) != 0:
                self._record(
                    "mshr-leak", bank.name, now,
                    f"{len(bank.mshr)} MSHR entr(ies) still allocated after "
                    f"the run drained: a refill never released them")
            elif shadow is not None and shadow.mshr_lines:
                self._record(
                    "mshr-leak", bank.name, now,
                    f"shadow accounting holds {len(shadow.mshr_lines)} "
                    f"entr(ies) the bank no longer tracks")
            self.checks += 1
            for set_idx, ways in enumerate(bank._sets):
                if len(ways) > bank.timing.ways:
                    self._record(
                        "set-overflow", bank.name, now,
                        f"set {set_idx} ended with {len(ways)} lines in "
                        f"{bank.timing.ways} ways")
                    break
        for channel in memsys.hbm.values():
            if channel.counters.total() == 0:
                continue
            self.checks += 1
            util = channel.utilization(max(now, channel.last_completion))
            total = sum(util.values())
            bad_range = any(not (0.0 - tol <= v <= 1.0 + tol)
                            for v in util.values())
            if abs(total - 1.0) > tol or bad_range:
                self._record(
                    "utilization-sum", channel.name, now,
                    f"utilization categories sum to {total:.9f} "
                    f"(values: " + ", ".join(
                        f"{k}={v:.6f}" for k, v in util.items()) + ")")

    # -- reporting ----------------------------------------------------------

    def summary(self) -> str:
        if self.clean:
            return f"audit: clean ({self.checks} checks)"
        total = sum(self.counts.values())
        kinds = ", ".join(f"{k} x{v}" for k, v in sorted(self.counts.items()))
        return (f"audit: {total} violation(s) ({kinds}; "
                f"{self.checks} checks)")
