"""Wire an :class:`Auditor` into a live machine.

:func:`attach` is the single place that knows which components carry
``_audit`` hooks: the simulator run loop (event-time monotonicity), the
cache banks (port reservations, LRU shadowing, MSHR accounting), the
HBM pseudo-channels (bank readiness, bus serialization, row-state
shadowing), the wormhole strips and both global NoC planes.

Attach before launching kernels; detaching is not supported -- build a
fresh machine (or ``Session``) for an unaudited run.  The auditor is
purely observational: audit-on runs are cycle-identical to audit-off
runs (pinned by tests/test_audit.py).
"""

from __future__ import annotations

from typing import Any


def attach(machine: Any, auditor: Any) -> Any:
    """Instrument ``machine`` with ``auditor``; returns the auditor."""
    sim = machine.sim
    if getattr(sim, "audit", None) is not None:
        raise RuntimeError("machine already has an auditor attached")
    auditor.bind(machine)
    sim.audit = auditor
    memsys = machine.memsys
    for bank in memsys.banks.values():
        bank._audit = auditor
        auditor.watch_bank(bank)
    for channel in memsys.hbm.values():
        channel._audit = auditor
        auditor.watch_channel(channel)
    for engine in getattr(memsys, "pim_engines", {}).values():
        engine._audit = auditor
        auditor.watch_pim(engine)
    for strip in memsys.strips.values():
        strip._audit = auditor
        auditor.watch_strip(strip)
    for net in (memsys.req_net, memsys.resp_net):
        net._audit = auditor
        auditor.watch_network(net)
    return auditor
