"""Slow first-principles reference models for differential validation.

Each class here re-derives one timing-model behaviour the *naive* way --
linear scans, explicit state, no clever data structures -- so the
optimized implementations in :mod:`repro.mem` and :mod:`repro.noc` can
be cross-checked against them, both live (the :class:`~.checker.Auditor`
shadows every audited run with these) and offline (the hypothesis
property tests in ``tests/test_audit_differential.py`` drive randomized
traffic through both sides and compare).

The references deliberately trade speed for obviousness: they are the
spec, the fast paths are the implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class RefLruSet:
    """One cache set as an explicit recency list, scanned in O(ways).

    ``lines[0]`` is the LRU line, ``lines[-1]`` the MRU -- exactly the
    ordering the dict-based :class:`~repro.mem.cache.CacheBank` encodes
    through insertion order.  Every operation is a linear scan so the
    reference cannot share a bug with the dict implementation.
    """

    __slots__ = ("ways", "lines")

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.lines: List[int] = []  # LRU .. MRU

    def probe(self, line: int) -> bool:
        for resident in self.lines:  # deliberate O(ways) scan
            if resident == line:
                return True
        return False

    def promote(self, line: int) -> None:
        self.lines.remove(line)
        self.lines.append(line)

    def victim(self) -> Optional[int]:
        """The line LRU replacement must evict next (None if not full)."""
        if len(self.lines) < self.ways:
            return None
        return self.lines[0]

    def evict(self, line: int) -> None:
        self.lines.remove(line)

    def install(self, line: int) -> None:
        self.lines.append(line)

    def __len__(self) -> int:
        return len(self.lines)


class RefLruCache:
    """A whole bank's tag state with write-validate/write-allocate policy.

    Functional reference for sequential (one-request-at-a-time) traffic:
    misses install their line immediately, so it matches
    :class:`~repro.mem.cache.CacheBank` only when each access completes
    before the next is issued -- which is how the differential tests
    drive it.  Counter names mirror the bank's so dicts compare directly.
    """

    def __init__(self, sets: int, ways: int, block_bytes: int,
                 write_validate: bool = True) -> None:
        self.nsets = sets
        self.block_bytes = block_bytes
        self.write_validate = write_validate
        self.sets = [RefLruSet(ways) for _ in range(sets)]
        self.dirty: Dict[int, bool] = {}
        self.counters: Dict[str, int] = {
            "accesses": 0, "amos": 0, "load_hits": 0, "store_hits": 0,
            "load_misses": 0, "store_misses": 0, "evictions": 0,
            "writebacks": 0, "hbm_reads": 0, "hbm_writes": 0,
        }

    def access(self, addr: int, is_write: bool, is_amo: bool = False) -> str:
        """Classify one access; returns ``"hit"`` or ``"miss"``."""
        cv = self.counters
        cv["accesses"] += 1
        if is_amo:
            cv["amos"] += 1
        line = addr // self.block_bytes
        lru = self.sets[line % self.nsets]
        if lru.probe(line):
            lru.promote(line)
            cv["store_hits" if is_write else "load_hits"] += 1
            if is_write or is_amo:
                self.dirty[line] = True
            return "hit"
        cv["store_misses" if is_write else "load_misses"] += 1
        if is_amo:
            cv["hbm_reads"] += 1  # RMW always needs the old line
            self._install(line, dirty=True)
        elif is_write and self.write_validate:
            self._install(line, dirty=True)  # allocate without fetching
        else:
            cv["hbm_reads"] += 1
            self._install(line, dirty=is_write)
        return "miss"

    def _install(self, line: int, dirty: bool) -> None:
        lru = self.sets[line % self.nsets]
        if lru.probe(line):
            if dirty:
                self.dirty[line] = True
            return
        victim = lru.victim()
        if victim is not None:
            lru.evict(victim)
            self.counters["evictions"] += 1
            if self.dirty.pop(victim, False):
                self.counters["writebacks"] += 1
                self.counters["hbm_writes"] += 1
        lru.install(line)
        self.dirty[line] = dirty


class RefRowState:
    """Reference DRAM row-state classifier with an explicit opened flag.

    The semantics the fast model is supposed to implement: an access
    row-*hits* when the same row was touched within the FR-FCFS reorder
    window; it *opens* (pays tRCD only) when its bank has never been
    activated; anything else is a *conflict* (pays tRP + tRCD) -- a row
    is open, just not a usable one.  Crucially, ``opened`` is a one-way
    flag: forgetting old rows (the fast path prunes its timestamp map)
    never turns an activated bank back into a fresh one.
    """

    def __init__(self, window: float) -> None:
        self.window = window
        self._opened: Dict[int, bool] = {}
        self._rows: Dict[Tuple[int, int], float] = {}  # (bank, row) -> last

    def classify(self, bank: int, row: int, start: float) -> str:
        last = self._rows.get((bank, row))
        if last is not None and start - last <= self.window:
            return "hit"
        if not self._opened.get(bank, False):
            return "open"
        return "conflict"

    def update(self, bank: int, row: int, completion: float) -> None:
        self._opened[bank] = True
        self._rows[(bank, row)] = completion

    def prune(self, horizon: float) -> None:
        """Drop stale timestamps (never affects classification: an entry
        older than the window cannot produce a hit anyway)."""
        self._rows = {k: t for k, t in self._rows.items() if t >= horizon}


def hbm_min_latency(timing, burst_cycles: int) -> float:
    """Analytic floor for one line access: even a row hit on an idle
    channel pays the column latency plus the full burst."""
    return timing.row_hit_latency + burst_cycles


def hbm_serialization_floor(accesses: int, burst_cycles: int) -> float:
    """The shared data bus serializes bursts: ``n`` accesses cannot all
    complete before ``n * tBL`` bus cycles have elapsed."""
    return accesses * burst_cycles


def noc_store_and_forward_floor(hops: int, flits: int, timing) -> float:
    """Hop-count lower bound on packet latency, from first principles.

    A wormhole packet's head flit pays router + link latency per hop and
    the tail trails ``flits - 1`` cycles behind; no flow control scheme
    can beat ``inject + hops * (router + link) + (flits - 1) + eject``
    on an uncontended path, and contention only adds to it.
    """
    hop_cost = timing.router_latency + timing.link_cycles_per_flit
    return (timing.inject_latency + hops * hop_cost + (flits - 1)
            + timing.eject_latency)


def min_hops(src, dst, ruche_factor: int, ruche: bool) -> int:
    """Fewest links any route could possibly use between two nodes.

    Horizontal distance is covered at most ``ruche_factor`` tiles per
    hop (ruche links), vertical distance one tile per hop, so
    ``ceil(dx / factor) + dy`` lower-bounds every route.  The actual
    dimension-ordered router uses ``dx // factor + dx % factor + dy``
    (greedy long hops, mesh remainder) -- never fewer.
    """
    dx = abs(src[0] - dst[0])
    dy = abs(src[1] - dst[1])
    factor = ruche_factor if (ruche and ruche_factor > 1) else 1
    return -(-dx // factor) + dy
