"""Text and JSON rendering of audit results."""

from __future__ import annotations

from typing import Any, Dict


def audit_report(auditor: Any) -> Dict[str, Any]:
    """JSON-able report for one audited run."""
    return {
        "clean": auditor.clean,
        "checks": auditor.checks,
        "counts": dict(sorted(auditor.counts.items())),
        "violations": [v.to_dict() for v in auditor.violations],
        "violations_recorded": len(auditor.violations),
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable audit report."""
    lines = []
    if report["clean"]:
        lines.append(f"audit: clean ({report['checks']} invariant/"
                     f"differential checks)")
        return "\n".join(lines)
    total = sum(report["counts"].values())
    counts = ", ".join(f"{k} x{v}" for k, v in report["counts"].items())
    lines.append(f"audit: {total} violation(s) "
                 f"({counts}; {report['checks']} checks)")
    for i, violation in enumerate(report["violations"], 1):
        head = (f"  #{i} {violation['kind']} @ {violation['component']} "
                f"(cycle {violation['time']:.0f}): {violation['detail']}")
        if violation.get("count", 1) > 1:
            head += f"  (x{violation['count']} occurrences)"
        lines.append(head)
    recorded = report["violations_recorded"]
    if total > recorded and recorded:
        lines.append(f"  ... further occurrences collapsed into the "
                     f"{recorded} site(s) above")
    return "\n".join(lines)
