"""Baseline architectures the paper compares against."""

from .features import DENSITY_RATIO, ladder, ladder_names
from .hierarchical import (
    CACHE_RATIO,
    CHANNEL_BITS,
    THREAD_RATIO,
    TransferEstimate,
    WideChannelModel,
    WordChannelModel,
    et_config,
)

__all__ = [
    "ladder",
    "ladder_names",
    "DENSITY_RATIO",
    "et_config",
    "WideChannelModel",
    "WordChannelModel",
    "TransferEstimate",
    "THREAD_RATIO",
    "CACHE_RATIO",
    "CHANNEL_BITS",
]
