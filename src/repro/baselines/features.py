"""The Fig 10 incremental feature ladder.

Starts from a "Baseline Manycore" whose router bandwidth, cache
capability and core density are normalized to TILE64-class designs, then
improves each physical parameter to reach the "Cellular Baseline", and
finally layers on HB's architectural features one at a time:

    baseline-manycore -> +router -> +cache -> +density (Cellular Baseline)
    -> +nonblocking-loads -> +ruche -> +write-validate
    -> +load-compression -> +ipoly -> +nonblocking-cache (full HB)

Each rung is a complete :class:`MachineConfig`; the harness runs the same
total workload on every rung and reports speedup over the first.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from ..arch.config import NO_FEATURES, FeatureSet, MachineConfig
from ..arch.geometry import CellGeometry
from ..arch.params import DEFAULT_TIMINGS

#: Density ratio between HB and the TILE64-class baseline, from Table IV
#: (26.4 vs 3.3 cores/mm^2 is 8x; we use 4x so the reduced arrays keep a
#: sensible 2-D shape at every rung).
DENSITY_RATIO = 4


def _degraded_timings():
    """Slow router (narrow channels) and a weaker cache front-end."""
    noc = replace(DEFAULT_TIMINGS.noc, link_cycles_per_flit=2, router_latency=2)
    cache = replace(DEFAULT_TIMINGS.cache, hit_latency=4, mshr_entries=4)
    return replace(DEFAULT_TIMINGS, noc=noc, cache=cache)


def _router_fixed():
    cache = replace(DEFAULT_TIMINGS.cache, hit_latency=4, mshr_entries=4)
    return replace(DEFAULT_TIMINGS, cache=cache)


def ladder(tiles_x: int = 16, tiles_y: int = 8) -> List[Tuple[str, MachineConfig]]:
    """The nine rungs of Fig 10 for a ``tiles_x x tiles_y`` Cell."""
    small = CellGeometry(tiles_x // 2, tiles_y // 2)  # 1/DENSITY_RATIO cores
    full = CellGeometry(tiles_x, tiles_y)
    no_feat = NO_FEATURES

    def cfg(name: str, cell: CellGeometry, timings, features: FeatureSet
            ) -> MachineConfig:
        return MachineConfig(name=name, cell=cell, features=features,
                             timings=timings)

    rungs: List[Tuple[str, MachineConfig]] = []
    rungs.append(("baseline-manycore",
                  cfg("baseline-manycore", small, _degraded_timings(), no_feat)))
    rungs.append(("+router",
                  cfg("+router", small, _router_fixed(), no_feat)))
    rungs.append(("+cache",
                  cfg("+cache", small, DEFAULT_TIMINGS, no_feat)))
    rungs.append(("+density (cellular baseline)",
                  cfg("cellular-baseline", full, DEFAULT_TIMINGS, no_feat)))

    feats = no_feat
    steps = (
        ("+nonblocking-loads", "nonblocking_loads"),
        ("+ruche", "ruche_network"),
        ("+write-validate", "write_validate"),
        ("+load-compression", "load_compression"),
        ("+ipoly", "ipoly_hashing"),
        ("+nonblocking-cache", "nonblocking_cache"),
    )
    for label, flag in steps:
        feats = replace(feats, **{flag: True})
        # HW barrier arrives together with the ruche 1-bit network.
        if flag == "ruche_network":
            feats = replace(feats, hw_barrier=True)
        rungs.append((label, cfg(label, full, DEFAULT_TIMINGS, feats)))
    return rungs


def ladder_names() -> List[str]:
    return [name for name, _cfg in ladder()]
