"""A representative hierarchical manycore ("ET"), after ET-SoC-1.

Used by Fig 16 (irregular-workload comparison) and Fig 3 (wide-channel
transfer efficiency).  The model follows the paper's method: thread
density, cache capacity and network bandwidth are *normalized to the
published chip*, and inter-cluster communication happens at block
granularity over wide (1024-bit) concentrated-mesh channels.

Two pieces:

* :func:`et_config` -- a MachineConfig with ET-like parameters: ~1/8 the
  independent threads of an equal-area HB Cell, 4x the per-bank cache
  capacity, and coarse block transfers (no word-granular remote access,
  modelled by disabling load compression and charging block-sized
  responses through a narrower effective word network).
* :class:`WideChannelModel` -- analytic timing for cluster-to-cluster
  block transfers; sparse single-word payloads waste the channel, which
  is the Fig 3/16 effect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..arch.config import FeatureSet, MachineConfig
from ..arch.geometry import CellGeometry
from ..arch.params import DEFAULT_TIMINGS

#: Independent-thread density ratio HB : ET on equal area.  Table IV gives
#: 26.4 vs 0.6 cores/mm^2 (44x); ET minions are wider cores, and the paper's
#: model normalizes thread count per area -- we adopt 8x so the simulated
#: cluster stays statistically meaningful at single-Cell scale.
THREAD_RATIO = 8
#: Cache capacity ratio ET : HB (ET's shires carry multi-MB L2).
CACHE_RATIO = 4
#: Inter-cluster channel width in bits (the representative hierarchical
#: manycore of the paper uses a 1024-bit 2-D mesh).
CHANNEL_BITS = 1024


def et_config(hb_tiles_x: int = 32, hb_tiles_y: int = 8) -> MachineConfig:
    """ET-like machine normalized to the same area as an HB Cell."""
    tiles = (hb_tiles_x * hb_tiles_y) // THREAD_RATIO
    # Keep a 2:1 aspect ratio cluster.
    ty = max(2, int((tiles / 2) ** 0.5))
    tx = max(2, tiles // ty)
    cache = replace(DEFAULT_TIMINGS.cache,
                    sets=DEFAULT_TIMINGS.cache.sets * CACHE_RATIO)
    features = FeatureSet(
        nonblocking_loads=True,  # minions have decoupled memory access
        ruche_network=False,  # plain concentrated mesh
        write_validate=False,
        load_compression=False,  # block-granular transfers instead
        ipoly_hashing=False,
        nonblocking_cache=True,
        hw_barrier=False,
    )
    return MachineConfig(
        name=f"ET-{tx}x{ty}",
        cell=CellGeometry(tx, ty),
        features=features,
        timings=replace(DEFAULT_TIMINGS, cache=cache),
        published={"thread_ratio": THREAD_RATIO, "cache_ratio": CACHE_RATIO},
    )


@dataclass
class TransferEstimate:
    """Result of a modelled inter-cluster / inter-Cell transfer."""

    cycles: float
    flits: int
    payload_bytes: int
    wire_bytes: int

    @property
    def efficiency(self) -> float:
        """Payload fraction of the bytes that crossed the wires."""
        if self.wire_bytes == 0:
            return 0.0
        return self.payload_bytes / self.wire_bytes


class WideChannelModel:
    """Block-granular wide-channel transfers (hierarchical baseline).

    A channel moves ``channel_bits/8`` bytes per cycle.  Dense transfers
    fill whole flits; *sparse* transfers (random single words) occupy one
    flit per word, wasting the rest -- the paper's Fig 3 point that wide
    channels cannot move sparse data efficiently.
    """

    def __init__(self, channel_bits: int = CHANNEL_BITS,
                 channels: int = 1, hop_latency: int = 4) -> None:
        self.channel_bytes = channel_bits // 8
        self.channels = channels
        self.hop_latency = hop_latency

    def transfer(self, payload_bytes: int, sparse: bool,
                 word_bytes: int = 4, hops: int = 1) -> TransferEstimate:
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if sparse:
            flits = -(-payload_bytes // word_bytes)  # one word per flit
        else:
            flits = -(-payload_bytes // self.channel_bytes)
        serialization = -(-flits // self.channels)
        cycles = serialization + hops * self.hop_latency
        return TransferEstimate(
            cycles=cycles,
            flits=flits,
            payload_bytes=payload_bytes,
            wire_bytes=flits * self.channel_bytes,
        )


class WordChannelModel:
    """HB's word-granular inter-Cell path, for analytic comparisons.

    The simulator measures this properly (Fig 3 harness); this closed
    form is used where the paper itself estimates ("conservatively
    estimated data transfer time based on data transfer size and network
    bandwidth").
    """

    def __init__(self, links: int, utilization: float = 0.85,
                 word_bytes: int = 4, hop_latency: int = 2) -> None:
        if not 0 < utilization <= 1:
            raise ValueError("utilization must be in (0, 1]")
        self.links = links
        self.utilization = utilization
        self.word_bytes = word_bytes
        self.hop_latency = hop_latency

    def transfer(self, payload_bytes: int, hops: int = 1) -> TransferEstimate:
        words = -(-payload_bytes // self.word_bytes)
        cycles = words / (self.links * self.utilization) + hops * self.hop_latency
        return TransferEstimate(
            cycles=cycles,
            flits=words,
            payload_bytes=payload_bytes,
            wire_bytes=words * self.word_bytes,
        )
