"""Command-line entry point: ``python -m repro <experiment>``.

Runs one of the paper-figure harnesses (or the whole set) and prints the
reproduced figure.  ``python -m repro list`` shows what is available.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import (
    ablations,
    chip_scale,
    fig03_bisection_transfer,
    fig04_barrier,
    fig10_incremental,
    fig11_utilization,
    fig12_tilegroups,
    fig13_energy,
    fig14_noc_bisection,
    fig15_doubling,
    fig16_vs_hierarchical,
    tables,
)

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig3": fig03_bisection_transfer.main,
    "fig4": fig04_barrier.main,
    "fig10": fig10_incremental.main,
    "fig11": fig11_utilization.main,
    "fig12": fig12_tilegroups.main,
    "fig13": fig13_energy.main,
    "fig14": fig14_noc_bisection.main,
    "fig15": fig15_doubling.main,
    "fig16": fig16_vs_hierarchical.main,
    "tables": tables.main,
    "ablations": ablations.main,
    "chip": chip_scale.main,
}

#: Rough single-run cost at default sizes, to set expectations.
COST_HINT = {
    "fig3": "~10 s", "fig4": "<1 s", "fig10": "minutes", "fig11": "~1 min",
    "fig12": "~1 min", "fig13": "<5 s", "fig14": "~2 min",
    "fig15": "minutes", "fig16": "~1 min", "tables": "<5 s",
    "ablations": "~3 min", "chip": "~30 s",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures/tables from the HammerBlade paper.",
    )
    parser.add_argument(
        "experiment",
        help="one of: " + ", ".join(EXPERIMENTS) + ", list, all",
    )
    args = parser.parse_args(argv)
    name = args.experiment.lower()
    if name == "list":
        for key in EXPERIMENTS:
            print(f"{key:8s} ({COST_HINT[key]})")
        return 0
    if name == "all":
        for key, fn in EXPERIMENTS.items():
            print(f"\n########## {key} ##########")
            fn()
        return 0
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    fn()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
