"""Command-line entry point: ``python -m repro <experiment>``.

Runs one of the paper-figure harnesses (or the whole set) and prints the
reproduced figure.  ``python -m repro list`` shows what is available.

* ``repro sweep <experiment|all>`` runs the experiment's job grid
  through the orchestrator: worker pool, content-addressed result cache
  (``.repro-cache/``), JSONL run journal, per-job timeout and retry;
  with ``--server HOST:PORT`` (or ``$REPRO_SERVER``) the same sweep is
  a thin client of a running scheduler daemon instead -- payloads are
  bit-identical either way;
* ``repro all`` is the same sweep over every experiment;
* ``repro serve`` starts the scheduler daemon: one warm worker pool,
  result cache and journal shared by every client (see
  :mod:`repro.serve`);
* ``repro submit <experiment|all>`` submits a job plan to a daemon and
  streams its progress events (``--events PATH`` records them);
* ``repro journal <path>`` summarizes a previous sweep's (or serve
  daemon's) journal;
* ``repro trace <kernel>`` runs one suite kernel with the cycle-timeline
  tracer attached and writes a Chrome-trace JSON (open in Perfetto);
* ``repro sanitize <kernel|fixture>`` runs one suite kernel (or the
  seeded-race diagnostic fixture) under the happens-before race checker
  and exits 1 if it finds anything;
* ``repro audit <kernel|all>`` runs one suite kernel (or every kernel)
  under the timing-model invariant/differential checker and exits 1 on
  any violation;
* ``repro cells <kernel|exchange|pipeline>`` simulates a multi-Cell
  grid as parallel PDES shards (``--cells CXxCY``, ``--cell-workers``,
  ``--check-determinism``);
* ``repro kernels`` lists the Table-I benchmark registry;
* ``repro bench-speed`` measures the engine's own host throughput;
* ``--profile`` wraps any experiment in cProfile and prints the hottest
  functions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from . import __version__
from .experiments import (
    ablations,
    chip_scale,
    fig03_bisection_transfer,
    fig04_barrier,
    fig10_incremental,
    fig11_utilization,
    fig12_tilegroups,
    fig13_energy,
    fig14_noc_bisection,
    fig15_doubling,
    fig16_vs_hierarchical,
    tables,
)

EXPERIMENTS: Dict[str, Callable[..., None]] = {
    "fig3": fig03_bisection_transfer.main,
    "fig4": fig04_barrier.main,
    "fig10": fig10_incremental.main,
    "fig11": fig11_utilization.main,
    "fig12": fig12_tilegroups.main,
    "fig13": fig13_energy.main,
    "fig14": fig14_noc_bisection.main,
    "fig15": fig15_doubling.main,
    "fig16": fig16_vs_hierarchical.main,
    "tables": tables.main,
    "ablations": ablations.main,
    "chip": chip_scale.main,
}

#: Rough single-run cost at default sizes, to set expectations.
COST_HINT = {
    "fig3": "~10 s", "fig4": "<1 s", "fig10": "minutes", "fig11": "~1 min",
    "fig12": "~1 min", "fig13": "<5 s", "fig14": "~2 min",
    "fig15": "minutes", "fig16": "~1 min", "tables": "<5 s",
    "ablations": "~3 min", "chip": "~30 s",
}


def _parse_cells(text: str) -> tuple:
    """``"2x1"`` -> ``(2, 1)`` (the --cells grid syntax)."""
    try:
        x, _, y = text.lower().partition("x")
        cx, cy = int(x), int(y)
        if cx < 1 or cy < 1:
            raise ValueError
        return cx, cy
    except ValueError:
        raise SystemExit(f"bad --cells {text!r}: want CXxCY, e.g. 2x1")


def _bench_cells(args: argparse.Namespace) -> int:
    """``bench-speed --cells``: PDES scaling over serialized execution."""
    import json

    from .arch.config import HB_16x8
    from .profile.speed import measure_cells

    cx, cy = _parse_cells(args.cells)
    config = HB_16x8.with_geometry(cells_x=cx, cells_y=cy)
    workers = args.cell_workers or min(cx * cy, 2)
    kernels = args.kernels or ["AES", "PR", "exchange"]
    samples = {}
    for name in kernels:
        s = measure_cells(config, name, size=args.size or "tiny",
                          workers=workers, repeats=args.repeats,
                          window=args.sync_window)
        samples[name] = s
        det = "deterministic" if s["deterministic"] else "NON-DETERMINISTIC"
        print(f"{name:10s} serial={s['serial_wall_seconds']:.3f}s "
              f"parallel={s['parallel_wall_seconds']:.3f}s "
              f"scaling={s['scaling']:.2f}x ({det})")
        if s.get("contention_gap") is not None:
            print(f"           accuracy vs monolithic: contention-priced "
                  f"gap {s['contention_gap']:g} cycles "
                  f"(zero-load: {s['zero_load_gap']:g})")
        if s["host_cpus"] < workers:
            print(f"           note: host has {s['host_cpus']} CPU(s) for "
                  f"{workers} workers -- they time-share, so scaling "
                  "saturates at ~1x here; rerun on a multicore host for "
                  "the real curve")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(samples, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0 if all(s["deterministic"] for s in samples.values()) else 1


def _bench_speed(args: argparse.Namespace) -> int:
    """Measure host events/sec per suite kernel (the engine benchmark)."""
    import json

    from .arch.config import HB_16x8
    from .profile.speed import measure_suite

    if args.cells:
        return _bench_cells(args)
    kernels = args.kernels or ["PR", "BFS", "SpGEMM", "AES", "SGEMM",
                               "Jacobi", "BS", "SW", "FFT", "BH"]
    samples = measure_suite(HB_16x8, size=args.size or "small",
                            kernels=kernels, repeats=args.repeats)
    for name, s in samples.items():
        print(f"{name:8s} wall={s['wall_seconds']:.3f}s "
              f"events/sec={s['events_per_sec']:>12,.0f} "
              f"cycles={s['cycles']:g}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(samples, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    if args.compare:
        _bench_compare(args.compare, samples)
    return 0


def _bench_compare(old_path: str, samples: dict) -> None:
    """Per-kernel speedup table against an earlier bench-speed JSON.

    Accepts either the flat ``--out`` samples dict or the
    ``benchmarks/bench_engine.py`` payload (``{"kernels": {...}}``).
    """
    import json
    import math

    with open(old_path) as fh:
        old = json.load(fh)
    old_samples = old.get("kernels", old)
    common = [k for k in samples if k in old_samples]
    if not common:
        print(f"compare: no common kernels with {old_path}")
        return
    print(f"\nspeedup vs {old_path} (sim cycles/sec, new/old):")
    ratios = []
    for name in common:
        old_scs = old_samples[name]["sim_cycles_per_sec"]
        new_scs = samples[name]["sim_cycles_per_sec"]
        ratio = new_scs / old_scs if old_scs else float("inf")
        ratios.append(ratio)
        print(f"  {name:8s} {old_scs:>12,.0f} -> {new_scs:>12,.0f} "
              f"  {ratio:5.2f}x")
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print(f"  {'geomean':8s} {'':>30s} {geomean:5.2f}x")


def _kernels_cmd() -> int:
    """``repro kernels``: the Table-I registry plus the PIM offloads."""
    from .experiments.common import SIZES
    from .kernels.registry import SUITE
    from .pim.kernels import OFFLOADS

    print(f"{'name':8s} {'side':5s} {'dwarf':22s} {'category':18s} sizes")
    for name, bench in SUITE.items():
        print(f"{name:8s} {'tile':5s} {bench.dwarf:22s} "
              f"{bench.category:18s} " + ", ".join(SIZES))
    for name in OFFLOADS:
        print(f"{name:8s} {'pim':5s} {'Dense Linear Algebra':22s} "
              f"{'pim-offload':18s} " + ", ".join(SIZES)
              + "  (repro pim " + name.lower() + ")")
    print("fixture  tile  diagnostic             fixture            "
          "(seeded races; repro sanitize fixture)")
    return 0


def _pim_cmd(args: argparse.Namespace) -> int:
    """``repro pim <kernel|all>``: offload comparison, tile vs memory side.

    Exit 1 when any comparison's functional results mismatch (the PIM
    datapath diverged from the tile-side reference), 2 on bad usage.
    """
    import json

    from .experiments import pim_offload
    from .pim.kernels import OFFLOADS

    if not args.target:
        print("pim: missing kernel (repro pim <kernel|all>); one of: "
              + ", ".join(OFFLOADS) + ", all", file=sys.stderr)
        return 2
    size = args.size or "small"
    target = args.target.lower()
    if target == "all":
        names = list(OFFLOADS)
    else:
        by_lower = {k.lower(): k for k in OFFLOADS}
        name = by_lower.get(target)
        if name is None:
            print(f"unknown offload kernel {args.target!r}; one of: "
                  + ", ".join(OFFLOADS) + ", all", file=sys.stderr)
            return 2
        names = [name]
    reports = [
        pim_offload.run_offload(name, size=size,
                                audit=args.audit_cells,
                                sanitize=args.sanitize_cells)
        for name in names
    ]
    payload = reports[0] if len(reports) == 1 else {
        "size": size,
        "match": all(r["match"] for r in reports),
        "kernels": {r["kernel"]: r for r in reports},
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for rep in reports:
            verdict = "match" if rep["match"] else "MISMATCH"
            print(f"{rep['kernel']} ({size}) on {rep['config']}: "
                  f"tile {rep['tile']['cycles']:g} cyc / "
                  f"{rep['tile']['energy_pj']:g} pJ vs pim "
                  f"{rep['pim']['cycles']:g} cyc / "
                  f"{rep['pim']['energy_pj']:g} pJ "
                  f"(speedup {rep['speedup']:.2f}x) -- {verdict}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if all(r["match"] for r in reports) else 1


def _sanitize_cmd(args: argparse.Namespace) -> int:
    """``repro sanitize <kernel|fixture>``: one checked run, report out."""
    import json

    from .arch.config import HB_16x8, small_config
    from .experiments.common import suite_args
    from .kernels.registry import SUITE
    from .sanitize import FIXTURE, fixture_args, format_report, sanitize_report
    from .session import Session

    if not args.target:
        print("sanitize: missing kernel (repro sanitize <kernel>); one of: "
              + ", ".join(SUITE) + ", fixture", file=sys.stderr)
        return 2
    size = args.size or "small"
    if args.target.lower() == "fixture":
        # The seeded-bug diagnostic: a small machine is plenty.
        config, kernel = small_config(4, 4), FIXTURE
        kernel_args, name = fixture_args(), "fixture"
    else:
        by_lower = {k.lower(): k for k in SUITE}
        name = by_lower.get(args.target.lower())
        if name is None:
            print(f"unknown suite kernel {args.target!r}; one of: "
                  + ", ".join(SUITE) + ", fixture", file=sys.stderr)
            return 2
        config, kernel = HB_16x8, SUITE[name].kernel
        kernel_args = suite_args(name, size)
    session = Session(config, sanitize=True)
    session.launch(kernel, kernel_args)
    result = session.run()[0]
    report = sanitize_report(session.sanitizer)
    report["kernel"], report["size"] = name, size
    report["config"], report["cycles"] = config.name, result.cycles
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"{name} ({size}) on {config.name}: {result.cycles:g} cycles")
        print(format_report(report))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if report["clean"] else 1


def _audit_cmd(args: argparse.Namespace) -> int:
    """``repro audit <kernel|all>``: audited run(s), report out, exit 1
    on any invariant or differential violation."""
    import json

    from .arch.config import HB_16x8
    from .audit import audit_report, format_report
    from .experiments.common import suite_args
    from .kernels.registry import SUITE
    from .session import Session

    if not args.target:
        print("audit: missing kernel (repro audit <kernel|all>); one of: "
              + ", ".join(SUITE) + ", all", file=sys.stderr)
        return 2
    size = args.size or "small"
    target = args.target.lower()
    if target == "all":
        names = list(SUITE)
    else:
        by_lower = {k.lower(): k for k in SUITE}
        name = by_lower.get(target)
        if name is None:
            print(f"unknown suite kernel {args.target!r}; one of: "
                  + ", ".join(SUITE) + ", all", file=sys.stderr)
            return 2
        names = [name]

    runs = []
    for name in names:
        session = Session(HB_16x8, audit=True)
        session.launch(SUITE[name].kernel, suite_args(name, size))
        result = session.run()[0]
        report = audit_report(session.auditor)
        report["kernel"], report["size"] = name, size
        report["config"], report["cycles"] = HB_16x8.name, result.cycles
        runs.append(report)
        if not args.json:
            print(f"{name} ({size}) on {HB_16x8.name}: "
                  f"{result.cycles:g} cycles")
            print(format_report(report))
    clean = all(r["clean"] for r in runs)
    # Single-kernel reports stay flat (the sanitize schema); 'all' wraps
    # the per-kernel reports so one artifact carries the whole suite.
    payload = runs[0] if len(runs) == 1 else {
        "clean": clean, "size": size, "config": HB_16x8.name, "runs": runs}
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if clean else 1


def _cells_cmd(args: argparse.Namespace) -> int:
    """``repro cells <kernel|exchange|pipeline>``: one PDES run.

    Simulates every Cell of a ``--cells CXxCY`` grid as a parallel
    shard.  Suite kernels run one independent instance per Cell; the
    ``exchange``/``pipeline`` fixtures push real traffic across the
    Cell seams.  ``--check-determinism`` reruns with 1 worker and
    requires a bit-identical fingerprint; exit is non-zero on a
    fingerprint mismatch or an unclean audit/sanitize pass.
    """
    import json
    import os

    from .arch.config import HB_16x8
    from .experiments.common import suite_args
    from .kernels.registry import SUITE
    from .pdes import LaunchSpec, run_cells
    from .pdes import fixture as xfix

    cx, cy = _parse_cells(args.cells)
    config = HB_16x8.with_geometry(cells_x=cx, cells_y=cy)
    size = args.size or "tiny"
    target = (args.target or "exchange").lower()
    if target == "exchange":
        name, launches = "exchange", xfix.exchange_launches(config)
    elif target == "pipeline":
        name, launches = "pipeline", xfix.pipeline_launches(config)
    else:
        by_lower = {k.lower(): k for k in SUITE}
        name = by_lower.get(target)
        if name is None:
            print(f"unknown kernel {args.target!r}; one of: "
                  + ", ".join(SUITE) + ", exchange, pipeline",
                  file=sys.stderr)
            return 2
        launches = [LaunchSpec(cell=xy, kernel=name,
                               args=suite_args(name, size),
                               remote=False)
                    for xy in config.chip.cells()]
    workers = args.cell_workers or min(cx * cy, os.cpu_count() or 1)
    res = run_cells(config, launches, workers=workers,
                    window=args.sync_window, audit=args.audit_cells,
                    sanitize=args.sanitize_cells,
                    contention=args.contention)
    deterministic = None
    if args.check_determinism:
        ref = run_cells(config, launches, workers=1,
                        window=args.sync_window, audit=args.audit_cells,
                        sanitize=args.sanitize_cells,
                        contention=args.contention)
        deterministic = ref.fingerprint() == res.fingerprint()
    report = res.to_dict()
    report["kernel"], report["size"] = name, size
    if deterministic is not None:
        report["deterministic"] = deterministic
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"{name} ({size}) on {config.name} {cx}x{cy} cells, "
              f"{res.workers} worker(s):")
        for shard in res.shards:
            cyc = ", ".join(f"{c:g}" for c in shard["cycles"]) or "-"
            print(f"  cell {tuple(shard['cell'])}: {cyc} cycles, "
                  f"{shard['events']:,} events, "
                  f"{shard['sent']} msgs out / {shard['received']} in")
        print(f"  sync: window={res.window:g} (lookahead {res.lookahead:g}), "
              f"{res.rounds} rounds, {res.messages} cross-Cell messages, "
              f"{res.wall_seconds:.3f}s wall")
        if res.contention is not None:
            c = res.contention
            print(f"  contention: {c['stalled_packets']}/{c['packets']} "
                  f"packets stalled at Cell edges, "
                  f"{c['stall_cycles']:g} stall cycles")
        if deterministic is not None:
            print("  determinism: " + ("1-worker run is bit-identical"
                                       if deterministic else
                                       "MISMATCH vs 1-worker run"))
        if args.audit_cells or args.sanitize_cells:
            print("  checks: " + ("clean" if res.clean else "VIOLATIONS"))
        if res.xshard is not None and res.xshard["findings"]:
            for f in res.xshard["findings"][:4]:
                print(f"    xcell-race @ {f['addr']} "
                      f"({f['detail']}, x{f['count']})")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        if not args.json:
            print(f"wrote {args.out}")
    failed = (deterministic is False) or not res.clean
    return 1 if failed else 0


def _trace_cmd(args: argparse.Namespace) -> int:
    """``repro trace <kernel>``: one traced run, Chrome-trace JSON out."""
    from .arch.config import HB_16x8
    from .experiments.common import suite_args
    from .kernels.registry import SUITE
    from .session import Session
    from .trace import TraceConfig, format_report, trace_report, write_chrome

    if not args.target:
        print("trace: missing kernel (repro trace <kernel>); one of: "
              + ", ".join(SUITE), file=sys.stderr)
        return 2
    by_lower = {k.lower(): k for k in SUITE}
    name = by_lower.get(args.target.lower())
    if name is None:
        print(f"unknown suite kernel {args.target!r}; one of: "
              + ", ".join(SUITE), file=sys.stderr)
        return 2
    size = args.size or "tiny"
    config = TraceConfig(window=args.window)
    session = Session(HB_16x8, trace=config)
    session.launch(SUITE[name].kernel, suite_args(name, size))
    result = session.run()[0]
    out = args.out or f"trace_{name}.json"
    write_chrome(result.trace, out)
    print(f"{name} ({size}) on {HB_16x8.name}: {result.cycles:g} cycles")
    print(format_report(trace_report(result.trace)))
    print(f"wrote {out}")
    return 0


def _print_progress(outcome, done: int, total: int,
                    eta: Optional[float]) -> None:
    tail = f" eta {eta:,.0f}s" if eta is not None else ""
    wall = f" {outcome.wall_s:.2f}s" if outcome.wall_s else ""
    worker = f" w{outcome.worker}" if outcome.worker is not None else ""
    print(f"[{done}/{total}] {outcome.job.experiment}/{outcome.job.key}: "
          f"{outcome.status}{wall}{worker}{tail}", flush=True)


def _sweep_targets(args: argparse.Namespace):
    """Resolve a sweep/submit target into ``(target, names, sweeps)``
    (``None`` on an unknown target, after printing the complaint)."""
    import dataclasses

    from .experiments import HARNESSES
    from .orch import Sweep

    target = (args.target or "all").lower()
    if target == "all":
        names = list(HARNESSES)
    elif target in HARNESSES:
        names = [target]
    else:
        print(f"unknown sweep target {target!r}; one of: "
              + ", ".join(HARNESSES) + ", all", file=sys.stderr)
        return None

    sweeps = []
    for name in names:
        mod = HARNESSES[name]
        jobs = mod.jobs(size=args.size) if args.size else mod.jobs()
        if args.retries is not None:
            jobs = [dataclasses.replace(job, retries=args.retries)
                    for job in jobs]
        sweeps.append(Sweep(name, jobs, mod.reduce))
    return target, names, sweeps


def _server_outcomes(server: str, plan, *, use_cache: bool,
                     priority: int, name: str) -> list:
    """Run a plan through a serve daemon; outcomes align with
    ``plan.unique_jobs`` and carry the server's payloads verbatim (the
    bit-identity tests pin this against the in-process pool)."""
    from .orch._pool import JobOutcome
    from .serve import Client

    with Client(server, name=name, priority=priority) as client:
        sub = client.submit([job.to_wire() for job in plan.unique_jobs],
                            use_cache=use_cache)
        prov = client.server
        print(f"server {server}: run {prov.get('run_id')}, submission "
              f"{sub['sub']}: {sub['queued']} queued, {sub['cached']} "
              f"cached, {sub['deduped']} deduped", flush=True)
        envelopes = client.results(sub["sub"], wait=True)
    outcomes = []
    for job, env in zip(plan.unique_jobs, envelopes):
        outcomes.append(JobOutcome(
            job, plan.key_of[id(job)], env["status"],
            payload=env["payload"], error=env["error"],
            wall_s=env.get("wall_s") or 0.0))
    return outcomes


def _sweep(args: argparse.Namespace, argv: List[str]) -> int:
    """``repro sweep <experiment|all>``: the orchestrated grid run."""
    import os
    import time

    from .experiments import HARNESSES
    from .orch import (
        ResultStore,
        RunJournal,
        build_plan,
        code_fingerprint,
        collect_payloads,
        reduce_all,
        run_jobs,
    )

    resolved = _sweep_targets(args)
    if resolved is None:
        return 2
    target, names, sweeps = resolved

    fingerprint = code_fingerprint()
    plan = build_plan(sweeps, fingerprint)
    workers = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    store = None if args.no_cache else ResultStore(args.cache_dir)
    deduped = plan.total_jobs - len(plan.unique_jobs)
    server = args.server or os.environ.get("REPRO_SERVER")
    print(f"sweep {target}: {len(plan.unique_jobs)} job(s)"
          + (f" ({deduped} shared)" if deduped else "")
          + (f" via server {server}" if server
             else f" on {workers} worker(s)")
          + f", fingerprint {fingerprint}",
          flush=True)

    t0 = time.perf_counter()
    if server:
        # Thin-client mode: the daemon owns pool, cache and journal.
        outcomes = _server_outcomes(
            server, plan, use_cache=not args.no_cache,
            priority=args.priority, name=f"sweep:{target}")
        wall = time.perf_counter() - t0
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
    else:
        with RunJournal(args.journal) as journal:
            journal.write_header(
                version=__version__, fingerprint=fingerprint,
                argv=["repro"] + argv, sweeps=names, size=args.size,
                jobs=len(plan.unique_jobs), workers=workers,
                cache=not args.no_cache)
            keys = [plan.key_of[id(job)] for job in plan.unique_jobs]
            outcomes = run_jobs(
                plan.unique_jobs, workers=workers, store=store,
                fingerprint=fingerprint, keys=keys, journal=journal,
                default_timeout=args.timeout, use_cache=not args.no_cache,
                progress=_print_progress)
            wall = time.perf_counter() - t0
            counts = {}
            for outcome in outcomes:
                counts[outcome.status] = counts.get(outcome.status, 0) + 1
            journal.write_footer(wall_s=round(wall, 3), **counts)

    broken = []

    def on_error(sweep, exc) -> None:
        broken.append(sweep.name)
        print(f"sweep {sweep.name}: reduce failed: {exc}", file=sys.stderr)

    results = reduce_all(plan, collect_payloads(outcomes), on_error)
    for name in names:
        if name in results:
            print(f"\n########## {name} ##########")
            HARNESSES[name].render(results[name])

    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"\nsweep {target}: {summary} in {wall:.2f}s", flush=True)
    if args.journal:
        if server:
            print("note: --journal is server-side in --server mode "
                  "(the daemon journals; use 'repro submit --events' "
                  "to record the stream locally)", file=sys.stderr)
        else:
            print(f"journal: {args.journal}")
    bad = sum(v for k, v in counts.items() if k not in ("ok", "cached"))
    return 1 if (bad or broken) else 0


def _serve_cmd(args: argparse.Namespace) -> int:
    """``repro serve``: run the scheduler daemon until interrupted."""
    import os

    from .serve import ServeConfig, run_daemon

    workers = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    config = ServeConfig(
        host=args.host, port=args.port, workers=workers,
        cache_dir=args.cache_dir, journal=args.journal,
        use_cache=not args.no_cache, default_timeout=args.timeout,
        quota=args.quota, stats_interval=args.stats_interval)
    return run_daemon(config)


def _submit_cmd(args: argparse.Namespace) -> int:
    """``repro submit <experiment|all>``: send a plan to a daemon and
    stream its progress events (no local reduce -- use ``repro sweep
    --server`` for the full figure)."""
    import json
    import os

    from .orch import build_plan, code_fingerprint
    from .serve import Client, validate_event

    server = args.server or os.environ.get("REPRO_SERVER")
    if not server:
        print("submit: no server (use --server HOST:PORT or set "
              "REPRO_SERVER)", file=sys.stderr)
        return 2
    resolved = _sweep_targets(args)
    if resolved is None:
        return 2
    target, _names, sweeps = resolved
    plan = build_plan(sweeps, code_fingerprint())

    events: List[dict] = []
    with Client(server, name=f"submit:{target}",
                priority=args.priority) as client:
        client.watch()  # before submit: no event of ours can be missed
        sub = client.submit([job.to_wire() for job in plan.unique_jobs],
                            use_cache=not args.no_cache)
        print(f"server {server}: run {client.server.get('run_id')}, "
              f"submission {sub['sub']}: {sub['queued']} queued, "
              f"{sub['cached']} cached, {sub['deduped']} deduped",
              flush=True)
        for event in client.stream(sub["sub"], timeout=args.timeout):
            events.append(event)
            problems = validate_event(event)
            if problems:
                print(f"submit: malformed event: {problems}",
                      file=sys.stderr)
            if event.get("event") == "job":
                print(f"  {event.get('experiment')}/{event.get('key')}: "
                      f"{event.get('outcome')} "
                      f"{event.get('wall_s', 0) or 0:.2f}s", flush=True)
        envelopes = client.results(sub["sub"], wait=True)
    if args.events:
        with open(args.events, "w") as fh:
            for event in events:
                json.dump(event, fh, sort_keys=True)
                fh.write("\n")
        print(f"events: {args.events} ({len(events)} records)")
    counts: Dict[str, int] = {}
    for env in envelopes:
        counts[env["status"]] = counts.get(env["status"], 0) + 1
    print("submit " + target + ": "
          + ", ".join(f"{k}={v}" for k, v in sorted(counts.items())),
          flush=True)
    bad = sum(v for k, v in counts.items() if k not in ("ok", "cached"))
    return 1 if bad else 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures/tables from the HammerBlade paper.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument(
        "experiment",
        help="one of: " + ", ".join(EXPERIMENTS)
             + ", sweep, serve, submit, journal, trace, sanitize, audit, "
               "cells, kernels, pim, bench-speed, list, all",
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        help="sweep/submit: experiment name or 'all'; journal: path to a "
             "JSONL run journal; trace/sanitize/audit: suite kernel name "
             "(sanitize also accepts 'fixture'; audit also accepts 'all'); "
             "pim: offload kernel name or 'all'",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the 25 hottest functions",
    )
    parser.add_argument("--size", default=None,
                        choices=("tiny", "small", "full"),
                        help="input size tier (default: per-experiment)")
    parser.add_argument("--kernels", nargs="+", default=None, metavar="NAME",
                        help="bench-speed: suite kernels to measure")
    parser.add_argument("--repeats", type=int, default=3,
                        help="bench-speed: wall-clock repeats (best wins)")
    parser.add_argument("--compare", default=None, metavar="OLD.json",
                        help="bench-speed: print a per-kernel speedup "
                             "table against an earlier JSON result")
    parser.add_argument("--out", default=None,
                        help="bench-speed: also write samples as JSON; "
                             "trace: output path (default: trace_<kernel>"
                             ".json); sanitize/audit: also write the JSON "
                             "report")
    parser.add_argument("--json", action="store_true",
                        help="sanitize/audit: print the report as JSON")
    parser.add_argument("--window", type=float, default=100.0, metavar="CYC",
                        help="trace: metrics sampling window in cycles "
                             "(default: 100)")
    parser.add_argument("--cells", default=None, metavar="CXxCY",
                        help="cells: Cell grid (default 2x1); bench-speed: "
                             "switch to the PDES scaling benchmark")
    parser.add_argument("--cell-workers", type=int, default=None, metavar="N",
                        help="cells/bench-speed --cells: shard worker "
                             "processes (default: min(cells, cpus))")
    parser.add_argument("--sync-window", type=float, default=None,
                        metavar="CYC",
                        help="cells: conservative window size (default: "
                             "the inter-Cell lookahead)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="cells: rerun with 1 worker and require a "
                             "bit-identical fingerprint")
    parser.add_argument("--audit", dest="audit_cells", action="store_true",
                        help="cells: attach the timing-model auditor to "
                             "every shard")
    parser.add_argument("--sanitize", dest="sanitize_cells",
                        action="store_true",
                        help="cells: attach the race checker to every shard "
                             "(includes the cross-shard stitching pass)")
    parser.add_argument("--contention", dest="contention",
                        action="store_true", default=True,
                        help="cells: price deterministic inter-Cell link "
                             "contention (default)")
    parser.add_argument("--no-contention", dest="contention",
                        action="store_false",
                        help="cells: price cross-Cell packets at the "
                             "zero-load floor (the old optimistic model)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="sweep: worker processes (default: CPU count; "
                             "0 runs in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="sweep: recompute everything, store nothing")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="sweep: write a JSONL run journal to PATH")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="sweep: per-job timeout in seconds")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="sweep: retry budget per job (overrides specs)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="sweep/serve: result store location (default: "
                             "$REPRO_CACHE_DIR, else .repro-cache)")
    parser.add_argument("--server", default=None, metavar="HOST:PORT",
                        help="sweep/submit: talk to a running 'repro "
                             "serve' daemon instead of a local pool "
                             "(default: $REPRO_SERVER)")
    parser.add_argument("--priority", type=int, default=0,
                        help="sweep/submit --server: client priority "
                             "(higher runs first; default 0)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve: bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=9178,
                        help="serve: listen port (default 9178; 0 = "
                             "ephemeral)")
    parser.add_argument("--quota", type=int, default=None, metavar="N",
                        help="serve: max in-flight jobs per client "
                             "(default: unlimited)")
    parser.add_argument("--stats-interval", type=float, default=5.0,
                        metavar="S",
                        help="serve: seconds between streamed stats "
                             "events (0 disables; default 5)")
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="submit: record the streamed events as "
                             "JSONL at PATH")
    args = parser.parse_args(argv)
    name = args.experiment.lower()
    if name == "list":
        for key in EXPERIMENTS:
            print(f"{key:8s} ({COST_HINT[key]})")
        print("sweep <experiment|all> (orchestrated: pool + result cache; "
              "--server HOST:PORT for thin-client mode)")
        print("serve (scheduler daemon: shared pool/cache/journal; "
              "--host/--port/--quota)")
        print("submit <experiment|all> (send a plan to a serve daemon "
              "and stream events)")
        print("journal <path> (summarize a sweep's or serve daemon's "
              "run journal)")
        print("trace <kernel> (traced run -> Chrome-trace JSON)")
        print("sanitize <kernel|fixture> (race/sync check; exit 1 on "
              "findings)")
        print("audit <kernel|all> (timing-model invariant check; exit 1 "
              "on violations)")
        print("cells <kernel|exchange|pipeline> (parallel multi-Cell "
              "PDES run; --cells CXxCY --cell-workers N)")
        print("kernels (list the Table-I benchmark registry and PIM "
              "offloads)")
        print("pim <kernel|all> (tile-side vs memory-side offload "
              "comparison; exit 1 on functional mismatch)")
        print("bench-speed (engine host-throughput benchmark; --cells "
              "CXxCY for the PDES scaling bench)")
        return 0
    if name == "kernels":
        return _kernels_cmd()
    if name == "pim":
        return _pim_cmd(args)
    if name == "sanitize":
        return _sanitize_cmd(args)
    if name == "audit":
        return _audit_cmd(args)
    if name == "bench-speed":
        if args.profile:
            from .profile.speed import profile_top
            print(profile_top(_bench_speed, args))
            return 0
        return _bench_speed(args)
    if name == "cells":
        if args.cells is None:
            args.cells = "2x1"
        return _cells_cmd(args)
    if name == "trace":
        return _trace_cmd(args)
    if name == "sweep":
        return _sweep(args, argv)
    if name == "serve":
        return _serve_cmd(args)
    if name == "submit":
        return _submit_cmd(args)
    if name == "all":
        # The full set runs through the orchestrator: shared jobs are
        # deduplicated across figures and cached results are reused.
        args.target = "all"
        return _sweep(args, argv)
    if name == "journal":
        if not args.target:
            print("journal: missing path (repro journal <path>)",
                  file=sys.stderr)
            return 2
        from .profile.journal import main as journal_main
        return journal_main(args.target)
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    if args.profile:
        from .profile.speed import profile_top
        print(profile_top(fn))
        return 0
    fn(size=args.size)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
