"""Command-line entry point: ``python -m repro <experiment>``.

Runs one of the paper-figure harnesses (or the whole set) and prints the
reproduced figure.  ``python -m repro list`` shows what is available.
``python -m repro bench-speed`` measures the engine's own host
throughput; ``--profile`` wraps any experiment in cProfile and prints
the hottest functions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import (
    ablations,
    chip_scale,
    fig03_bisection_transfer,
    fig04_barrier,
    fig10_incremental,
    fig11_utilization,
    fig12_tilegroups,
    fig13_energy,
    fig14_noc_bisection,
    fig15_doubling,
    fig16_vs_hierarchical,
    tables,
)

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig3": fig03_bisection_transfer.main,
    "fig4": fig04_barrier.main,
    "fig10": fig10_incremental.main,
    "fig11": fig11_utilization.main,
    "fig12": fig12_tilegroups.main,
    "fig13": fig13_energy.main,
    "fig14": fig14_noc_bisection.main,
    "fig15": fig15_doubling.main,
    "fig16": fig16_vs_hierarchical.main,
    "tables": tables.main,
    "ablations": ablations.main,
    "chip": chip_scale.main,
}

#: Rough single-run cost at default sizes, to set expectations.
COST_HINT = {
    "fig3": "~10 s", "fig4": "<1 s", "fig10": "minutes", "fig11": "~1 min",
    "fig12": "~1 min", "fig13": "<5 s", "fig14": "~2 min",
    "fig15": "minutes", "fig16": "~1 min", "tables": "<5 s",
    "ablations": "~3 min", "chip": "~30 s",
}


def _bench_speed(args: argparse.Namespace) -> int:
    """Measure host events/sec per suite kernel (the engine benchmark)."""
    import json

    from .arch.config import HB_16x8
    from .profile.speed import measure_suite

    kernels = args.kernels or ["PR", "BFS", "SpGEMM", "AES", "SGEMM", "Jacobi"]
    samples = measure_suite(HB_16x8, size=args.size, kernels=kernels,
                            repeats=args.repeats)
    for name, s in samples.items():
        print(f"{name:8s} wall={s['wall_seconds']:.3f}s "
              f"events/sec={s['events_per_sec']:>12,.0f} "
              f"cycles={s['cycles']:g}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(samples, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures/tables from the HammerBlade paper.",
    )
    parser.add_argument(
        "experiment",
        help="one of: " + ", ".join(EXPERIMENTS) + ", bench-speed, list, all",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the 25 hottest functions",
    )
    parser.add_argument("--size", default="small",
                        choices=("tiny", "small", "full"),
                        help="bench-speed: input size (default: small)")
    parser.add_argument("--kernels", nargs="+", default=None, metavar="NAME",
                        help="bench-speed: suite kernels to measure")
    parser.add_argument("--repeats", type=int, default=3,
                        help="bench-speed: wall-clock repeats (best wins)")
    parser.add_argument("--out", default=None,
                        help="bench-speed: also write samples as JSON")
    args = parser.parse_args(argv)
    name = args.experiment.lower()
    if name == "list":
        for key in EXPERIMENTS:
            print(f"{key:8s} ({COST_HINT[key]})")
        print("bench-speed (engine host-throughput benchmark)")
        return 0
    if name == "bench-speed":
        if args.profile:
            from .profile.speed import profile_top
            print(profile_top(_bench_speed, args))
            return 0
        return _bench_speed(args)
    if name == "all":
        for key, fn in EXPERIMENTS.items():
            print(f"\n########## {key} ##########")
            fn()
        return 0
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    if args.profile:
        from .profile.speed import profile_top
        print(profile_top(fn))
        return 0
    fn()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
