"""Tile core model: pipeline timing, scoreboard, icache, branch predictor."""

from . import stall
from .branch import BranchPredictor
from .icache import ICache
from .scoreboard import Scoreboard
from .tile import TileCore

__all__ = ["TileCore", "Scoreboard", "ICache", "BranchPredictor", "stall"]
