"""Static branch predictor: backward-taken, forward-not-taken.

The paper's cores predict 'taken' for backward branches and 'not taken'
for forward branches, with a 2-cycle miss penalty -- sufficient for
data-parallel inner loops, and the source of SW (Smith-Waterman)'s high
branch-miss stall share in Fig 11.
"""

from __future__ import annotations


class BranchPredictor:
    """BTFN predictor; ``predict_and_resolve`` returns the flush cycles."""

    def __init__(self, miss_penalty: int) -> None:
        self.miss_penalty = miss_penalty
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_resolve(self, backward: bool, taken: bool) -> int:
        self.predictions += 1
        predicted_taken = backward
        if predicted_taken != taken:
            self.mispredictions += 1
            return self.miss_penalty
        return 0

    def miss_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions
