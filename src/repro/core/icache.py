"""Direct-mapped instruction cache model.

4 KB, 4-instruction lines, 12-bit tags (paper Section III-B): tags and
data share one SRAM, and precomputed branch targets make the immediate
field a zero-area BTB.  For timing we model the fetch stream: the first
touch of a line (or a conflict re-touch) pays the refill penalty; loop
bodies that fit -- the common case the SPM/icache sizing targets -- run
without misses after warm-up.
"""

from __future__ import annotations

from ..arch.params import ICACHE_BYTES, ICACHE_LINE_INSTRS, INSTR_BYTES


class ICache:
    """One tile's icache; ``access(pc)`` returns the stall cycles."""

    def __init__(self, miss_penalty: int, capacity: int = ICACHE_BYTES,
                 line_instrs: int = ICACHE_LINE_INSTRS) -> None:
        self.miss_penalty = miss_penalty
        self.num_lines = capacity // (line_instrs * INSTR_BYTES)
        self.line_instrs = line_instrs
        self._tags = [-1] * self.num_lines
        self._last_line = -1
        self.hits = 0
        self.misses = 0

    def access(self, pc: int) -> int:
        """Fetch the instruction at ``pc``; returns 0 or the miss penalty."""
        line = pc // self.line_instrs
        if line == self._last_line:
            self.hits += 1
            return 0
        self._last_line = line
        idx = line % self.num_lines
        if self._tags[idx] == line:
            self.hits += 1
            return 0
        self._tags[idx] = line
        self.misses += 1
        return self.miss_penalty

    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
