"""The remote-request scoreboard.

HB cores track outstanding remote operations in a bit-vector scoreboard
costing under 1% of tile area; a tile may have up to 63 requests in
flight, each potentially a cache miss and DRAM access -- the paper's
cheap substitute for GPU-style multithreaded MLP.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from ..arch.params import SCOREBOARD_ENTRIES
from ..engine import Future, Simulator


class Scoreboard:
    """Counts outstanding remote requests and queues credit waiters."""

    def __init__(self, sim: Simulator, entries: int = SCOREBOARD_ENTRIES) -> None:
        if entries <= 0:
            raise ValueError("scoreboard needs at least one entry")
        self.sim = sim
        self.capacity = entries
        self.outstanding = 0
        self.peak = 0
        self.total_issued = 0
        self._credit_waiters: Deque[Future] = deque()
        self._drain_waiters: Deque[Future] = deque()

    @property
    def full(self) -> bool:
        return self.outstanding >= self.capacity

    @property
    def empty(self) -> bool:
        return self.outstanding == 0

    def acquire(self) -> None:
        """Claim an entry; caller must have checked :attr:`full`."""
        if self.full:
            raise RuntimeError("scoreboard full; wait for a credit first")
        self.outstanding += 1
        self.total_issued += 1
        self.peak = max(self.peak, self.outstanding)

    def release(self) -> None:
        """A response arrived; hands the credit to the oldest waiter."""
        if self.outstanding <= 0:
            raise RuntimeError("release without outstanding request")
        self.outstanding -= 1
        if self._credit_waiters:
            self._credit_waiters.popleft().resolve(None)
        if self.outstanding == 0:
            while self._drain_waiters:
                self._drain_waiters.popleft().resolve(None)

    def wait_credit(self) -> Future:
        """Future resolving when an entry frees (for full-scoreboard stalls).

        Resolves immediately if space already exists (a release may land
        between the fullness check and this call -- the core yields to
        synchronize with the simulator in between).  Otherwise the credit
        is *reserved* for the waiter: releases pair with waiters FIFO, so
        the woken core can immediately acquire.
        """
        fut = Future(self.sim)
        if not self.full:
            fut.resolve(None)
        else:
            self._credit_waiters.append(fut)
        return fut

    def wait_drain(self) -> Future:
        """Future resolving when nothing is outstanding (memory fence)."""
        fut = Future(self.sim)
        if self.outstanding == 0:
            fut.resolve(None)
        else:
            self._drain_waiters.append(fut)
        return fut
