"""Stall taxonomy (paper Table III).

Every cycle a tile core is not issuing an instruction is attributed to
exactly one of these categories; Fig 11's core-utilization breakdown is
built directly from them.
"""

from __future__ import annotations

from typing import Dict

# Executing categories (not stalls, but part of the same breakdown).
EXEC_INT = "int"  # integer ALU, memory-access and control instructions
EXEC_FP = "fp"  # floating-point instructions

# Stall categories.
STALL_DEPEND_LOAD = "stall_depend_load"  # waiting on a remote load response
STALL_BYPASS = "stall_bypass"  # RAW on an in-flight ALU/FPU result
STALL_FDIV = "stall_fdiv"  # iterative FP divide/sqrt unit busy
STALL_ICACHE = "stall_icache"  # instruction-cache miss refill
STALL_BRANCH = "stall_branch_miss"  # branch mispredict flush
STALL_BARRIER = "stall_barrier"  # waiting at a barrier
STALL_FENCE = "stall_fence"  # memory fence drain
STALL_CREDIT = "stall_credit"  # remote-request scoreboard full
STALL_AMO = "stall_amo"  # waiting on an atomic's response
STALL_IDLE = "stall_idle"  # no work (sleep, post-exit)

STALL_TYPES = (
    STALL_DEPEND_LOAD,
    STALL_BYPASS,
    STALL_FDIV,
    STALL_ICACHE,
    STALL_BRANCH,
    STALL_BARRIER,
    STALL_FENCE,
    STALL_CREDIT,
    STALL_AMO,
    STALL_IDLE,
)

ALL_CATEGORIES = (EXEC_INT, EXEC_FP) + STALL_TYPES

DESCRIPTIONS: Dict[str, str] = {
    EXEC_INT: "Executing an integer, memory or control instruction",
    EXEC_FP: "Executing a floating-point instruction",
    STALL_DEPEND_LOAD: "Dependency on an outstanding remote load",
    STALL_BYPASS: "Bypass/RAW stall on a multi-cycle ALU or FPU result",
    STALL_FDIV: "Iterative FP divide or square-root unit occupied",
    STALL_ICACHE: "Instruction cache miss",
    STALL_BRANCH: "Branch misprediction flush",
    STALL_BARRIER: "Waiting for the tile-group barrier",
    STALL_FENCE: "Memory fence waiting for outstanding requests",
    STALL_CREDIT: "Out of remote-request scoreboard entries",
    STALL_AMO: "Waiting for an atomic operation's old value",
    STALL_IDLE: "No work available",
}
