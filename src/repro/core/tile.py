"""The HB tile core timing model.

Single-issue, in-order, 5-stage: one instruction leaves the issue stage
per cycle unless a hazard holds it.  The model tracks

* a ready time (or pending future) per virtual register, reproducing
  RAW/bypass stalls and the load-use distance of pipelined remote loads;
* the 63-entry remote-request scoreboard (non-blocking loads/stores);
* the iterative FP divide/sqrt unit's structural hazard;
* the BTFN branch predictor and the direct-mapped icache;
* the full stall taxonomy of Table III for Fig 11's breakdown.

The core runs as one generator process; pure compute streams advance a
local clock without touching the event queue, and the process only
synchronizes with the simulator when it interacts with shared state
(network, barriers, waiting on futures).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Union

from ..arch.config import FeatureSet
from ..arch.geometry import Coord
from ..arch.params import Timings
from ..engine import Counter, Future, Process, Simulator
from ..isa.ops import (
    AmoOp,
    BarrierOp,
    BranchOp,
    FenceOp,
    FpOp,
    IntOp,
    LoadOp,
    SleepOp,
    StoreOp,
    VecLoadOp,
)
from ..pgas.spaces import TAG_SHIFT
from . import stall as st
from .branch import BranchPredictor
from .icache import ICache
from .scoreboard import Scoreboard

RegReady = Union[float, Future]


class TileCore:
    """One compute tile's execution engine."""

    def __init__(self, sim: Simulator, node: Coord, timings: Timings,
                 features: FeatureSet, memsys: Any,
                 name: str = "tile") -> None:
        self.sim = sim
        self.node = node
        self.timings = timings
        self.features = features
        self.memsys = memsys
        self.name = name
        self.scoreboard = Scoreboard(sim, timings.core.scoreboard_entries)
        self.icache = ICache(timings.core.icache_miss_penalty)
        self.branch = BranchPredictor(timings.core.branch_miss_penalty)
        self.counters = Counter()
        self.reg_ready: Dict[int, RegReady] = {}
        self.reg_kind: Dict[int, str] = {}
        self._fdiv_free: float = 0
        self.start_time: float = 0
        self.finish_time: float = 0
        self.process: Optional[Process] = None
        self._fp_latency = {
            "fadd": timings.core.fadd,
            "fmul": timings.core.fmul,
            "fma": timings.core.fma,
            "fdiv": timings.core.fdiv,
            "fsqrt": timings.core.fsqrt,
        }

    # -- launch ---------------------------------------------------------------

    def start(self, kernel_gen: Generator[Any, Any, Any],
              start_delay: float = 0) -> Process:
        self.process = Process(self.sim, self._run(kernel_gen),
                               name=self.name, start_delay=start_delay)
        return self.process

    @property
    def done(self) -> Future:
        if self.process is None:
            raise RuntimeError("tile was never started")
        return self.process.done

    # -- stat helpers --------------------------------------------------------

    def total_cycles(self) -> float:
        return self.finish_time - self.start_time

    def breakdown(self) -> Dict[str, float]:
        """Cycles per Table III category, plus 'other' residual."""
        total = self.total_cycles()
        out = {cat: self.counters.get(cat) for cat in st.ALL_CATEGORIES}
        accounted = sum(out.values())
        out["other"] = max(0.0, total - accounted)
        return out

    # -- the pipeline ----------------------------------------------------------

    def _run(self, gen: Generator[Any, Any, Any]) -> Generator[Any, Any, float]:
        sim = self.sim
        c = self.counters
        core_t = self.timings.core
        reg_ready = self.reg_ready
        reg_kind = self.reg_kind
        sb = self.scoreboard
        nonblocking = self.features.nonblocking_loads
        compression = self.features.load_compression

        t = sim.now
        self.start_time = t
        send_val: Any = None

        while True:
            try:
                op = gen.send(send_val)
            except StopIteration:
                break
            send_val = None

            # Instruction fetch.
            miss = self.icache.access(op.pc)
            if miss:
                t += miss
                c.add(st.STALL_ICACHE, miss)

            cls = op.__class__

            if cls is IntOp or cls is FpOp or cls is BranchOp:
                # Source dependencies (compute fast-path: usually floats).
                for s in op.srcs:
                    r = reg_ready.get(s)
                    if r is None:
                        continue
                    if isinstance(r, Future):
                        if not r.done:
                            if t > sim.now:
                                yield t - sim.now
                            yield r
                        ready = r.value
                        reg_ready[s] = ready
                    else:
                        ready = r
                    if ready > t:
                        gap = ready - t
                        kind = reg_kind.get(s, "int")
                        if kind == "mem":
                            c.add(st.STALL_DEPEND_LOAD, gap)
                        elif kind == "fdiv":
                            c.add(st.STALL_FDIV, gap)
                        else:
                            c.add(st.STALL_BYPASS, gap)
                        t = ready

                if cls is IntOp:
                    issue = t
                    t += 1
                    c.add(st.EXEC_INT)
                    if op.dst is not None:
                        reg_ready[op.dst] = issue + op.latency
                        reg_kind[op.dst] = "int" if op.latency == 1 else "fp"
                elif cls is FpOp:
                    lat = self._fp_latency[op.unit]
                    if op.unit in ("fdiv", "fsqrt"):
                        if self._fdiv_free > t:
                            c.add(st.STALL_FDIV, self._fdiv_free - t)
                            t = self._fdiv_free
                        issue = t
                        self._fdiv_free = issue + lat
                        kind = "fdiv"
                    else:
                        issue = t
                        kind = "fp"
                    t += 1
                    c.add(st.EXEC_FP)
                    if op.dst is not None:
                        reg_ready[op.dst] = issue + lat
                        reg_kind[op.dst] = kind
                else:  # BranchOp
                    t += 1
                    c.add(st.EXEC_INT)
                    flush = self.branch.predict_and_resolve(op.backward, op.taken)
                    if flush:
                        t += flush
                        c.add(st.STALL_BRANCH, flush)
                continue

            # Memory and synchronization ops.
            srcs = getattr(op, "srcs", ())
            if srcs:
                t = yield from self._wait_srcs(srcs, t)

            if cls is LoadOp:
                if (op.addr >> TAG_SHIFT) == 0 or self.memsys.is_own_spm(op.addr, self.node):
                    start = self.memsys.spm_reserve(self.node, t)
                    t += 1
                    c.add(st.EXEC_INT)
                    reg_ready[op.dst] = start + core_t.local_load
                    reg_kind[op.dst] = "mem"
                else:
                    t = yield from self._issue_remote(
                        op.addr, False, t, words=1, dsts=(op.dst,),
                    )
            elif cls is VecLoadOp:
                if compression:
                    t = yield from self._issue_remote(
                        op.addr, False, t, words=len(op.dsts), dsts=op.dsts,
                    )
                else:
                    # Expanded into independent word loads, one per cycle.
                    for i, dst in enumerate(op.dsts):
                        t = yield from self._issue_remote(
                            op.addr + 4 * i, False, t, words=1, dsts=(dst,),
                        )
            elif cls is StoreOp:
                if (op.addr >> TAG_SHIFT) == 0 or self.memsys.is_own_spm(op.addr, self.node):
                    self.memsys.spm_reserve(self.node, t)
                    t += 1
                    c.add(st.EXEC_INT)
                else:
                    t = yield from self._issue_remote(
                        op.addr, True, t, words=1, dsts=(),
                    )
            elif cls is AmoOp:
                t, old = yield from self._issue_amo(op, t)
                send_val = old
                if op.dst is not None:
                    reg_ready[op.dst] = t
                    reg_kind[op.dst] = "mem"
            elif cls is FenceOp:
                t += 1
                c.add(st.EXEC_INT)
                if not sb.empty:
                    if t > sim.now:
                        yield t - sim.now
                    fut = sb.wait_drain()
                    yield fut
                    drained = max(t, sim.now)
                    c.add(st.STALL_FENCE, drained - t)
                    t = drained
            elif cls is BarrierOp:
                t += 1
                c.add(st.EXEC_INT)
                if t > sim.now:
                    yield t - sim.now
                fut = op.group.arrive(self.node, t)
                yield fut
                released = max(t, sim.now)
                c.add(st.STALL_BARRIER, released - t)
                t = released
            elif cls is SleepOp:
                t += op.cycles
                c.add(st.STALL_IDLE, op.cycles)
            else:
                raise TypeError(f"core cannot execute {op!r}")

        # Implicit drain: a tile is not finished while requests are in flight.
        if not sb.empty:
            if t > sim.now:
                yield t - sim.now
            fut = sb.wait_drain()
            yield fut
            drained = max(t, sim.now)
            c.add(st.STALL_FENCE, drained - t)
            t = drained
        self.finish_time = t
        return t

    # -- memory-op helpers -------------------------------------------------------

    def _wait_srcs(self, srcs, t: float):
        """Wait for source registers; returns the advanced clock."""
        sim = self.sim
        c = self.counters
        reg_ready = self.reg_ready
        for s in srcs:
            r = reg_ready.get(s)
            if r is None:
                continue
            if isinstance(r, Future):
                if not r.done:
                    if t > sim.now:
                        yield t - sim.now
                    yield r
                ready = r.value
                reg_ready[s] = ready
            else:
                ready = r
            if ready > t:
                kind = self.reg_kind.get(s, "int")
                gap = ready - t
                if kind == "mem":
                    c.add(st.STALL_DEPEND_LOAD, gap)
                elif kind == "fdiv":
                    c.add(st.STALL_FDIV, gap)
                else:
                    c.add(st.STALL_BYPASS, gap)
                t = ready
        return t

    def _acquire_credit(self, t: float):
        """Claim a scoreboard entry, stalling if the bit-vector is full."""
        sim = self.sim
        sb = self.scoreboard
        if sb.full:
            if t > sim.now:
                yield t - sim.now
            fut = sb.wait_credit()
            yield fut
            granted = max(t, sim.now)
            self.counters.add(st.STALL_CREDIT, granted - t)
            t = granted
        sb.acquire()
        return t

    def _issue_remote(self, addr: int, is_write: bool, t: float,
                      words: int, dsts):
        """Inject a remote load/store; non-blocking unless the feature is off."""
        sim = self.sim
        c = self.counters
        sb = self.scoreboard
        t = yield from self._acquire_credit(t)
        if t > sim.now:
            yield t - sim.now
        fut = self.memsys.remote_request(
            self.node, addr, is_write=is_write, time=t, words=words,
        )
        fut.add_callback(lambda _v: sb.release())
        issue = t
        t += 1
        c.add(st.EXEC_INT)
        for dst in dsts:
            self.reg_ready[dst] = fut
            self.reg_kind[dst] = "mem"
        if not self.features.nonblocking_loads and not is_write:
            yield fut
            arrival = fut.value
            c.add(st.STALL_DEPEND_LOAD, max(0.0, arrival - t))
            t = max(t, arrival)
            for dst in dsts:
                self.reg_ready[dst] = arrival
        del issue
        return t

    def _issue_amo(self, op: AmoOp, t: float):
        """Atomics block the kernel generator: it needs the old value."""
        sim = self.sim
        c = self.counters
        sb = self.scoreboard
        t = yield from self._acquire_credit(t)
        if t > sim.now:
            yield t - sim.now
        fut = self.memsys.remote_amo(self.node, op.addr, op.kind, op.value, t)
        fut.add_callback(lambda _v: sb.release())
        t += 1
        c.add(st.EXEC_INT)
        yield fut
        arrival, old = fut.value
        c.add(st.STALL_AMO, max(0.0, arrival - t))
        t = max(t, arrival)
        return t, old
