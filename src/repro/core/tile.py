"""The HB tile core timing model.

Single-issue, in-order, 5-stage: one instruction leaves the issue stage
per cycle unless a hazard holds it.  The model tracks

* a ready time (or pending future) per virtual register, reproducing
  RAW/bypass stalls and the load-use distance of pipelined remote loads;
* the 63-entry remote-request scoreboard (non-blocking loads/stores);
* the iterative FP divide/sqrt unit's structural hazard;
* the BTFN branch predictor and the direct-mapped icache;
* the full stall taxonomy of Table III for Fig 11's breakdown.

The core runs as one generator process; pure compute streams advance a
local clock without touching the event queue, and the process only
synchronizes with the simulator when it interacts with shared state
(network, barriers, waiting on futures).

The issue loop is the hottest Python in the whole model (one iteration
per simulated instruction), so it aggressively localizes attribute
lookups and updates counters through ``Counter.raw`` -- C-level dict
increments instead of method calls.  None of this changes timing.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Union

from ..arch.config import FeatureSet
from ..arch.geometry import Coord
from ..arch.params import Timings
from ..engine import Counter, Future, Process, Simulator
from ..engine.batch import FoldTracker, expand_blocks
from ..isa.ops import (
    AmoOp,
    BarrierOp,
    BlockOp,
    BranchOp,
    FenceOp,
    FpOp,
    IntOp,
    LoadOp,
    PimFenceOp,
    PimIssueOp,
    PimReadOp,
    SleepOp,
    StoreOp,
    VecLoadOp,
)
from ..pgas.spaces import TAG_SHIFT
from . import stall as st
from .branch import BranchPredictor
from .icache import ICache
from .scoreboard import Scoreboard

RegReady = Union[float, Future]

#: Test hook: when True, every core expands recorded compute windows and
#: interprets them op-by-op (the exact path), exactly as if a
#: trace/sanitize/audit hook were attached.  Cycle counts are identical
#: either way -- that equivalence is what the batched-path tests pin.
EXACT_MODE = False

#: reg_kind value -> stall category charged while waiting on that producer.
_KIND_STALL = {
    "mem": st.STALL_DEPEND_LOAD,
    "fdiv": st.STALL_FDIV,
    "int": st.STALL_BYPASS,
    "fp": st.STALL_BYPASS,
}


class TileCore:
    """One compute tile's execution engine."""

    def __init__(self, sim: Simulator, node: Coord, timings: Timings,
                 features: FeatureSet, memsys: Any,
                 name: str = "tile") -> None:
        self.sim = sim
        self.node = node
        self.timings = timings
        self.features = features
        self.memsys = memsys
        self.name = name
        self.scoreboard = Scoreboard(sim, timings.core.scoreboard_entries)
        self.icache = ICache(timings.core.icache_miss_penalty)
        self.branch = BranchPredictor(timings.core.branch_miss_penalty)
        self.counters = Counter()
        self.reg_ready: Dict[int, RegReady] = {}
        self.reg_kind: Dict[int, str] = {}
        self._fdiv_free: float = 0
        #: Futures of issued-but-unfenced PIM commands (see PimFenceOp).
        self._pim_pending: list = []
        self.start_time: float = 0
        self.finish_time: float = 0
        self.process: Optional[Process] = None
        #: Last reason this core blocked on the event queue (a Table III
        #: stall category) -- surfaced by deadlock diagnostics.
        self.last_stall: Optional[str] = None
        #: Timeline tracer hook (set by :func:`repro.trace.attach`);
        #: ``None`` keeps every hot path on the untraced branch.
        self._trace: Optional[Any] = None
        self._trace_track: int = 0
        #: Race-checker hook (set by :func:`repro.sanitize.attach`);
        #: ``None`` keeps every memory op on the unchecked branch.
        self._san: Optional[Any] = None
        self._fp_latency = {
            "fadd": timings.core.fadd,
            "fmul": timings.core.fmul,
            "fma": timings.core.fma,
            "fdiv": timings.core.fdiv,
            "fsqrt": timings.core.fsqrt,
        }
        # One closure for the whole core: releases a scoreboard credit
        # when a remote response lands (avoids a lambda per request).
        sb = self.scoreboard
        self._sb_release = lambda _v, _release=sb.release: _release()

    # -- launch ---------------------------------------------------------------

    def start(self, kernel_gen: Generator[Any, Any, Any],
              start_delay: float = 0) -> Process:
        self.process = Process(self.sim, self._run(kernel_gen),
                               name=self.name, start_delay=start_delay)
        return self.process

    @property
    def done(self) -> Future:
        if self.process is None:
            raise RuntimeError("tile was never started")
        return self.process.done

    # -- stat helpers --------------------------------------------------------

    def total_cycles(self) -> float:
        return self.finish_time - self.start_time

    def breakdown(self) -> Dict[str, float]:
        """Cycles per Table III category, plus 'other' residual."""
        total = self.total_cycles()
        out = {cat: self.counters.get(cat) for cat in st.ALL_CATEGORIES}
        accounted = sum(out.values())
        out["other"] = max(0.0, total - accounted)
        return out

    # -- the pipeline ----------------------------------------------------------

    def _run(self, gen: Generator[Any, Any, Any]) -> Generator[Any, Any, float]:
        sim = self.sim
        c = self.counters
        cv = c.raw
        core_t = self.timings.core
        reg_ready = self.reg_ready
        reg_kind = self.reg_kind
        reg_ready_get = reg_ready.get
        reg_kind_get = reg_kind.get
        sb = self.scoreboard
        compression = self.features.load_compression
        nonblocking = self.features.nonblocking_loads
        memsys = self.memsys
        is_own_spm = memsys.is_own_spm
        remote_request = memsys.remote_request
        remote_amo = memsys.remote_amo
        sb_release = self._sb_release
        # The tile's own SPM port, reserved inline (single-cycle claims
        # from the local pipeline are the hottest memory path there is).
        spm_port = memsys.spms[self.node]._port
        icache = self.icache
        icache_access = icache.access
        line_instrs = icache.line_instrs
        branch_resolve = self.branch.predict_and_resolve
        fp_latency = self._fp_latency
        local_load = core_t.local_load

        # Hot names pulled into locals: stall categories and op classes.
        EXEC_INT = st.EXEC_INT
        EXEC_FP = st.EXEC_FP
        S_DEPEND = st.STALL_DEPEND_LOAD
        S_FDIV = st.STALL_FDIV
        S_BYPASS = st.STALL_BYPASS
        S_ICACHE = st.STALL_ICACHE
        S_BRANCH = st.STALL_BRANCH
        S_AMO = st.STALL_AMO
        _IntOp, _FpOp, _BranchOp = IntOp, FpOp, BranchOp
        _LoadOp, _VecLoadOp, _StoreOp = LoadOp, VecLoadOp, StoreOp
        _AmoOp, _FenceOp, _BarrierOp, _SleepOp = AmoOp, FenceOp, BarrierOp, SleepOp
        _PimIssueOp, _PimReadOp, _PimFenceOp = PimIssueOp, PimReadOp, PimFenceOp
        _BlockOp = BlockOp
        # In-flight PIM commands; drained only by an explicit PimFenceOp
        # (ordinary fences and the end-of-kernel drain do not cover the
        # PIM window -- the sanitizer's completion rule).
        pim_pending = self._pim_pending = []
        _Future = Future
        # Tracing hook: ``temit`` is None in untraced runs, so each stall
        # charge point pays one pointer comparison and nothing else.
        trace = self._trace
        ttrack = self._trace_track
        temit = trace.complete if trace is not None else None
        # Sanitizer hook: same zero-cost-when-off discipline -- every
        # memory/sync op pays one pointer comparison when it is None.
        san = self._san
        node = self.node

        # Batched windows are only eligible when every observability hook
        # is off: with any of trace/sanitize/audit attached (or the test
        # hook forcing it), recorded BlockOp windows expand back into the
        # per-op stream so the hooks observe the classic interpreter.
        if (trace is not None or san is not None or sim.audit is not None
                or EXACT_MODE):
            gen = expand_blocks(gen)
        gen_send = gen.send

        t = sim._now
        self.start_time = t
        send_val: Any = None

        while True:
            try:
                op = gen_send(send_val)
            except StopIteration:
                break
            send_val = None

            cls = op.__class__

            if cls is _BlockOp:
                # A recorded compute window: replay it without touching
                # the generator (and fold its steady state) -- the fast
                # path's whole point.  Fetch happens inside, per entry.
                t = yield from self._run_block(op, t)
                continue

            # Instruction fetch.  The same-line case (sequential fetch
            # within one icache line, the common case by construction)
            # is inlined; everything else takes the full lookup.
            pc = op.pc
            if pc // line_instrs == icache._last_line:
                icache.hits += 1
            else:
                miss = icache_access(pc)
                if miss:
                    t += miss
                    cv[S_ICACHE] += miss
                    if temit is not None:
                        temit(ttrack, S_ICACHE, t - miss, miss)

            if cls is _IntOp or cls is _FpOp or cls is _BranchOp:
                # Source dependencies (compute fast-path: usually floats).
                for s in op.srcs:
                    r = reg_ready_get(s)
                    if r is None:
                        continue
                    if r.__class__ is _Future:
                        if not r._done:
                            kind = reg_kind_get(s, "int")
                            self.last_stall = _KIND_STALL[kind]
                            if t > sim._now:
                                yield t - sim._now
                            yield r
                        ready = r._value
                        reg_ready[s] = ready
                    else:
                        ready = r
                    if ready > t:
                        gap = ready - t
                        kind = reg_kind_get(s, "int")
                        if kind == "mem":
                            cv[S_DEPEND] += gap
                        elif kind == "fdiv":
                            cv[S_FDIV] += gap
                        else:
                            cv[S_BYPASS] += gap
                        if temit is not None:
                            temit(ttrack, _KIND_STALL[kind], t, gap)
                        t = ready

                if cls is _IntOp:
                    issue = t
                    t += 1
                    cv[EXEC_INT] += 1
                    if op.dst is not None:
                        reg_ready[op.dst] = issue + op.latency
                        reg_kind[op.dst] = "int" if op.latency == 1 else "fp"
                elif cls is _FpOp:
                    lat = fp_latency[op.unit]
                    if op.unit in ("fdiv", "fsqrt"):
                        if self._fdiv_free > t:
                            cv[S_FDIV] += self._fdiv_free - t
                            if temit is not None:
                                temit(ttrack, S_FDIV, t, self._fdiv_free - t)
                            t = self._fdiv_free
                        issue = t
                        self._fdiv_free = issue + lat
                        kind = "fdiv"
                    else:
                        issue = t
                        kind = "fp"
                    t += 1
                    cv[EXEC_FP] += 1
                    if op.dst is not None:
                        reg_ready[op.dst] = issue + lat
                        reg_kind[op.dst] = kind
                else:  # BranchOp
                    t += 1
                    cv[EXEC_INT] += 1
                    flush = branch_resolve(op.backward, op.taken)
                    if flush:
                        t += flush
                        cv[S_BRANCH] += flush
                        if temit is not None:
                            temit(ttrack, S_BRANCH, t - flush, flush)
                continue

            # Memory and synchronization ops.  Source waits and the
            # non-blocking issue sequence are inlined: the generator
            # helpers below are only entered on the slow paths (an
            # unresolved future source, a full scoreboard, a disabled
            # feature) so the common op costs no extra frames.
            srcs = getattr(op, "srcs", ())
            if srcs:
                for s in srcs:
                    r = reg_ready_get(s)
                    if r is None:
                        continue
                    if r.__class__ is _Future:
                        t = yield from self._wait_srcs(srcs, t)
                        break
                    if r > t:
                        gap = r - t
                        kind = reg_kind_get(s, "int")
                        if kind == "mem":
                            cv[S_DEPEND] += gap
                        elif kind == "fdiv":
                            cv[S_FDIV] += gap
                        else:
                            cv[S_BYPASS] += gap
                        if temit is not None:
                            temit(ttrack, _KIND_STALL[kind], t, gap)
                        t = r

            if cls is _LoadOp:
                if san is not None:
                    san.load(node, op, t)
                if (op.addr >> TAG_SHIFT) == 0 or is_own_spm(op.addr, self.node):
                    free = spm_port.free_at
                    start = free if free > t else t
                    spm_port.free_at = start + 1
                    spm_port.busy_cycles += 1
                    t += 1
                    cv[EXEC_INT] += 1
                    reg_ready[op.dst] = start + local_load
                    reg_kind[op.dst] = "mem"
                elif nonblocking and sb.outstanding < sb.capacity:
                    sb.outstanding += 1
                    sb.total_issued += 1
                    if sb.outstanding > sb.peak:
                        sb.peak = sb.outstanding
                    if t > sim._now:
                        yield t - sim._now
                    fut = remote_request(node, op.addr, False, t, 1)
                    fut.add_callback(sb_release)
                    t += 1
                    cv[EXEC_INT] += 1
                    reg_ready[op.dst] = fut
                    reg_kind[op.dst] = "mem"
                else:
                    t = yield from self._issue_remote(
                        op.addr, False, t, words=1, dsts=(op.dst,),
                    )
            elif cls is _VecLoadOp:
                if san is not None:
                    san.vload(node, op, t)
                if compression:
                    if nonblocking and sb.outstanding < sb.capacity:
                        sb.outstanding += 1
                        sb.total_issued += 1
                        if sb.outstanding > sb.peak:
                            sb.peak = sb.outstanding
                        if t > sim._now:
                            yield t - sim._now
                        fut = remote_request(node, op.addr, False, t,
                                             len(op.dsts))
                        fut.add_callback(sb_release)
                        t += 1
                        cv[EXEC_INT] += 1
                        for dst in op.dsts:
                            reg_ready[dst] = fut
                            reg_kind[dst] = "mem"
                    else:
                        t = yield from self._issue_remote(
                            op.addr, False, t, words=len(op.dsts),
                            dsts=op.dsts,
                        )
                else:
                    # Expanded into independent word loads, one per cycle.
                    for i, dst in enumerate(op.dsts):
                        t = yield from self._issue_remote(
                            op.addr + 4 * i, False, t, words=1, dsts=(dst,),
                        )
            elif cls is _StoreOp:
                if san is not None:
                    san.store(node, op, t)
                if (op.addr >> TAG_SHIFT) == 0 or is_own_spm(op.addr, self.node):
                    free = spm_port.free_at
                    spm_port.free_at = (free if free > t else t) + 1
                    spm_port.busy_cycles += 1
                    t += 1
                    cv[EXEC_INT] += 1
                elif sb.outstanding < sb.capacity:
                    sb.outstanding += 1
                    sb.total_issued += 1
                    if sb.outstanding > sb.peak:
                        sb.peak = sb.outstanding
                    if t > sim._now:
                        yield t - sim._now
                    fut = remote_request(node, op.addr, True, t, 1)
                    fut.add_callback(sb_release)
                    t += 1
                    cv[EXEC_INT] += 1
                else:
                    t = yield from self._issue_remote(
                        op.addr, True, t, words=1, dsts=(),
                    )
            elif cls is _AmoOp:
                if san is not None:
                    # Handoff: the checker processes the AMO when the
                    # packet serializes at its bank (memsys hook).
                    san.amo_issue(node, op)
                if sb.outstanding < sb.capacity:
                    sb.outstanding += 1
                    sb.total_issued += 1
                    if sb.outstanding > sb.peak:
                        sb.peak = sb.outstanding
                    if t > sim._now:
                        yield t - sim._now
                    fut = remote_amo(node, op.addr, op.kind, op.value, t)
                    fut.add_callback(sb_release)
                    t += 1
                    cv[EXEC_INT] += 1
                    self.last_stall = S_AMO
                    yield fut
                    arrival, old = fut._value
                    if arrival > t:
                        cv[S_AMO] += arrival - t
                        if temit is not None:
                            temit(ttrack, S_AMO, t, arrival - t)
                        t = arrival
                else:
                    t, old = yield from self._issue_amo(op, t)
                send_val = old
                if op.dst is not None:
                    reg_ready[op.dst] = t
                    reg_kind[op.dst] = "mem"
            elif cls is _FenceOp:
                t += 1
                cv[EXEC_INT] += 1
                if san is not None:
                    san.fence(node, t)
                if not sb.empty:
                    self.last_stall = st.STALL_FENCE
                    if t > sim._now:
                        yield t - sim._now
                    fut = sb.wait_drain()
                    yield fut
                    drained = max(t, sim._now)
                    cv[st.STALL_FENCE] += drained - t
                    if temit is not None and drained > t:
                        temit(ttrack, st.STALL_FENCE, t, drained - t)
                    t = drained
            elif cls is _BarrierOp:
                t += 1
                cv[EXEC_INT] += 1
                self.last_stall = st.STALL_BARRIER
                if t > sim._now:
                    yield t - sim._now
                fut = op.group.arrive(self.node, t)
                yield fut
                released = max(t, sim._now)
                cv[st.STALL_BARRIER] += released - t
                if temit is not None and released > t:
                    temit(ttrack, st.STALL_BARRIER, t, released - t)
                t = released
            elif cls is _SleepOp:
                t += op.cycles
                cv[st.STALL_IDLE] += op.cycles
                if temit is not None:
                    temit(ttrack, st.STALL_IDLE, t - op.cycles, op.cycles)
            elif cls is _PimIssueOp:
                # Fire-and-forget, like a store -- but tracked in the
                # PIM-pending list instead of the scoreboard so ordinary
                # fences stay PIM-oblivious.
                if san is not None:
                    san.pim_issue(node, op, t)
                if t > sim._now:
                    yield t - sim._now
                fut = memsys.pim_request(node, op.addr, op.command, t)
                pim_pending.append(fut)
                t += 1
                cv[EXEC_INT] += 1
            elif cls is _PimReadOp:
                # Blocking: the kernel generator needs the payload (the
                # AMO discipline -- serialized at the channel).
                if t > sim._now:
                    yield t - sim._now
                fut = memsys.pim_request(node, op.addr, op.command, t)
                t += 1
                cv[EXEC_INT] += 1
                self.last_stall = S_AMO
                yield fut
                arrival, payload = fut._value
                if arrival > t:
                    cv[S_AMO] += arrival - t
                    if temit is not None:
                        temit(ttrack, S_AMO, t, arrival - t)
                    t = arrival
                send_val = payload
            elif cls is _PimFenceOp:
                t += 1
                cv[EXEC_INT] += 1
                if san is not None:
                    san.pim_fence(node, t)
                if pim_pending:
                    self.last_stall = st.STALL_FENCE
                    # Completion is the max arrival over pending commands
                    # (read off the futures, not the global clock: the
                    # tile's clock may lag other components).
                    drained = t
                    for fut in pim_pending:
                        if not fut._done:
                            if t > sim._now:
                                yield t - sim._now
                            yield fut
                        v = fut._value
                        arrival = v[0] if type(v) is tuple else v
                        if arrival > drained:
                            drained = arrival
                    cv[st.STALL_FENCE] += drained - t
                    if temit is not None and drained > t:
                        temit(ttrack, st.STALL_FENCE, t, drained - t)
                    t = drained
                    del pim_pending[:]
            else:
                raise TypeError(f"core cannot execute {op!r}")

        # Implicit drain: a tile is not finished while requests are in flight.
        if not sb.empty:
            self.last_stall = st.STALL_FENCE
            if t > sim._now:
                yield t - sim._now
            fut = sb.wait_drain()
            yield fut
            drained = max(t, sim._now)
            cv[st.STALL_FENCE] += drained - t
            if temit is not None and drained > t:
                temit(ttrack, st.STALL_FENCE, t, drained - t)
            t = drained
        if san is not None:
            # The implicit drain releases outstanding requests exactly
            # like an explicit fence would.
            san.kernel_end(node, t)
        if trace is not None:
            # Whole-launch span; the stall spans above nest inside it.
            trace.complete(ttrack, "kernel", self.start_time,
                           t - self.start_time)
        self.finish_time = t
        return t

    # -- the batched fast path --------------------------------------------------

    def _run_block(self, op: BlockOp, t: float):
        """Replay a recorded compute window; returns the advanced clock.

        Executes the decoded body ``op.iters`` times without touching
        the kernel generator, then hands the steady state to a
        :class:`FoldTracker` so long windows advance arithmetically.
        This path only runs with every observability hook off, so the
        icache state can live in locals for the whole window -- written
        back whenever control can leave the tile (future yields) and at
        the end, keeping any concurrent reader consistent.
        """
        sim = self.sim
        cv = self.counters.raw
        reg_ready = self.reg_ready
        reg_kind = self.reg_kind
        reg_ready_get = reg_ready.get
        reg_kind_get = reg_kind.get
        fp_latency = self._fp_latency
        branch_resolve = self.branch.predict_and_resolve
        local_load = self.timings.core.local_load
        spm_port = self.memsys.spms[self.node]._port
        node = self.node
        _Future = Future

        EXEC_INT = st.EXEC_INT
        EXEC_FP = st.EXEC_FP
        S_DEPEND = st.STALL_DEPEND_LOAD
        S_FDIV = st.STALL_FDIV
        S_BYPASS = st.STALL_BYPASS
        S_ICACHE = st.STALL_ICACHE
        S_BRANCH = st.STALL_BRANCH

        icache = self.icache
        miss_penalty = icache.miss_penalty
        tags = icache._tags
        num_lines = icache.num_lines
        last_line = icache._last_line
        hits = icache.hits
        misses = icache.misses

        body = op.decoded_for(icache.line_instrs)
        nbody = len(body)
        n = op.iters
        last_iter = n - 1
        # Folding needs two matching full iterations plus the final
        # per-op one, so it can only pay off from four iterations up.
        track = FoldTracker(op, self) if n > 3 else None

        i = 0
        while i < n:
            if track is not None:
                track.begin_iter(t)
            dirty = False
            for kind, line, dst, srcs, a, b in body:
                # Instruction fetch (same-line short-circuit inline).
                if line != last_line:
                    last_line = line
                    idx = line % num_lines
                    if tags[idx] == line:
                        hits += 1
                    else:
                        tags[idx] = line
                        misses += 1
                        t += miss_penalty
                        cv[S_ICACHE] += miss_penalty
                        dirty = True
                else:
                    hits += 1

                # Source dependencies.
                for s in srcs:
                    r = reg_ready_get(s)
                    if r is None:
                        continue
                    if r.__class__ is _Future:
                        if not r._done:
                            self.last_stall = _KIND_STALL[
                                reg_kind_get(s, "int")]
                            # Control leaves the tile: publish icache
                            # state, re-localize after the wakeup.
                            icache._last_line = last_line
                            icache.hits = hits
                            icache.misses = misses
                            if t > sim._now:
                                yield t - sim._now
                            yield r
                            last_line = icache._last_line
                            hits = icache.hits
                            misses = icache.misses
                        ready = r._value
                        reg_ready[s] = ready
                        dirty = True
                    else:
                        ready = r
                    if ready > t:
                        gap = ready - t
                        kindc = reg_kind_get(s, "int")
                        if kindc == "mem":
                            cv[S_DEPEND] += gap
                        elif kindc == "fdiv":
                            cv[S_FDIV] += gap
                        else:
                            cv[S_BYPASS] += gap
                        t = ready

                # Execute (kinds: 0=int, 1=fp, 2=branch, 3=load).
                if kind == 0:
                    issue = t
                    t += 1
                    cv[EXEC_INT] += 1
                    if dst is not None:
                        reg_ready[dst] = issue + a
                        reg_kind[dst] = "int" if a == 1 else "fp"
                elif kind == 1:
                    lat = fp_latency[a]
                    if b:
                        fdiv_free = self._fdiv_free
                        if fdiv_free > t:
                            cv[S_FDIV] += fdiv_free - t
                            t = fdiv_free
                        issue = t
                        self._fdiv_free = issue + lat
                        kindc = "fdiv"
                    else:
                        issue = t
                        kindc = "fp"
                    t += 1
                    cv[EXEC_FP] += 1
                    reg_ready[dst] = issue + lat
                    reg_kind[dst] = kindc
                elif kind == 2:
                    t += 1
                    cv[EXEC_INT] += 1
                    flush = branch_resolve(
                        b, a if a is not None else i < last_iter)
                    if flush:
                        t += flush
                        cv[S_BRANCH] += flush
                else:
                    free = spm_port.free_at
                    start = free if free > t else t
                    spm_port.free_at = start + 1
                    spm_port.busy_cycles += 1
                    t += 1
                    cv[EXEC_INT] += 1
                    reg_ready[dst] = start + local_load
                    reg_kind[dst] = "mem"

            if track is not None and i < last_iter - 1:
                if dirty:
                    track.dirty = True
                k = track.end_iter(t, i)
                if k > 0:
                    t = track.fold(t, k)
                    hits += k * nbody
                    i += k
                    track = None
            i += 1

        icache._last_line = last_line
        icache.hits = hits
        icache.misses = misses
        return t

    # -- memory-op helpers -------------------------------------------------------

    def _wait_srcs(self, srcs, t: float):
        """Wait for source registers; returns the advanced clock."""
        sim = self.sim
        cv = self.counters.raw
        reg_ready = self.reg_ready
        reg_kind_get = self.reg_kind.get
        for s in srcs:
            r = reg_ready.get(s)
            if r is None:
                continue
            if r.__class__ is Future:
                if not r._done:
                    self.last_stall = _KIND_STALL[reg_kind_get(s, "int")]
                    if t > sim._now:
                        yield t - sim._now
                    yield r
                ready = r._value
                reg_ready[s] = ready
            else:
                ready = r
            if ready > t:
                kind = reg_kind_get(s, "int")
                gap = ready - t
                if kind == "mem":
                    cv[st.STALL_DEPEND_LOAD] += gap
                elif kind == "fdiv":
                    cv[st.STALL_FDIV] += gap
                else:
                    cv[st.STALL_BYPASS] += gap
                if self._trace is not None:
                    self._trace.complete(self._trace_track,
                                         _KIND_STALL[kind], t, gap)
                t = ready
        return t

    def _acquire_credit(self, t: float):
        """Claim a scoreboard entry, stalling if the bit-vector is full."""
        sim = self.sim
        sb = self.scoreboard
        if sb.full:
            self.last_stall = st.STALL_CREDIT
            if t > sim._now:
                yield t - sim._now
            fut = sb.wait_credit()
            yield fut
            granted = max(t, sim._now)
            self.counters.raw[st.STALL_CREDIT] += granted - t
            if self._trace is not None and granted > t:
                self._trace.complete(self._trace_track, st.STALL_CREDIT,
                                     t, granted - t)
            t = granted
        sb.acquire()
        return t

    def _issue_remote(self, addr: int, is_write: bool, t: float,
                      words: int, dsts):
        """Inject a remote load/store; non-blocking unless the feature is off."""
        sim = self.sim
        cv = self.counters.raw
        t = yield from self._acquire_credit(t)
        if t > sim._now:
            yield t - sim._now
        fut = self.memsys.remote_request(
            self.node, addr, is_write=is_write, time=t, words=words,
        )
        fut.add_callback(self._sb_release)
        t += 1
        cv[st.EXEC_INT] += 1
        reg_ready = self.reg_ready
        reg_kind = self.reg_kind
        for dst in dsts:
            reg_ready[dst] = fut
            reg_kind[dst] = "mem"
        if not self.features.nonblocking_loads and not is_write:
            self.last_stall = st.STALL_DEPEND_LOAD
            yield fut
            arrival = fut._value
            cv[st.STALL_DEPEND_LOAD] += max(0.0, arrival - t)
            if self._trace is not None and arrival > t:
                self._trace.complete(self._trace_track, st.STALL_DEPEND_LOAD,
                                     t, arrival - t)
            t = max(t, arrival)
            for dst in dsts:
                reg_ready[dst] = arrival
        return t

    def _issue_amo(self, op: AmoOp, t: float):
        """Atomics block the kernel generator: it needs the old value."""
        sim = self.sim
        cv = self.counters.raw
        t = yield from self._acquire_credit(t)
        if t > sim._now:
            yield t - sim._now
        fut = self.memsys.remote_amo(self.node, op.addr, op.kind, op.value, t)
        fut.add_callback(self._sb_release)
        t += 1
        cv[st.EXEC_INT] += 1
        self.last_stall = st.STALL_AMO
        yield fut
        arrival, old = fut._value
        cv[st.STALL_AMO] += max(0.0, arrival - t)
        if self._trace is not None and arrival > t:
            self._trace.complete(self._trace_track, st.STALL_AMO,
                                 t, arrival - t)
        t = max(t, arrival)
        return t, old
