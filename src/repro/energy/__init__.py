"""Energy (Fig 13) and area/density (Table IV) models."""

from .area import (
    RETICLE_MM2,
    TABLE_IV,
    TILE_AREA_3NM_UM2,
    TILE_BREAKDOWN,
    ChipRecord,
    cores_on_die,
    density_ratios,
    record,
    ruche_router_overhead,
    tile_area_um2,
)
from .epi import (
    HB_COMPONENT_PJ,
    INSTRUCTION_CLASSES,
    PITON_32NM_PJ,
    EnergyReport,
    cv2_scale,
    efficiency_ratios,
    hb_epi,
    hb_epi_breakdown,
    kernel_energy,
    piton_epi_scaled,
)

__all__ = [
    "INSTRUCTION_CLASSES",
    "HB_COMPONENT_PJ",
    "PITON_32NM_PJ",
    "cv2_scale",
    "hb_epi",
    "hb_epi_breakdown",
    "piton_epi_scaled",
    "efficiency_ratios",
    "kernel_energy",
    "EnergyReport",
    "ChipRecord",
    "TABLE_IV",
    "record",
    "density_ratios",
    "TILE_AREA_3NM_UM2",
    "TILE_BREAKDOWN",
    "RETICLE_MM2",
    "tile_area_um2",
    "cores_on_die",
    "ruche_router_overhead",
]
