"""Area and compute-density model (paper Table IV and Fig 2).

Table IV compares published manycore chips with areas scaled to the
14/16 nm node; the "Our x" columns are HB's density advantage.  The chip
data below is the paper's own table, recorded as ground truth; helper
functions recompute the derived columns so tests can check consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ChipRecord:
    """One Table IV row."""

    name: str
    category: str  # Cellular / Flat / Hierarchical
    networks: str
    processor: str
    cores: int
    fpus: int
    scaled_area_mm2: float  # at 14/16 nm

    @property
    def cores_per_mm2(self) -> float:
        return self.cores / self.scaled_area_mm2

    @property
    def fpus_per_mm2(self) -> float:
        return self.fpus / self.scaled_area_mm2


TABLE_IV: List[ChipRecord] = [
    ChipRecord("HammerBlade", "Cellular", "2 x 2-D Ruche", "Single-issue",
               2048, 2048, 77.5),
    ChipRecord("TILE64", "Flat", "5 x 2-D Mesh", "VLIW", 64, 0, 19.4),
    ChipRecord("RAW", "Flat", "4 x 2-D Mesh", "Single-issue", 16, 16, 2.6),
    ChipRecord("Celerity", "Flat", "2 x 2-D Mesh", "Single-issue",
               496, 0, 15.3),
    ChipRecord("Epiphany-V", "Flat", "3 x 2-D Mesh", "Dual-issue",
               1024, 2048, 117.0),
    ChipRecord("OpenPiton", "Flat", "3 x 2-D Mesh", "Single-issue",
               25, 25, 11.1),
    ChipRecord("ET-SoC-1", "Hierarchical", "Crossbar, 2 x 2-D CMesh",
               "Vector", 1088, 8704, 1710.0),
    ChipRecord("MemPool", "Hierarchical", "Crossbar, Radix-4 Butterfly",
               "Single-issue", 256, 0, 8.6),
]


def record(name: str) -> ChipRecord:
    for rec in TABLE_IV:
        if rec.name == name:
            return rec
    raise KeyError(f"no Table IV record named {name!r}")


def density_ratios(reference: str = "HammerBlade") -> Dict[str, Dict[str, Optional[float]]]:
    """The "Our x" columns: reference density over each chip's density."""
    ref = record(reference)
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for rec in TABLE_IV:
        fpu_ratio: Optional[float]
        if rec.fpus == 0:
            fpu_ratio = None  # no FPUs to compare (Table IV leaves a dash)
        else:
            fpu_ratio = ref.fpus_per_mm2 / rec.fpus_per_mm2
        out[rec.name] = {
            "core_density": rec.cores_per_mm2,
            "core_ratio": ref.cores_per_mm2 / rec.cores_per_mm2,
            "fpu_density": rec.fpus_per_mm2,
            "fpu_ratio": fpu_ratio,
        }
    return out


# -- HB tile area breakdown (Fig 2 right), scaled to the 3 nm node ---------

TILE_AREA_3NM_UM2 = 4496.0

#: Fractional area of one HB tile by component (Fig 2's pie):
#: the Ruche router adds ~4% over the tile; SRAMs dominate.
TILE_BREAKDOWN: Dict[str, float] = {
    "spm_sram": 0.27,
    "icache_sram": 0.22,
    "core_logic": 0.23,
    "fpu": 0.15,
    "router": 0.10,  # includes the 40% router-area ruche premium
    "barrier_and_misc": 0.03,
}

RETICLE_MM2 = 600.0


def tile_area_um2(node: str = "3nm") -> float:
    if node != "3nm":
        raise ValueError("breakdown is recorded at the 3 nm node")
    return TILE_AREA_3NM_UM2


def cores_on_die(die_mm2: float = RETICLE_MM2,
                 tile_um2: float = TILE_AREA_3NM_UM2,
                 array_fraction: float = 0.8) -> int:
    """How many tiles fit on a die (the paper's 100K+ claim at 600 mm^2)."""
    if die_mm2 <= 0 or tile_um2 <= 0 or not 0 < array_fraction <= 1:
        raise ValueError("invalid die parameters")
    return int(die_mm2 * 1e6 * array_fraction / tile_um2)


def ruche_router_overhead(base_router_fraction: float = 0.071,
                          router_premium: float = 0.40) -> float:
    """Tile-area overhead of the Ruche links (paper: ~4%)."""
    return base_router_fraction * router_premium
