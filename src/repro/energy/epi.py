"""Energy-per-instruction model (paper Fig 13).

The paper measures HB's EPI from post-layout gate-level switching
activity and compares against the OpenPiton 25-core power study
(McKeown et al., HPCA'18), normalizing the published Piton figures to
the same process with CV^2 scaling.  Fig 13 is therefore an *analytic*
comparison, which we reproduce with the same methodology:

* HB per-instruction energy is summed from per-component event energies
  (icache fetch, decode, register file, execute unit, SPM, clock tree),
  using representative 14/16 nm event energies;
* Piton per-instruction energies are the published measurements scaled
  by CV^2 to the 14/16 nm node;
* the figure's claim is the ratio band: HB is 3.6-15.1x more efficient
  per instruction, worst for FP (Piton lacks our FPU overhead classes)
  and best for loads (Piton's L1/L1.5/L2 inclusive hierarchy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

INSTRUCTION_CLASSES = ("int", "mul", "fp", "load", "store")

#: Per-event energies for the HB tile, pJ at 14/16 nm.  The split follows
#: the paper's breakdown: small icache, no L1 D-cache (SPM instead), short
#: in-tile wires (the 16.6x tile-area difference vs Piton shrinks clock
#: and signal wire capacitance).
HB_COMPONENT_PJ: Dict[str, float] = {
    "icache_fetch": 1.1,
    "decode_ctrl": 0.5,
    "regfile": 0.8,
    "int_alu": 0.4,
    "mul_unit": 1.2,
    "fpu": 2.6,
    "spm_access": 1.0,
    "lsu_net_iface": 0.7,
    "clock_pipeline": 1.1,
}

#: Which components each instruction class exercises.
_CLASS_COMPONENTS: Dict[str, tuple] = {
    "int": ("icache_fetch", "decode_ctrl", "regfile", "int_alu",
            "clock_pipeline"),
    "mul": ("icache_fetch", "decode_ctrl", "regfile", "mul_unit",
            "clock_pipeline"),
    "fp": ("icache_fetch", "decode_ctrl", "regfile", "fpu",
           "clock_pipeline"),
    "load": ("icache_fetch", "decode_ctrl", "regfile", "spm_access",
             "lsu_net_iface", "clock_pipeline"),
    "store": ("icache_fetch", "decode_ctrl", "regfile", "spm_access",
              "lsu_net_iface", "clock_pipeline"),
}

#: OpenPiton per-instruction energies, pJ, as published for the 32 nm
#: chip at 1.05 V (representative values from the HPCA'18 study's
#: per-instruction tests).
PITON_32NM_PJ: Dict[str, float] = {
    "int": 92.0,
    "mul": 110.0,
    "fp": 75.0,
    "load": 270.0,
    "store": 250.0,
}

#: CV^2 scaling: capacitance ~ feature size, voltage 1.05 V -> 0.8 V.
PITON_NODE_NM = 32.0
HB_NODE_NM = 16.0
PITON_VDD = 1.05
HB_VDD = 0.80


def cv2_scale(from_nm: float = PITON_NODE_NM, to_nm: float = HB_NODE_NM,
              from_v: float = PITON_VDD, to_v: float = HB_VDD) -> float:
    """Energy scaling factor between process/voltage corners."""
    if min(from_nm, to_nm, from_v, to_v) <= 0:
        raise ValueError("process parameters must be positive")
    return (to_nm / from_nm) * (to_v / from_v) ** 2


def hb_epi(instr_class: str) -> float:
    """HB energy per instruction of a class, pJ."""
    try:
        parts = _CLASS_COMPONENTS[instr_class]
    except KeyError as exc:
        raise ValueError(f"unknown instruction class {instr_class!r}") from exc
    return sum(HB_COMPONENT_PJ[p] for p in parts)


def hb_epi_breakdown(instr_class: str) -> Dict[str, float]:
    """HB EPI split by component (the stacked bars of Fig 13)."""
    parts = _CLASS_COMPONENTS[instr_class]
    return {p: HB_COMPONENT_PJ[p] for p in parts}


def piton_epi_scaled(instr_class: str) -> float:
    """Piton EPI normalized to the HB process corner, pJ."""
    return PITON_32NM_PJ[instr_class] * cv2_scale()


def efficiency_ratios() -> Dict[str, float]:
    """Piton/HB EPI ratio per instruction class (Fig 13's headline)."""
    return {c: piton_epi_scaled(c) / hb_epi(c) for c in INSTRUCTION_CLASSES}


#: Per-event energies for the in-bank PIM units, pJ at the same corner.
#: Keys match the :class:`repro.pim.PimEngine` counter names, so a
#: counter snapshot feeds :func:`pim_energy` directly.  Values follow
#: the GDDR6-AiM breakdown shape: data-carrying channel commands pay
#: the bus drivers, ``mac_bank_ops`` amortizes one row access plus a
#: 16-lane near-sense MAC, readout pays per word driven off-chip.
PIM_OP_PJ: Dict[str, float] = {
    "wr_gb": 25.0,        # 16-word global-buffer broadcast incl. bus burst
    "wr_sbk": 45.0,       # single-bank row write: activate + write drivers
    "wr_bias": 4.0,       # all-bank GRF preset (control broadcast)
    "wr_crf": 1.5,        # CRF slot program
    "mac_abk": 3.0,       # command decode/broadcast overhead
    "mac_bank_ops": 38.0,  # per bank: row access + 16-lane MAC + GRF update
    "rd_mac": 3.0,        # readout command overhead
    "rd_words": 2.2,      # per accumulator word driven over the channel bus
}


def pim_op_epi(op: str) -> float:
    """Energy of one PIM event class, pJ."""
    try:
        return PIM_OP_PJ[op]
    except KeyError as exc:
        raise ValueError(f"unknown PIM op class {op!r}; one of "
                         f"{sorted(PIM_OP_PJ)}") from exc


def pim_energy(op_counts: Mapping[str, float]) -> "EnergyReport":
    """Estimate memory-side compute energy from PIM engine counters.

    ``op_counts`` is (a snapshot of) ``PimEngine.counters``: command
    counts by name plus the ``mac_bank_ops`` / ``rd_words`` event
    counters.  Unknown keys raise, so counter renames cannot silently
    drop energy.
    """
    by_class = {}
    total = 0.0
    for op, count in op_counts.items():
        if count < 0:
            raise ValueError("PIM op counts must be non-negative")
        total += pim_op_epi(op) * count
        by_class[op] = count
    return EnergyReport(total_pj=total, by_class=by_class)


@dataclass
class EnergyReport:
    """Kernel-level energy estimate from executed-instruction counts."""

    total_pj: float
    by_class: Dict[str, float]

    @property
    def avg_epi(self) -> float:
        n = sum(self.by_class.values())
        return self.total_pj / n if n else 0.0


def kernel_energy(instr_counts: Mapping[str, float]) -> EnergyReport:
    """Estimate a kernel's core energy from per-class instruction counts.

    ``instr_counts`` maps instruction class -> dynamic count.
    """
    by_class = {}
    total = 0.0
    for cls, count in instr_counts.items():
        if count < 0:
            raise ValueError("instruction counts must be non-negative")
        epi = hb_epi(cls)
        by_class[cls] = count
        total += epi * count
    return EnergyReport(total_pj=total, by_class=dict(instr_counts))
