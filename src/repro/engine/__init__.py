"""Discrete-event simulation engine underlying every model in ``repro``."""

from .event import Event, SimulationError, Simulator
from .process import Future, Process, join, spawn
from .stats import BinnedSeries, Counter, Interval, geomean, mean

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "Future",
    "Process",
    "join",
    "spawn",
    "BinnedSeries",
    "Counter",
    "Interval",
    "geomean",
    "mean",
]
