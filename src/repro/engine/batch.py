"""Batched (lockstep) execution windows for the tile interpreter.

The classic execution model interprets one op object per simulated
instruction: the kernel generator constructs it, ``TileCore._run``
re-inspects its class and attributes, and every loop iteration repeats
both.  For the compute-only inner loops that dominate the dense kernels
(AES rounds, SGEMM fma chunks, stencil updates) all of that work is
identical every time -- the stream of (pc, operands, latency class) is
static.

This module turns such regions into :class:`~repro.isa.ops.BlockOp`
windows:

* :class:`BlockBuilder` -- records one copy of the region through the
  kernel context (so pcs and registers are assigned exactly as the
  hand-unrolled code would have assigned them) and decodes each op into
  a flat tuple at *kernel load time*, not per execution;
* :class:`FoldTracker` -- watches consecutive replayed iterations of a
  window; once two match in duration and relative end-state, every
  remaining iteration is provably identical and the tracker advances
  them all arithmetically (clock, counters, register ready times) in
  O(1) -- the compute-side analogue of the event queue's quiescence
  skip-ahead;
* :func:`expand_blocks` -- the exact path: a generator adapter that
  re-materializes each window into the per-op stream whenever a
  trace/sanitize/audit hook is attached, so observability always sees
  (and checks) the classic interpreter, cycle-identical to the batched
  one.

Soundness of the fold: a window never yields to the event queue unless
it hits an unresolved future, so between futures it executes atomically
in host order -- no other component can interleave with it.  Within
that atomic span the iteration's evolution is a deterministic function
of the entry state *relative to the entry clock*: the ready offsets of
every register the body touches, the iterative FP unit's backlog, the
SPM port horizon, and the icache contents.  If iteration *k+1* starts
from the same relative state iteration *k* did (checked by signature
equality, with read-only registers clamped at "already ready") and
neither missed the icache nor touched a future, then by induction every
following iteration replays the same deltas shifted in time -- so the
tracker applies ``k`` iterations as multiplication.  The final
iteration always executes op-by-op: its closing backward branch falls
through and mispredicts, unlike the folded ones.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple

from ..isa.ops import K_BR, K_FP, K_INT, K_LD, BlockOp, FpOp
from ..pgas.spaces import TAG_SHIFT

#: Stall/exec categories a block body can charge; the fold tracker
#: captures per-iteration deltas for exactly these.
_FOLD_CATS = None  # resolved lazily to avoid a core<->engine import cycle


def _fold_cats():
    global _FOLD_CATS
    if _FOLD_CATS is None:
        from ..core import stall as st

        _FOLD_CATS = (st.EXEC_INT, st.EXEC_FP, st.STALL_DEPEND_LOAD,
                      st.STALL_FDIV, st.STALL_BYPASS, st.STALL_BRANCH)
    return _FOLD_CATS


class BlockBuilder:
    """Records one iteration of a compute-only region into a window.

    Obtained from :meth:`KernelContext.block`; mirrors the context's op
    constructors but appends decoded entries instead of returning op
    objects.  Recording advances the context's pc exactly like emitting
    the ops would, so code after the block sees the same fetch stream.
    """

    def __init__(self, ctx: Any, label: str) -> None:
        self._ctx = ctx
        self._label = label
        self._body: List[Tuple] = []
        self._closed = False
        self.start_pc = ctx._pc

    #: True while this region still needs its ops recorded (first use).
    recording = True

    def _open(self) -> None:
        if self._closed:
            raise ValueError(
                f"block {self._label!r}: branch_back closed the window; "
                "no further ops can be recorded"
            )

    # -- compute ----------------------------------------------------------

    def alu(self, dst: Optional[int] = None,
            srcs: Sequence[int] = ()) -> Optional[int]:
        self._open()
        ctx = self._ctx
        pc = ctx._pc
        ctx._pc = pc + 1
        self._body.append((K_INT, pc, dst, tuple(srcs), 1, None))
        return dst

    def mul(self, dst: Optional[int] = None,
            srcs: Sequence[int] = ()) -> Optional[int]:
        self._open()
        ctx = self._ctx
        pc = ctx._pc
        ctx._pc = pc + 1
        self._body.append((K_INT, pc, dst, tuple(srcs), 2, None))
        return dst

    def _fp(self, unit: str, dst: int, srcs: Sequence[int]) -> int:
        self._open()
        if unit not in FpOp.UNITS:
            raise ValueError(f"unknown FP unit {unit!r}")
        ctx = self._ctx
        pc = ctx._pc
        ctx._pc = pc + 1
        self._body.append((K_FP, pc, dst, tuple(srcs), unit,
                           unit in ("fdiv", "fsqrt")))
        return dst

    def fadd(self, dst: int, srcs: Sequence[int] = ()) -> int:
        return self._fp("fadd", dst, srcs)

    def fmul(self, dst: int, srcs: Sequence[int] = ()) -> int:
        return self._fp("fmul", dst, srcs)

    def fma(self, dst: int, srcs: Sequence[int] = ()) -> int:
        return self._fp("fma", dst, srcs)

    def fdiv(self, dst: int, srcs: Sequence[int] = ()) -> int:
        return self._fp("fdiv", dst, srcs)

    def fsqrt(self, dst: int, srcs: Sequence[int] = ()) -> int:
        return self._fp("fsqrt", dst, srcs)

    # -- local memory ------------------------------------------------------

    def load(self, addr: int, dst: Optional[int] = None,
             srcs: Sequence[int] = ()) -> int:
        """A Local-SPM load (the only memory op with tile-local timing)."""
        self._open()
        if (addr >> TAG_SHIFT) != 0:  # Local SPM carries tag 0
            raise ValueError(
                "block windows accept Local-SPM loads only (tag 0); "
                f"got address {addr:#x}"
            )
        ctx = self._ctx
        pc = ctx._pc
        ctx._pc = pc + 1
        if dst is None:
            dst = ctx._next_reg
            ctx._next_reg = dst + 1
        self._body.append((K_LD, pc, dst, tuple(srcs), addr, None))
        return dst

    # -- control ----------------------------------------------------------

    def branch_fwd(self, taken: bool, srcs: Sequence[int] = ()) -> None:
        """A forward branch with a static outcome."""
        self._open()
        ctx = self._ctx
        pc = ctx._pc
        ctx._pc = pc + 1
        self._body.append((K_BR, pc, None, tuple(srcs), taken, False))

    def branch_back(self, srcs: Sequence[int] = ()) -> None:
        """The backward branch closing the window's loop.

        Must be the last recorded op.  Its outcome is per-iteration:
        taken on every replayed iteration except the final fall-through
        (exactly the ``rnd < ROUNDS - 1`` pattern of unrolled kernels).
        """
        self._open()
        ctx = self._ctx
        pc = ctx._pc
        ctx._pc = pc + 1
        self._body.append((K_BR, pc, None, tuple(srcs), None, True))
        self._closed = True

    # -- finalization ------------------------------------------------------

    def emit(self, iters: int = 1) -> BlockOp:
        """Finalize the recording and return the window op to yield."""
        if not self._body:
            raise ValueError(f"block {self._label!r} recorded no ops")
        if iters < 1:
            raise ValueError("blocks replay at least one iteration")
        if iters > 1 and not self._closed:
            raise ValueError(
                f"block {self._label!r} replays {iters} iterations but has "
                "no closing branch_back"
            )
        op = BlockOp(self._body, iters, self._ctx._pc)
        self._ctx._blocks[self._label] = op
        return op


class BlockReplay:
    """The cached-window handle :meth:`KernelContext.block` returns on
    every use after the first.  ``emit`` advances the context's pc past
    the region (the fetch stream re-enters the same lines) and hands
    back the recorded window."""

    recording = False

    def __init__(self, ctx: Any, op: BlockOp) -> None:
        self._ctx = ctx
        self._op = op

    def emit(self, iters: int = 1) -> BlockOp:
        op = self._op
        if iters > 1 and op.body[-1][4] is not None:
            raise ValueError("multi-iteration replay needs a closing "
                             "branch_back in the recorded block")
        self._ctx._pc = op.end_pc
        return op.replayed(iters)


class FoldTracker:
    """Detects the steady state of a replayed window and folds it.

    Usage (from the core's replay loop)::

        tracker = FoldTracker(op, core)
        for each iteration i:
            tracker.begin_iter(t)
            ... execute ops, reporting misses/futures ...
            k = tracker.end_iter(t, i)
            if k:  t = tracker.fold(t, k); jump to final iteration

    ``end_iter`` returns the number of foldable iterations (0 when the
    steady state is not yet established).
    """

    __slots__ = ("op", "core", "cats", "port", "t_start", "counts",
                 "mispred", "dirty", "prev_sig", "prev_dt", "deltas",
                 "mis_delta")

    def __init__(self, op: BlockOp, core: Any) -> None:
        self.op = op
        self.core = core
        self.cats = _fold_cats()
        # The SPM port horizon folds only when the body reserves it every
        # iteration (load_count > 0); bodies without loads never read it.
        self.port = (core.memsys.spms[core.node]._port
                     if op.load_count else None)
        self.prev_sig = None
        self.prev_dt = 0.0
        self.deltas = None
        self.mis_delta = 0
        self.dirty = False

    def begin_iter(self, t: float) -> None:
        self.t_start = t
        self.dirty = False
        cv_get = self.core.counters.raw.get
        self.counts = [cv_get(cat, 0.0) for cat in self.cats]
        self.mispred = self.core.branch.mispredictions

    def taint(self) -> None:
        """Mark the current iteration unfoldable (miss or future)."""
        self.dirty = True

    def end_iter(self, t: float, i: int) -> int:
        """Close iteration ``i``; returns how many iterations to fold."""
        op = self.op
        if self.dirty:
            self.prev_sig = None
            return 0
        core = self.core
        reg_ready = core.reg_ready
        get = reg_ready.get
        sig = [t - self.t_start]
        append = sig.append
        for r in op.writes:
            v = get(r)
            if v is None or v.__class__ is not float and v.__class__ is not int:
                self.prev_sig = None
                return 0
            append(v - t)
        for r in op.readonly:
            v = get(r)
            if v is None:
                append(0.0)
                continue
            if v.__class__ is not float and v.__class__ is not int:
                self.prev_sig = None
                return 0
            off = v - t
            # Already-ready sources can never stall again (the clock only
            # advances), so any non-positive offset is equivalent.
            append(off if off > 0 else 0.0)
        if op.has_fdiv:
            append(core._fdiv_free - t)
        if self.port is not None:
            append(self.port.free_at - t)
        prev = self.prev_sig
        self.prev_sig = sig
        if prev != sig:
            return 0
        # Steady state confirmed: capture this iteration's deltas.
        cv_get = core.counters.raw.get
        self.deltas = [cv_get(cat, 0.0) - c
                       for cat, c in zip(self.cats, self.counts)]
        self.mis_delta = core.branch.mispredictions - self.mispred
        self.prev_dt = sig[0]
        # Fold everything up to (not including) the final iteration.
        return op.iters - 2 - i

    def fold(self, t: float, k: int) -> float:
        """Advance ``k`` verified iterations arithmetically; returns t."""
        op = self.op
        core = self.core
        dt = self.prev_dt
        kdt = k * dt
        cv = core.counters.raw
        for cat, d in zip(self.cats, self.deltas):
            if d:
                cv[cat] += k * d
        branch = core.branch
        branch.predictions += k * op.branch_count
        branch.mispredictions += k * self.mis_delta
        # (icache hits are folded by the caller, which owns the
        # localized hit counter during replay.)
        reg_ready = core.reg_ready
        for r in op.writes:
            reg_ready[r] += kdt
        if op.has_fdiv:
            core._fdiv_free += kdt
        port = self.port
        if port is not None:
            port.free_at += kdt
            port.busy_cycles += k * op.load_count
        return t + kdt


def expand_blocks(gen: Generator[Any, Any, Any]) -> Generator[Any, Any, Any]:
    """Adapter re-materializing windows into the per-op stream.

    Wrapped around the kernel generator whenever any observability hook
    is attached: the classic interpreter (and the hooks watching it)
    then see exactly the op stream the recorder captured.  Send values
    (AMO old values) pass through to the inner generator untouched --
    block bodies never consume them.
    """
    send_val = None
    while True:
        try:
            op = gen.send(send_val)
        except StopIteration as stop:
            return stop.value
        if op.__class__ is BlockOp:
            send_val = None
            for sub in op.expand():
                yield sub
        else:
            send_val = yield op
