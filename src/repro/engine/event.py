"""Discrete-event simulation core.

The simulator maintains a two-lane event queue:

* a **heap lane** of ``(time, sequence, event)`` entries for future
  events, and
* a **zero-delay FIFO lane** (a deque) for events scheduled at the
  *current* simulation time -- the dominant case, since processes resume
  through a delay-0 hop for deterministic ordering.

Both lanes share one monotonically increasing sequence counter, and the
dispatcher always executes the globally smallest ``(time, sequence)``
pair, so the observable order is exactly the classic single-heap order:
time-sorted, ties broken by schedule order.  The FIFO lane merely avoids
the O(log n) sift for the events that would land at the top of the heap
anyway.

Time is measured in core clock cycles (integers by convention, though
floats are accepted).  This engine is deliberately tiny: components
interact by scheduling plain callbacks or by running generator-based
:class:`~repro.engine.process.Process` objects on top of it.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

#: Sentinel meaning "call the event's callback with no argument".
_NO_ARG = object()

#: Recycled internal event records kept per simulator (see ``_post``).
_POOL_MAX = 2048

#: Compact the heap once cancelled entries outnumber live ones and the
#: absolute count is large enough to matter.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be
    cancelled before they fire.  Cancelled events stay queued but are
    skipped (and lazily purged once they dominate the heap).
    """

    __slots__ = ("time", "seq", "fn", "arg", "cancelled", "pooled", "_sim")

    def __init__(self, sim: Optional["Simulator"], time: float, seq: int,
                 fn: Optional[Callable[..., None]], arg: Any,
                 pooled: bool = False) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.arg = arg
        self.cancelled = False
        self.pooled = pooled
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing (no-op after it has fired)."""
        if self.cancelled or self._sim is None:
            return
        self.cancelled = True
        self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.cancelled:
            state = "cancelled"
        elif self._sim is None:
            state = "fired"
        else:
            state = "pending"
        return f"Event(t={self.time}, {state}, fn={self.fn!r})"


class Simulator:
    """The event loop.

    A single :class:`Simulator` instance drives one machine model.  All
    model components hold a reference to it and use :meth:`schedule` /
    :meth:`schedule_at` to advance state.  Engine-internal callers use
    :meth:`_post`, which skips the :class:`Event` hand-out and recycles
    ``__slots__``-ed records through a free list.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Event]] = []
        self._fast: Deque[Event] = deque()
        self._pool: List[Event] = []
        self._seq = 0
        self._now: float = 0
        self._running = False
        self._ncancelled = 0
        #: Total events dispatched over this simulator's lifetime
        #: (the numerator of the host events/sec throughput metric).
        self.events_executed = 0
        #: Clock of the most recently dispatched event.  Unlike ``now``,
        #: this never moves to a ``run(until=...)`` horizon the queue
        #: drained short of, so a windowed run and a free run of the same
        #: workload report the same value -- the PDES coordinator uses it
        #: as the barrier-invariant final clock.
        self.last_event_time: float = 0
        #: Observability hook (a :class:`repro.trace.Trace` or ``None``).
        #: When set, ``run()`` leaves the inlined fast path and ticks the
        #: tracer's clock-driven metrics sampler after every event.
        self.tracer = None
        #: Correctness hook (a :class:`repro.sanitize.Sanitizer` or
        #: ``None``).  Purely observational -- the run loop never looks
        #: at it; components read it at wiring points (launch, barrier
        #: partitioning) and through their own ``_san`` attributes.
        self.sanitizer = None
        #: Invariant hook (a :class:`repro.audit.Auditor` or ``None``).
        #: When set, ``run()`` leaves the inlined fast path and reports
        #: each dispatched event's time for monotonicity checking.
        self.audit = None

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None],
                 arg: Any = _NO_ARG) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        With ``arg`` given, the callback fires as ``fn(arg)`` -- this lets
        hot callers pass a bound method plus its argument instead of
        allocating a closure per event.
        """
        # ``not (delay >= 0)`` instead of ``delay < 0``: NaN fails every
        # comparison, so it slips through the naive check and then rots
        # the heap's ordering invariant silently.
        if not delay >= 0:
            raise SimulationError(
                f"cannot schedule at a negative or NaN delay (delay={delay})"
            )
        return self.schedule_at(self._now + delay, fn, arg)

    def schedule_at(self, time: float, fn: Callable[..., None],
                    arg: Any = _NO_ARG) -> Event:
        """Schedule ``fn`` to run at absolute ``time``."""
        now = self._now
        if not time >= now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={now} (or at NaN)"
            )
        event = Event(self, time, self._seq, fn, arg)
        self._seq += 1
        if time == now:
            self._fast.append(event)
        else:
            heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def _post(self, time: float, fn: Callable[..., None], arg: Any) -> None:
        """Internal fast-path schedule: no :class:`Event` escapes.

        The record comes from (and returns to) a free list, so steady-state
        process resumption allocates nothing.  Callers must never need to
        cancel -- use :meth:`schedule_at` for that.
        """
        now = self._now
        if not time >= now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={now} (or at NaN)"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.fn = fn
            event.arg = arg
        else:
            event = Event(self, time, seq, fn, arg, pooled=True)
        if time == now:
            self._fast.append(event)
        else:
            heapq.heappush(self._queue, (time, seq, event))

    # -- cancellation bookkeeping ------------------------------------------

    def _note_cancel(self) -> None:
        self._ncancelled += 1
        n = self._ncancelled
        if n >= _COMPACT_MIN and 2 * n > len(self._queue) + len(self._fast):
            self._compact()

    def _compact(self) -> None:
        """Purge cancelled entries so they cannot rot in the heap forever.

        Mutates the containers in place: ``run()``'s drain loop holds
        direct references to them, and compaction can be triggered from a
        callback mid-drain.
        """
        self._queue[:] = [e for e in self._queue if not e[2].cancelled]
        heapq.heapify(self._queue)
        if any(ev.cancelled for ev in self._fast):
            live = [ev for ev in self._fast if not ev.cancelled]
            self._fast.clear()
            self._fast.extend(live)
        self._ncancelled = 0

    # -- dispatch -----------------------------------------------------------

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        fast = self._fast
        while fast and fast[0].cancelled:
            fast.popleft()
            self._ncancelled -= 1
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._ncancelled -= 1
        if fast:
            return self._now  # FIFO-lane events always run at the current time
        if queue:
            return queue[0][0]
        return None

    def _pop_next(self) -> Optional[Event]:
        """Remove and return the next live event in (time, seq) order."""
        fast = self._fast
        queue = self._queue
        while True:
            if fast:
                if queue:
                    head = queue[0]
                    # A heap entry at the current time was scheduled before
                    # the clock reached it, hence carries a smaller seq.
                    if head[0] == self._now and head[1] < fast[0].seq:
                        event = heapq.heappop(queue)[2]
                    else:
                        event = fast.popleft()
                else:
                    event = fast.popleft()
            elif queue:
                event = heapq.heappop(queue)[2]
            else:
                return None
            if event.cancelled:
                self._ncancelled -= 1
                continue
            return event

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self.last_event_time = event.time
        fn = event.fn
        arg = event.arg
        # Detach (and recycle) before the callback runs so the record is
        # immediately reusable by whatever the callback schedules.
        event.fn = None
        event.arg = None
        if event.pooled:
            if len(self._pool) < _POOL_MAX:
                self._pool.append(event)
        else:
            event._sim = None
        self.events_executed += 1
        if arg is _NO_ARG:
            fn()
        else:
            fn(arg)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains (or a limit is hit).

        ``until`` stops the loop once simulated time would exceed it; the
        clock is then advanced to ``until`` (never backwards).  Events at
        exactly ``t == until`` still execute.  ``max_events`` guards
        against runaway models.  Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if (until is None and max_events is None and self.tracer is None
                    and self.audit is None):
                # Hot path: ``step``/``_pop_next`` inlined into one drain
                # loop -- two fewer Python calls per event.  ``_compact``
                # mutates the containers in place, so the local aliases
                # stay valid across callbacks.
                #
                # Quiescence skip-ahead: the loop maintains the invariant
                # that every event in the FIFO lane is at the current
                # time and every heap entry is strictly in the future.
                # When the FIFO drains, nothing in the machine is
                # runnable *now* -- every component is quiescent until
                # the next deadline -- so the clock jumps straight to the
                # heap's head time and all events tied at that timestamp
                # are bulk-moved (in seq order) into the FIFO lane.  Idle
                # spans cost one heap inspection instead of per-cycle
                # machinery, and dispatch itself no longer compares heap
                # heads or re-assigns ``_now`` per event.
                fast = self._fast
                queue = self._queue
                pool = self._pool
                heappop = heapq.heappop
                append = fast.append
                popleft = fast.popleft
                executed = 0
                try:
                    while True:
                        if fast:
                            event = popleft()
                        elif queue:
                            tnext = queue[0][0]
                            self._now = tnext
                            while queue and queue[0][0] == tnext:
                                append(heappop(queue)[2])
                            continue
                        else:
                            break
                        if event.cancelled:
                            self._ncancelled -= 1
                            continue
                        fn = event.fn
                        arg = event.arg
                        event.fn = None
                        event.arg = None
                        if event.pooled:
                            if len(pool) < _POOL_MAX:
                                pool.append(event)
                        else:
                            event._sim = None
                        executed += 1
                        if arg is _NO_ARG:
                            fn()
                        else:
                            fn(arg)
                finally:
                    self.events_executed += executed
                    if executed:
                        self.last_event_time = self._now
                return self._now
            if (max_events is None and self.tracer is None
                    and self.audit is None):
                # Bounded fast path: the same inlined drain, stopping as
                # soon as the heap's head is past the horizon.  The FIFO
                # lane never needs a horizon check -- its events are at
                # the current time, which only reaches ``until`` via the
                # guarded heap refill.  This is the PDES window loop's
                # hot path: thousands of ``run(until=barrier)`` calls per
                # shard must not pay the peek()-per-event slow loop.
                fast = self._fast
                queue = self._queue
                pool = self._pool
                heappop = heapq.heappop
                append = fast.append
                popleft = fast.popleft
                executed = 0
                try:
                    while True:
                        if fast:
                            event = popleft()
                        elif queue:
                            tnext = queue[0][0]
                            if tnext > until:
                                break
                            self._now = tnext
                            while queue and queue[0][0] == tnext:
                                append(heappop(queue)[2])
                            continue
                        else:
                            break
                        if event.cancelled:
                            self._ncancelled -= 1
                            continue
                        fn = event.fn
                        arg = event.arg
                        event.fn = None
                        event.arg = None
                        if event.pooled:
                            if len(pool) < _POOL_MAX:
                                pool.append(event)
                        else:
                            event._sim = None
                        executed += 1
                        if arg is _NO_ARG:
                            fn()
                        else:
                            fn(arg)
                finally:
                    self.events_executed += executed
                    if executed:
                        # ``_now`` sits at the last dispatched event here:
                        # the horizon clamp below is what must not leak
                        # into the barrier-invariant clock.
                        self.last_event_time = self._now
                if until > self._now:
                    self._now = until
                return self._now
            count = 0
            tracer = self.tracer
            auditor = self.audit
            while True:
                nxt = self.peek()
                if nxt is None:
                    # Queue drained before the horizon: the clock still
                    # advances to ``until`` (never backwards), so callers
                    # can rely on ``run(until=T)`` leaving ``now == T``.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and nxt > until:
                    if until > self._now:
                        self._now = until
                    break
                self.step()
                if tracer is not None:
                    tracer.engine_tick(self._now)
                if auditor is not None:
                    auditor.engine_event(self._now)
                count += 1
                if max_events is not None and count >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now}"
                    )
        finally:
            self._running = False
        return self._now

    def drained(self) -> bool:
        """True when no runnable events remain."""
        return self.peek() is None

    def queue_depth(self) -> int:
        """Pending (non-cancelled) events across both lanes."""
        return len(self._queue) + len(self._fast) - self._ncancelled
