"""Discrete-event simulation core.

The simulator maintains a priority queue of ``(time, sequence, callback)``
entries.  Time is measured in core clock cycles (integers by convention,
though floats are accepted).  Ties are broken by a monotonically increasing
sequence number so that runs are fully deterministic.

This engine is deliberately tiny: components interact by scheduling plain
callbacks or by running generator-based :class:`~repro.engine.process.Process`
objects on top of it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled
    before they fire.  Cancelled events stay in the heap but are skipped.
    """

    __slots__ = ("time", "fn", "cancelled")

    def __init__(self, time: float, fn: Callable[[], None]) -> None:
        self.time = time
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, {state}, fn={self.fn!r})"


class Simulator:
    """The event loop.

    A single :class:`Simulator` instance drives one machine model.  All
    model components hold a reference to it and use :meth:`schedule` /
    :meth:`schedule_at` to advance state.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._now: float = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, fn)
        heapq.heappush(self._queue, (time, self._seq, event))
        self._seq += 1
        return event

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            time, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = time
            event.fn()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains (or a limit is hit).

        ``until`` stops the loop once simulated time would exceed it; the
        clock is then advanced to ``until``.  ``max_events`` guards against
        runaway models.  Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        count = 0
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self._now = until
                    break
                self.step()
                count += 1
                if max_events is not None and count >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now}"
                    )
        finally:
            self._running = False
        return self._now

    def drained(self) -> bool:
        """True when no runnable events remain."""
        return self.peek() is None
