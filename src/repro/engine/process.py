"""Generator-based processes on top of the event loop.

A *process* is a Python generator that yields one of:

* a number -- sleep that many cycles;
* a :class:`Future` -- suspend until the future resolves; the future's
  value is sent back into the generator;
* a list/tuple of futures -- suspend until *all* resolve (a join).

Processes are how tile cores, DMA engines and host programs are written.
Each process owns a :class:`Future` (``process.done``) that resolves with
the generator's return value, enabling fork/join composition.

Hot-path note: every resume travels through the simulator's internal
``_post`` lane with a *prebound* ``_advance`` method and the resume value
as the event argument, so steady-state process scheduling allocates no
closures and no :class:`~repro.engine.event.Event` objects.  An already-
resolved future short-circuits straight to the queue without touching the
callback list.  Ordering is identical to the classic path: resumption
always takes one delay-0 hop through the queue, keeping wake-up order
deterministic when many processes block on the same future.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List

from .event import Simulator, SimulationError


class Future:
    """A single-assignment value that callbacks/processes can wait on."""

    __slots__ = ("sim", "_done", "_value", "_callbacks")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve the future now; fires callbacks at the current time."""
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for fn in callbacks:
                fn(value)

    def resolve_at(self, time: float, value: Any = None) -> None:
        """Resolve the future at absolute simulation time ``time``."""
        self.sim._post(time, self.resolve, value)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Run ``fn(value)`` on resolution (immediately if already done)."""
        if self._done:
            fn(self._value)
        else:
            self._callbacks.append(fn)


def join(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future that resolves with a list of values once all inputs resolve."""
    futures = list(futures)
    out = Future(sim)
    if not futures:
        out.resolve([])
        return out
    remaining = [len(futures)]
    values: List[Any] = [None] * len(futures)

    def make_cb(i: int) -> Callable[[Any], None]:
        def cb(value: Any) -> None:
            values[i] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                out.resolve(values)

        return cb

    for i, fut in enumerate(futures):
        fut.add_callback(make_cb(i))
    return out


class Process:
    """Drives a generator against the simulator clock."""

    __slots__ = ("sim", "gen", "done", "name", "_step", "_wake")

    def __init__(
        self,
        sim: Simulator,
        gen: Generator[Any, Any, Any],
        name: str = "proc",
        start_delay: float = 0,
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.done = Future(sim)
        self.name = name
        if start_delay < 0:
            raise SimulationError(
                f"cannot schedule in the past (delay={start_delay})"
            )
        # Bind once; every subsequent resume reuses these two callables.
        self._step = self._advance
        self._wake = self._resume_soon
        sim._post(sim._now + start_delay, self._step, None)
        tracer = sim.tracer
        if tracer is not None:
            tracer.process_started(self, sim._now)

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.done.resolve(stop.value)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.process_finished(self, self.sim._now)
            return
        sim = self.sim
        # Exact-class dispatch first: yields are overwhelmingly plain
        # ints/floats (sleeps) and Futures, so two identity checks beat
        # the isinstance chain; subclasses fall through to the old path.
        cls = yielded.__class__
        if cls is int or cls is float:
            if not yielded >= 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative or NaN "
                    f"delay {yielded}"
                )
            sim._post(sim._now + yielded, self._step, None)
        elif cls is Future:
            if yielded._done:
                # Fast lane: no callback registration, straight to the queue.
                sim._post(sim._now, self._step, yielded._value)
            else:
                yielded._callbacks.append(self._wake)
        elif isinstance(yielded, (int, float)):
            if not yielded >= 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative or NaN "
                    f"delay {yielded}"
                )
            sim._post(sim._now + yielded, self._step, None)
        elif isinstance(yielded, Future):
            if yielded._done:
                sim._post(sim._now, self._step, yielded._value)
            else:
                yielded._callbacks.append(self._wake)
        elif isinstance(yielded, (list, tuple)):
            join(sim, yielded).add_callback(self._wake)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}"
            )

    def _resume_soon(self, value: Any) -> None:
        # Resume through the event queue so resolution order stays
        # deterministic even when many processes wake on the same future.
        sim = self.sim
        sim._post(sim._now, self._step, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done.done else "running"
        return f"Process({self.name!r}, {state})"


def spawn(
    sim: Simulator,
    gen: Generator[Any, Any, Any],
    name: str = "proc",
    start_delay: float = 0,
) -> Process:
    """Convenience wrapper to start a process."""
    return Process(sim, gen, name=name, start_delay=start_delay)
