"""Generator-based processes on top of the event loop.

A *process* is a Python generator that yields one of:

* a number -- sleep that many cycles;
* a :class:`Future` -- suspend until the future resolves; the future's
  value is sent back into the generator;
* a list/tuple of futures -- suspend until *all* resolve (a join).

Processes are how tile cores, DMA engines and host programs are written.
Each process owns a :class:`Future` (``process.done``) that resolves with
the generator's return value, enabling fork/join composition.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from .event import Simulator, SimulationError


class Future:
    """A single-assignment value that callbacks/processes can wait on."""

    __slots__ = ("sim", "_done", "_value", "_callbacks")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve the future now; fires callbacks at the current time."""
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)

    def resolve_at(self, time: float, value: Any = None) -> None:
        """Resolve the future at absolute simulation time ``time``."""
        self.sim.schedule_at(time, lambda: self.resolve(value))

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Run ``fn(value)`` on resolution (immediately if already done)."""
        if self._done:
            fn(self._value)
        else:
            self._callbacks.append(fn)


def join(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future that resolves with a list of values once all inputs resolve."""
    futures = list(futures)
    out = Future(sim)
    if not futures:
        out.resolve([])
        return out
    remaining = [len(futures)]
    values: List[Any] = [None] * len(futures)

    def make_cb(i: int) -> Callable[[Any], None]:
        def cb(value: Any) -> None:
            values[i] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                out.resolve(values)

        return cb

    for i, fut in enumerate(futures):
        fut.add_callback(make_cb(i))
    return out


class Process:
    """Drives a generator against the simulator clock."""

    __slots__ = ("sim", "gen", "done", "name")

    def __init__(
        self,
        sim: Simulator,
        gen: Generator[Any, Any, Any],
        name: str = "proc",
        start_delay: float = 0,
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.done = Future(sim)
        self.name = name
        sim.schedule(start_delay, lambda: self._advance(None))

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.done.resolve(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.sim.schedule(yielded, lambda: self._advance(None))
        elif isinstance(yielded, Future):
            yielded.add_callback(self._resume_soon)
        elif isinstance(yielded, (list, tuple)):
            join(self.sim, yielded).add_callback(self._resume_soon)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}"
            )

    def _resume_soon(self, value: Any) -> None:
        # Resume through the event queue so resolution order stays
        # deterministic even when many processes wake on the same future.
        self.sim.schedule(0, lambda: self._advance(value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done.done else "running"
        return f"Process({self.name!r}, {state})"


def spawn(
    sim: Simulator,
    gen: Generator[Any, Any, Any],
    name: str = "proc",
    start_delay: float = 0,
) -> Process:
    """Convenience wrapper to start a process."""
    return Process(sim, gen, name=name, start_delay=start_delay)
