"""Statistics primitives shared by all model components.

Everything the harness reports (utilization breakdowns, time series,
speedups) is accumulated through these classes so that experiments never
have to reach into component internals.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple


class Counter:
    """A named bag of additive counters."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1) -> None:
        self._values[name] += amount

    @property
    def raw(self) -> Dict[str, float]:
        """The backing (default)dict, for hot loops that inline ``add``.

        ``counter.raw[name] += amount`` is a C-level dict update; binding
        ``raw`` once outside a loop removes a Python call per increment.
        """
        return self._values

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)

    def fractions(self) -> Dict[str, float]:
        """Each counter as a fraction of the total (empty dict if zero)."""
        tot = self.total()
        if tot == 0:
            return {}
        return {k: v / tot for k, v in self._values.items()}

    def merge(self, other: "Counter") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counter({inner})"


class BinnedSeries:
    """Accumulates a quantity into fixed-width time bins.

    Used for link-utilization-over-time plots (Fig 3, Fig 14): each busy
    cycle on a link adds 1 into the bin covering that cycle.
    """

    def __init__(self, bin_width: float) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self._bins: Dict[int, float] = defaultdict(float)

    def add(self, time: float, amount: float = 1) -> None:
        self._bins[int(time // self.bin_width)] += amount

    def add_range(self, start: float, end: float) -> None:
        """Add one unit per cycle over [start, end), split across bins."""
        if end <= start:
            return
        first = int(start // self.bin_width)
        last = int(end // self.bin_width)
        if last * self.bin_width == end:
            last -= 1  # exclusive end sitting exactly on a bin boundary
        if last <= first:
            self._bins[first] += end - start
            return
        self._bins[first] += (first + 1) * self.bin_width - start
        for b in range(first + 1, last):
            self._bins[b] += self.bin_width
        self._bins[last] += end - last * self.bin_width

    def series(self) -> List[Tuple[float, float]]:
        """Sorted ``(bin_start_time, amount)`` pairs, gaps filled with zero."""
        if not self._bins:
            return []
        lo = min(self._bins)
        hi = max(self._bins)
        return [
            (b * self.bin_width, self._bins.get(b, 0.0)) for b in range(lo, hi + 1)
        ]

    def normalized(self, capacity_per_bin: float) -> List[Tuple[float, float]]:
        """Series scaled to a utilization fraction of ``capacity_per_bin``."""
        if capacity_per_bin <= 0:
            raise ValueError("capacity_per_bin must be positive")
        return [(t, v / capacity_per_bin) for t, v in self.series()]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


class Interval:
    """Tracks occupancy of a single server (cache bank port, DRAM bus).

    ``reserve`` returns the granted start time given an earliest-possible
    start, extending the busy horizon; ``busy_cycles`` accumulates total
    occupancy for utilization reports.
    """

    __slots__ = ("free_at", "busy_cycles")

    def __init__(self) -> None:
        self.free_at: float = 0
        self.busy_cycles: float = 0

    def reserve(self, earliest: float, duration: float) -> float:
        free_at = self.free_at
        start = free_at if free_at > earliest else earliest
        self.free_at = start + duration
        self.busy_cycles += duration
        return start

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)
