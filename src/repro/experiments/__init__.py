"""Experiment harnesses: one module per paper figure/table.

Each module exposes ``run(...) -> dict`` (structured results) and a
``main()`` that prints the reproduced figure as text.  Run directly::

    python -m repro.experiments.fig10_incremental
"""

from . import (
    ablations,
    chip_scale,
    common,
    fig03_bisection_transfer,
    fig04_barrier,
    fig10_incremental,
    fig11_utilization,
    fig12_tilegroups,
    fig13_energy,
    fig14_noc_bisection,
    fig15_doubling,
    fig16_vs_hierarchical,
    tables,
)

__all__ = [
    "ablations",
    "chip_scale",
    "common",
    "fig03_bisection_transfer",
    "fig04_barrier",
    "fig10_incremental",
    "fig11_utilization",
    "fig12_tilegroups",
    "fig13_energy",
    "fig14_noc_bisection",
    "fig15_doubling",
    "fig16_vs_hierarchical",
    "tables",
]
