"""Experiment harnesses: one module per paper figure/table.

Each module exposes the orchestrator triplet -- ``jobs(size=...)``
(declarative :class:`repro.orch.Job` specs), a pure ``reduce(payloads)``
and ``render(out)`` -- plus ``run(...) -> dict`` (reduce over a serial
in-process execution) and ``main(size=None)`` that prints the reproduced
figure as text.  Run directly::

    python -m repro.experiments.fig10_incremental

or through the worker pool / result cache::

    repro sweep fig10 --jobs 4 --size small
"""

from . import (
    ablations,
    chip_scale,
    common,
    fig03_bisection_transfer,
    fig04_barrier,
    fig10_incremental,
    fig11_utilization,
    fig12_tilegroups,
    fig13_energy,
    fig14_noc_bisection,
    fig15_doubling,
    fig16_vs_hierarchical,
    pim_offload,
    tables,
)

#: Sweepable harnesses by CLI name: every module with the
#: jobs()/reduce()/render() triplet, in ``repro all`` order.
HARNESSES = {
    "tables": tables,
    "fig3": fig03_bisection_transfer,
    "fig4": fig04_barrier,
    "fig10": fig10_incremental,
    "fig11": fig11_utilization,
    "fig12": fig12_tilegroups,
    "fig13": fig13_energy,
    "fig14": fig14_noc_bisection,
    "fig15": fig15_doubling,
    "fig16": fig16_vs_hierarchical,
    "ablations": ablations,
    "chip": chip_scale,
}

__all__ = [
    "HARNESSES",
    "ablations",
    "chip_scale",
    "common",
    "fig03_bisection_transfer",
    "fig04_barrier",
    "fig10_incremental",
    "fig11_utilization",
    "fig12_tilegroups",
    "fig13_energy",
    "fig14_noc_bisection",
    "fig15_doubling",
    "fig16_vs_hierarchical",
    "pim_offload",
    "tables",
]
