"""Ablations of the model's key design parameters.

Beyond the paper's own feature ladder (Fig 10), these sweeps probe the
quantitative choices the architecture leans on:

* **scoreboard depth** -- the 63-entry remote-request scoreboard is HB's
  cheap MLP substitute; sweeping it shows how much outstanding-request
  capacity memory-bound kernels actually use;
* **MSHR entries** -- the consolidated LLC miss capacity;
* **ruche factor** -- hop distance of the long-range links (3 in HB);
* **cache capacity** -- the per-bank set count.

Each sweep point is one :class:`repro.orch.Job` (key
``"<sweep>/<point>"``), so ``repro sweep ablations`` runs the whole
grid through the worker pool; the ``sweep_*`` functions remain the
direct single-sweep API.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..arch.config import HB_16x8
from ..session import run as run_kernel

#: Fig-12-style multi-task SpGEMM input (the miss-heavy workload the
#: mshr/cache_sets sweeps need).  Deliberately size-independent: a
#: smaller working set would stop exercising capacity, and the sweeps'
#: claims (capacity matters, MSHRs matter) must hold in tiny smoke runs
#: too.
_SPGEMM_TASKS = 8
_SPGEMM_SCALE = 0.15

_SEP = "/"


def spgemm_point_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: the multi-task SpGEMM stress point."""
    from ..kernels import spgemm

    args = spgemm.make_args(tasks=params["tasks"], scale=params["scale"])
    result = run_kernel(config, spgemm.KERNEL, args,
                        group_shape=tuple(params["group_shape"]))
    return result.to_dict()


def _suite_point(sweep: str, label: object, config, kernel: str,
                 size: str) -> Any:
    from ..arch.serialize import to_dict
    from ..orch import Job

    return Job("ablations", f"{sweep}{_SEP}{label}",
               "repro.experiments.common:suite_job",
               params={"kernel": kernel, "size": size},
               config=to_dict(config))


def _spgemm_point(sweep: str, label: object, config) -> Any:
    from ..arch.serialize import to_dict
    from ..orch import Job

    return Job("ablations", f"{sweep}{_SEP}{label}",
               "repro.experiments.ablations:spgemm_point_job",
               params={"tasks": _SPGEMM_TASKS, "scale": _SPGEMM_SCALE,
                       "group_shape": [4, 4]},
               config=to_dict(config))


def _scoreboard_jobs(depths: Sequence[int], kernel_name: str,
                     size: str) -> List[Any]:
    """More outstanding requests -> more MLP, until bandwidth saturates."""
    out = []
    for depth in depths:
        cfg = HB_16x8.with_timings(core={"scoreboard_entries": depth})
        out.append(_suite_point("scoreboard", depth, cfg, kernel_name, size))
    return out


def _mshr_jobs(entries: Sequence[int]) -> List[Any]:
    """Measured on the miss-heavy Fig 12 workload with a small cache
    (2 sets) so the consolidated MSHR file is actually exercised; at
    full capacity the default workloads hit too often to stress it."""
    out = []
    for n in entries:
        out.append(_spgemm_point(
            "mshr", n, HB_16x8.with_cache(sets=2, mshr_entries=n)))
    return out


def _ruche_jobs(factors: Sequence[int], kernel_name: str,
                size: str) -> List[Any]:
    """0 disables the long links (plain mesh); HB ships factor 3."""
    out = []
    for factor in factors:
        if factor == 0:
            cfg = HB_16x8.with_features(ruche_network=False)
        else:
            cfg = HB_16x8.with_timings(noc={"ruche_factor": factor})
        out.append(_suite_point("ruche_factor", factor, cfg, kernel_name,
                                size))
    return out


def _cache_sets_jobs(sets: Sequence[int]) -> List[Any]:
    """Uses the Fig 12 multi-task SpGEMM (8 private activation matrices)
    whose resident working set actually exercises capacity."""
    out = []
    for n in sets:
        out.append(_spgemm_point("cache_sets", n,
                                 HB_16x8.with_cache(sets=n)))
    return out


#: sweep name -> (jobs factory at default points, row-label field).
_SWEEP_FACTORIES = {
    "scoreboard": lambda size: _scoreboard_jobs((1, 4, 16, 63), "PR", size),
    "mshr": lambda size: _mshr_jobs((1, 4, 16, 32)),
    "ruche_factor": lambda size: _ruche_jobs((0, 2, 3, 4), "FFT", size),
    "cache_sets": lambda size: _cache_sets_jobs((2, 4, 16, 64)),
}

_POINT_FIELD = {
    "scoreboard": "scoreboard",
    "mshr": "mshr_entries",
    "ruche_factor": "ruche_factor",
    "cache_sets": "sets",
}


def jobs(size: str = "small",
         which: Optional[Sequence[str]] = None) -> List[Any]:
    names = list(which) if which else list(_SWEEP_FACTORIES)
    out: List[Any] = []
    for name in names:
        out.extend(_SWEEP_FACTORIES[name](size))
    return out


def _with_speedups(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    base = rows[0]["cycles"]
    for row in rows:
        row["speedup"] = base / row["cycles"]
    return rows


def _rows_for(sweep: str, payloads: Mapping[str, Dict[str, Any]]
              ) -> List[Dict[str, Any]]:
    rows = []
    for key, payload in payloads.items():
        name, _, label = key.partition(_SEP)
        if name != sweep:
            continue
        row: Dict[str, Any] = {_POINT_FIELD[sweep]: int(label)}
        if sweep == "cache_sets":
            row["cell_cache_kb"] = (HB_16x8.cell.num_banks * int(label)
                                    * HB_16x8.timings.cache.ways
                                    * HB_16x8.timings.cache.block_bytes
                                    ) // 1024
        row["cycles"] = payload["cycles"]
        rows.append(row)
    return _with_speedups(rows)


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    sweeps = []
    for key in payloads:
        name = key.partition(_SEP)[0]
        if name not in sweeps:
            sweeps.append(name)
    return {name: _rows_for(name, payloads) for name in sweeps}


def _run_points(jobs_list: List[Any], sweep: str) -> List[Dict[str, Any]]:
    from ..orch import execute_serial

    return _rows_for(sweep, execute_serial(jobs_list))


def sweep_scoreboard(depths: Sequence[int] = (1, 4, 16, 63),
                     kernel_name: str = "PR",
                     size: str = "small") -> List[Dict[str, Any]]:
    return _run_points(_scoreboard_jobs(depths, kernel_name, size),
                       "scoreboard")


def sweep_mshr(entries: Sequence[int] = (1, 4, 16, 32),
               size: str = "small") -> List[Dict[str, Any]]:
    del size  # the stress workload is size-independent (see _SPGEMM_SCALE)
    return _run_points(_mshr_jobs(entries), "mshr")


def sweep_ruche_factor(factors: Sequence[int] = (0, 2, 3, 4),
                       kernel_name: str = "FFT",
                       size: str = "small") -> List[Dict[str, Any]]:
    return _run_points(_ruche_jobs(factors, kernel_name, size),
                       "ruche_factor")


def sweep_cache_sets(sets: Sequence[int] = (2, 4, 16, 64),
                     size: str = "small") -> List[Dict[str, Any]]:
    del size  # the stress workload is size-independent (see _SPGEMM_SCALE)
    return _run_points(_cache_sets_jobs(sets), "cache_sets")


def run(size: str = "small",
        which: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size, which=which)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    for name, rows in out.items():
        print(f"\n== ablation: {name} ==")
        headers = list(rows[0].keys())
        print(format_table(headers, [[r[h] for h in headers] for r in rows]))


def main(size=None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":
    main()
