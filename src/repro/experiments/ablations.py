"""Ablations of the model's key design parameters.

Beyond the paper's own feature ladder (Fig 10), these sweeps probe the
quantitative choices the architecture leans on:

* **scoreboard depth** -- the 63-entry remote-request scoreboard is HB's
  cheap MLP substitute; sweeping it shows how much outstanding-request
  capacity memory-bound kernels actually use;
* **MSHR entries** -- the consolidated LLC miss capacity;
* **ruche factor** -- hop distance of the long-range links (3 in HB);
* **cache capacity** -- the per-bank set count.

Each sweep runs one representative kernel and reports cycles per point.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from ..arch.config import HB_16x8, MachineConfig
from ..kernels import registry
from ..runtime.host import run_on_cell
from .common import suite_args


def _run(config: MachineConfig, kernel_name: str, size: str) -> float:
    bench = registry.SUITE[kernel_name]
    return run_on_cell(config, bench.kernel,
                       suite_args(kernel_name, size)).cycles


def _with_speedups(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    base = rows[0]["cycles"]
    for row in rows:
        row["speedup"] = base / row["cycles"]
    return rows


def sweep_scoreboard(depths: Sequence[int] = (1, 4, 16, 63),
                     kernel_name: str = "PR",
                     size: str = "small") -> List[Dict[str, Any]]:
    """More outstanding requests -> more MLP, until bandwidth saturates."""
    rows = []
    for depth in depths:
        core = replace(HB_16x8.timings.core, scoreboard_entries=depth)
        cfg = replace(HB_16x8,
                      timings=replace(HB_16x8.timings, core=core))
        rows.append({"scoreboard": depth,
                     "cycles": _run(cfg, kernel_name, size)})
    return _with_speedups(rows)


def sweep_mshr(entries: Sequence[int] = (1, 4, 16, 32),
               size: str = "small") -> List[Dict[str, Any]]:
    """Measured on the miss-heavy Fig 12 workload with a small cache
    (2 sets) so the consolidated MSHR file is actually exercised; at
    full capacity the default workloads hit too often to stress it."""
    from ..kernels import spgemm

    rows = []
    for n in entries:
        cache = replace(HB_16x8.timings.cache, sets=2, mshr_entries=n)
        args = spgemm.make_args(tasks=8, scale=0.15)
        result = run_on_cell(HB_16x8.with_cache(cache), spgemm.KERNEL,
                             args, group_shape=(4, 4))
        rows.append({"mshr_entries": n, "cycles": result.cycles})
    return _with_speedups(rows)


def sweep_ruche_factor(factors: Sequence[int] = (0, 2, 3, 4),
                       kernel_name: str = "FFT",
                       size: str = "small") -> List[Dict[str, Any]]:
    """0 disables the long links (plain mesh); HB ships factor 3."""
    rows = []
    for factor in factors:
        if factor == 0:
            cfg = HB_16x8.with_features(
                replace(HB_16x8.features, ruche_network=False))
        else:
            noc = replace(HB_16x8.timings.noc, ruche_factor=factor)
            cfg = replace(HB_16x8,
                          timings=replace(HB_16x8.timings, noc=noc))
        rows.append({"ruche_factor": factor,
                     "cycles": _run(cfg, kernel_name, size)})
    return _with_speedups(rows)


def sweep_cache_sets(sets: Sequence[int] = (2, 4, 16, 64),
                     size: str = "small") -> List[Dict[str, Any]]:
    """Uses the Fig 12 multi-task SpGEMM (8 private activation matrices)
    whose resident working set actually exercises capacity."""
    from ..kernels import spgemm

    rows = []
    for n in sets:
        cache = replace(HB_16x8.timings.cache, sets=n)
        args = spgemm.make_args(tasks=8, scale=0.15)
        result = run_on_cell(HB_16x8.with_cache(cache), spgemm.KERNEL,
                             args, group_shape=(4, 4))
        capacity_kb = (HB_16x8.cell.num_banks * n
                       * HB_16x8.timings.cache.ways
                       * HB_16x8.timings.cache.block_bytes) // 1024
        rows.append({"sets": n, "cell_cache_kb": capacity_kb,
                     "cycles": result.cycles})
    return _with_speedups(rows)


def run(size: str = "small",
        which: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    sweeps = {
        "scoreboard": lambda: sweep_scoreboard(size=size),
        "mshr": lambda: sweep_mshr(size=size),
        "ruche_factor": lambda: sweep_ruche_factor(size=size),
        "cache_sets": lambda: sweep_cache_sets(size=size),
    }
    names = list(which) if which else list(sweeps)
    return {name: sweeps[name]() for name in names}


def main() -> None:
    from ..perf.report import format_table

    out = run()
    for name, rows in out.items():
        print(f"\n== ablation: {name} ==")
        headers = list(rows[0].keys())
        print(format_table(headers, [[r[h] for h in headers] for r in rows]))


if __name__ == "__main__":
    main()
