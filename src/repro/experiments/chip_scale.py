"""Chip-scale projection: from one simulated Cell to the 2048-core chip.

The paper itself models multi-Cell executions as "multiple single-Cell
simulations running in parallel and conservatively estimated data
transfer time between program phases based on data transfer size and
network bandwidth" (Section V-A).  This module packages that method:

* :func:`peak_instruction_rate` -- the headline "2.8 Tera RISC-V
  instructions/s" arithmetic for the 2048-core ASIC, and the 100K-core
  projection of Fig 2;
* :func:`project_chip` -- scale a measured single-Cell run to a
  ``cells_x x cells_y`` chip with per-phase inter-Cell exchanges priced
  on the word network vs. the hierarchical wide-channel alternative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..arch.config import HB_16x8, MachineConfig
from ..arch.params import CORE_FREQ_GHZ
from ..baselines.hierarchical import WideChannelModel, WordChannelModel
from ..energy.area import TILE_AREA_3NM_UM2, cores_on_die
from ..kernels import registry
from ..runtime.result import RunResult
from ..session import run as run_kernel
from .common import suite_args


def peak_instruction_rate(cores: int = 2048,
                          freq_ghz: float = CORE_FREQ_GHZ) -> float:
    """Peak instructions/second: single-issue cores x frequency.

    2048 x 1.35 GHz = 2.76e12, the paper's "2.8 Tera RISC-V
    instructions/s" (rounded).
    """
    if cores <= 0 or freq_ghz <= 0:
        raise ValueError("cores and frequency must be positive")
    return cores * freq_ghz * 1e9


def hundred_k_projection(die_mm2: float = 600.0) -> Dict[str, float]:
    """Fig 2's right-hand claim: 100K+ cores on a 600 mm^2 die at 3 nm."""
    cores = cores_on_die(die_mm2)
    return {
        "die_mm2": die_mm2,
        "tile_um2": TILE_AREA_3NM_UM2,
        "cores": cores,
        "peak_tera_ops": peak_instruction_rate(cores) / 1e12,
    }


@dataclass
class ChipProjection:
    """One kernel projected onto a multi-Cell chip."""

    kernel: str
    cells: int
    cell_cycles: float
    transfer_cycles: float
    total_cycles: float
    aggregate_instructions: float

    @property
    def instructions_per_cycle(self) -> float:
        return self.aggregate_instructions / self.total_cycles

    @property
    def transfer_fraction(self) -> float:
        return self.transfer_cycles / self.total_cycles


def project_chip(kernel_name: str, cells_x: int = 8, cells_y: int = 8,
                 size: str = "small",
                 exchange_bytes_per_cell: Optional[int] = None,
                 phases: int = 1,
                 config: MachineConfig = HB_16x8,
                 result: Optional[RunResult] = None) -> ChipProjection:
    """The paper's multi-Cell methodology over one measured Cell.

    Every Cell runs the kernel on its partition (one measured single-Cell
    simulation stands for all of them); between phases each Cell
    exchanges ``exchange_bytes_per_cell`` of partial results with its
    neighbours over the inter-Cell word network.
    """
    if result is None:
        bench = registry.SUITE[kernel_name]
        result = run_kernel(config, bench.kernel,
                            suite_args(kernel_name, size))
    return _project(kernel_name, result.cycles, result.instructions,
                    cells_x, cells_y, exchange_bytes_per_cell, phases,
                    config)


def _project(kernel_name: str, cell_cycles: float, instructions: float,
             cells_x: int, cells_y: int,
             exchange_bytes_per_cell: Optional[int], phases: int,
             config: MachineConfig) -> ChipProjection:
    """The projection arithmetic over one measured Cell's numbers."""
    cells = cells_x * cells_y
    if exchange_bytes_per_cell is None:
        # Default: each Cell shares ~1/8 of its cache footprint per phase.
        exchange_bytes_per_cell = config.cell_cache_bytes // 8
    # Word-network exchange across the Cell boundary: 4 channels per tile
    # row per direction (1 mesh + 3 ruche), measured at ~85% utilization
    # in the Fig 3 experiment.
    channel = WordChannelModel(links=4 * config.cell.tiles_y,
                               utilization=0.85)
    per_phase = channel.transfer(exchange_bytes_per_cell).cycles
    transfer = per_phase * phases
    total = cell_cycles + transfer
    return ChipProjection(
        kernel=kernel_name,
        cells=cells,
        cell_cycles=cell_cycles,
        transfer_cycles=transfer,
        total_cycles=total,
        aggregate_instructions=instructions * cells,
    )


def simulate_chip(kernel_name: str, cells_x: int = 2, cells_y: int = 1,
                  size: str = "tiny",
                  exchange_bytes_per_cell: Optional[int] = None,
                  config: MachineConfig = HB_16x8,
                  workers: int = 1,
                  window: Optional[float] = None) -> Dict[str, Any]:
    """Ground truth for :func:`project_chip`: actually simulate the grid.

    Every Cell of a ``cells_x x cells_y`` chip runs its own instance of
    the suite kernel under the conservative-window PDES -- the "multiple
    single-Cell simulations running in parallel" half of the paper's
    Section V-A methodology, made literal.  The suite kernels are
    Cell-local by design, so the truly simulated multi-Cell time must
    equal the single-Cell time and the projection's analytic transfer
    term is pure conservative margin: ``bound_holds`` asserts
    ``project_chip(...) >= simulate_chip(...)``.  (Workloads that cross
    the seam live in :mod:`repro.pdes.fixture`; a Cell's tiles can only
    run one kernel at a time, so boundary traffic is validated there,
    not by co-launching it under the suite kernel.)
    """
    from ..pdes import LaunchSpec, run_cells

    multi = config.with_geometry(cells_x=cells_x, cells_y=cells_y)
    launches = [LaunchSpec(cell=xy, kernel=kernel_name,
                           args=suite_args(kernel_name, size),
                           remote=False)
                for xy in multi.chip.cells()]
    sim = run_cells(multi, launches, workers=workers, window=window)
    # Seed the projection from a run of the same size tier so the two
    # sides share their single-Cell baseline.
    bench = registry.SUITE[kernel_name]
    single = run_kernel(config, bench.kernel, suite_args(kernel_name, size))
    projection = _project(kernel_name, single.cycles, single.instructions,
                          cells_x, cells_y, exchange_bytes_per_cell, 1,
                          config)
    simulated = sim.max_cycles
    return {
        "kernel": kernel_name,
        "size": size,
        "cells": [cells_x, cells_y],
        "workers": sim.workers,
        "simulated_cycles": simulated,
        "per_cell_cycles": sim.cycles,
        "messages": sim.messages,
        "rounds": sim.rounds,
        "single_cell_cycles": single.cycles,
        "projected_cycles": projection.total_cycles,
        "projected_transfer_cycles": projection.transfer_cycles,
        "bound_holds": projection.total_cycles >= simulated,
        "projection_slack": projection.total_cycles - simulated,
    }


def compare_transfer_models(exchange_bytes: int = 1 << 20,
                            sparse: bool = True) -> Dict[str, Any]:
    """Inter-Cell exchange: HB word network vs hierarchical channels."""
    word = WordChannelModel(links=4 * HB_16x8.cell.tiles_y,
                            utilization=0.85).transfer(exchange_bytes)
    wide = WideChannelModel().transfer(exchange_bytes, sparse=sparse)
    return {
        "bytes": exchange_bytes,
        "sparse": sparse,
        "hb_cycles": word.cycles,
        "hierarchical_cycles": wide.cycles,
        "hb_advantage": wide.cycles / word.cycles,
    }


#: Kernels whose measured single-Cell runs seed the chip projection.
PROJECTED = ("SGEMM", "PR", "BFS")


def jobs(size: str = "small") -> List[Any]:
    from .common import suite_jobs

    return suite_jobs("chip_scale", HB_16x8, size=size, kernels=PROJECTED)


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    projections = []
    for name in payloads:
        payload = payloads[name]
        p = _project(name, payload["cycles"], payload["instructions"],
                     8, 8, None, 1, HB_16x8)
        projections.append({
            "kernel": p.kernel,
            "cells": p.cells,
            "cell_cycles": p.cell_cycles,
            "transfer_cycles": p.transfer_cycles,
            "total_cycles": p.total_cycles,
            "chip_ipc": p.instructions_per_cycle,
            "transfer_fraction": p.transfer_fraction,
        })
    return {
        "peak_tera_ops": peak_instruction_rate() / 1e12,
        "hundred_k": hundred_k_projection(),
        "projections": projections,
        "transfer_models": compare_transfer_models(),
    }


def run(size: str = "small") -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    print("== chip-scale projections ==")
    print(f"2048-core ASIC peak: {out['peak_tera_ops']:.2f} Tera inst/s "
          "(paper: 2.8)")
    prj100k = out["hundred_k"]
    print(f"3 nm projection: {prj100k['cores']:,} cores on "
          f"{prj100k['die_mm2']:.0f} mm^2 "
          f"({prj100k['peak_tera_ops']:.0f} Tera inst/s peak)")
    rows = [[p["kernel"], p["cells"], p["cell_cycles"],
             p["transfer_cycles"], p["chip_ipc"], p["transfer_fraction"]]
            for p in out["projections"]]
    print(format_table(
        ["kernel", "cells", "cell cycles", "xfer cycles", "chip IPC",
         "xfer frac"], rows))
    cmp = out["transfer_models"]
    print(f"\n1 MiB sparse exchange: HB {cmp['hb_cycles']:.0f} cycles vs "
          f"hierarchical {cmp['hierarchical_cycles']:.0f} "
          f"({cmp['hb_advantage']:.1f}x)")


def main(size=None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":
    main()
