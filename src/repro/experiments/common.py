"""Shared plumbing for the per-figure experiment harnesses.

Every harness takes a ``size`` knob:

* ``"tiny"``  -- seconds-scale runs for unit tests (small machines);
* ``"small"`` -- the benchmark default: full 16x8 Cells, reduced inputs;
* ``"full"``  -- the per-kernel default input sizes.

Sizes change absolute cycle counts, not the comparative shapes the paper
reports (who wins, by roughly what factor) -- which is what EXPERIMENTS.md
records against the paper's numbers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from ..engine.stats import geomean
from ..kernels import registry
from ..kernels import (
    aes,
    barneshut,
    bfs,
    blackscholes,
    fft,
    jacobi,
    pagerank,
    sgemm,
    smithwaterman,
    spgemm,
)
from ..runtime.result import RunResult
from ..session import run

SIZES = ("tiny", "small", "full")


def suite_args(name: str, size: str = "small", **overrides: Any) -> Dict[str, Any]:
    """Fresh launch args for a suite kernel at the requested size.

    Args must be rebuilt per run: kernels with functional shared state
    (BFS) mutate them.
    """
    if size not in SIZES:
        raise ValueError(f"size must be one of {SIZES}")
    if name not in registry.SUITE:
        raise ValueError(
            f"unknown suite kernel {name!r}; one of {sorted(registry.SUITE)}")
    if size == "tiny":
        return registry.fast_args(name)
    small: Dict[str, Callable[[], Dict[str, Any]]] = {
        "AES": lambda: aes.make_args(blocks_per_tile=6, **overrides),
        "BS": lambda: blackscholes.make_args(options_per_tile=8, **overrides),
        "SW": lambda: smithwaterman.make_args(query_len=12, ref_len=16,
                                              **overrides),
        "SGEMM": lambda: sgemm.make_args(n=56, **overrides),
        "FFT": lambda: fft.make_args(n=1024, **overrides),
        "Jacobi": lambda: jacobi.make_args(z_depth=32, iters=1, **overrides),
        "SpGEMM": lambda: spgemm.make_args(scale=0.15, **overrides),
        "PR": lambda: pagerank.make_args(scale=0.12, iters=1, **overrides),
        "BFS": lambda: bfs.make_args(width=16, **overrides),
        "BH": lambda: barneshut.make_args(num_bodies=64, **overrides),
    }
    if size == "small":
        return small[name]()
    return registry.SUITE[name].make_args(**overrides)


def run_suite(config, size: str = "small",
              kernels: Optional[Iterable[str]] = None,
              group_shape: Optional[Tuple[int, int]] = None,
              **run_kwargs: Any) -> Dict[str, RunResult]:
    """Run (a subset of) the suite on one config; returns per-kernel results."""
    names = list(kernels) if kernels is not None else list(registry.SUITE)
    out: Dict[str, RunResult] = {}
    for name in names:
        bench = registry.SUITE[name]
        args = suite_args(name, size)
        out[name] = run(config, bench.kernel, args,
                        group_shape=group_shape, **run_kwargs)
    return out


def geomean_speedup(baseline: Dict[str, RunResult],
                    variant: Dict[str, RunResult]) -> float:
    """Geometric-mean speedup of a variant over a baseline, kernelwise."""
    ratios = [baseline[k].cycles / variant[k].cycles
              for k in baseline if k in variant]
    return geomean(ratios)


# ---------------------------------------------------------------------------
# Orchestrator plumbing shared by the harnesses (see repro.orch).

def suite_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: one suite kernel on one machine.

    ``params``: ``kernel`` (suite name), ``size``, optional
    ``group_shape`` ``[w, h]``.  Returns ``RunResult.to_dict()``.
    """
    name = params["kernel"]
    shape = params.get("group_shape")
    result = run(config, registry.SUITE[name].kernel,
                 suite_args(name, params.get("size", "small")),
                 group_shape=tuple(shape) if shape else None)
    return result.to_dict()


def suite_jobs(experiment: str, config, size: str = "small",
               kernels: Optional[Iterable[str]] = None,
               key_prefix: str = "",
               group_shape: Optional[Tuple[int, int]] = None) -> list:
    """Declarative :class:`repro.orch.Job` specs for a suite sweep."""
    from ..arch.serialize import to_dict
    from ..orch import Job

    names = list(kernels) if kernels is not None else list(registry.SUITE)
    config_dict = to_dict(config)
    jobs = []
    for name in names:
        params: Dict[str, Any] = {"kernel": name, "size": size}
        if group_shape is not None:
            params["group_shape"] = list(group_shape)
        jobs.append(Job(experiment, key_prefix + name,
                        "repro.experiments.common:suite_job",
                        params=params, config=config_dict))
    return jobs
