"""Fig 3: bisection-link utilization during sparse inter-Cell transfer.

Two adjacent 16x8 Cells; every tile of Cell 0 stores its share of a
sparse, randomly-addressed buffer into Cell 1's Local DRAM through Group
DRAM pointers.  The paper reports 80-90% utilization of the bisection
links for the word-oriented Cellular network, against ~3% payload
efficiency for a 1024-bit-channel hierarchical NoC moving the same data.

``orientation`` selects horizontally adjacent Cells (the vertical cut)
or vertically stacked Cells (the horizontal cut).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..arch.config import HB_16x8, MachineConfig
from ..arch.geometry import CellGeometry
from ..baselines.hierarchical import WideChannelModel
from ..isa.program import kernel
from ..kernels.base import num_tiles, range_split, tile_id
from ..perf.bisection import (
    BisectionStats,
    horizontal_cut,
    utilization_series,
    vertical_cut,
)
from ..runtime.machine import Machine


@kernel("sparse-writer")
def sparse_writer(t, args):
    """Blast random single-word stores into the adjacent Cell's DRAM."""
    total_words = args["total_words"]
    dst_cell = args["dst_cell"]
    lo, hi = range_split(total_words, num_tiles(t), tile_id(t))
    rng = np.random.default_rng(args["seed"] + tile_id(t))
    offsets = rng.integers(0, args["dst_bytes"] // 4,
                           size=hi - lo) * 4
    val = t.reg()
    yield t.alu(val)
    top = t.loop_top()
    for i, off in enumerate(offsets):
        addr = t.group_dram(dst_cell[0], dst_cell[1], int(off))
        yield t.store(addr, srcs=[val])
        yield t.branch_back(top, taken=(i < len(offsets) - 1))
    yield t.fence()
    yield t.barrier()


def run(transfer_bytes: int = 256 * 1024, orientation: str = "horizontal",
        tiles_x: int = 16, tiles_y: int = 8, ruche: bool = True,
        bin_width: float = 256.0, seed: int = 7) -> Dict[str, Any]:
    """Run the transfer and measure the inter-Cell cut."""
    if orientation not in ("horizontal", "vertical"):
        raise ValueError("orientation must be horizontal or vertical")
    cells = (2, 1) if orientation == "horizontal" else (1, 2)
    config = MachineConfig(
        name=f"fig3-{orientation}",
        cell=CellGeometry(tiles_x, tiles_y),
        cells_x=cells[0], cells_y=cells[1],
        features=HB_16x8.features if ruche else
        HB_16x8.features.__class__(ruche_network=False),
    )
    machine = Machine(config, record_bin_width=bin_width)
    cell0 = machine.cell(0, 0)
    dst_cell = (1, 0) if orientation == "horizontal" else (0, 1)
    args = {
        "total_words": transfer_bytes // 4,
        "dst_cell": dst_cell,
        "dst_bytes": transfer_bytes,
        "seed": seed,
    }
    cell0.load_kernel(sparse_writer)
    handle = cell0.launch(args)
    cycles = machine.run_to_completion([handle])

    net = machine.memsys.req_net
    if orientation == "horizontal":
        plane = tiles_x - 0.5
        stats: BisectionStats = vertical_cut(net, plane, cycles)
        series = utilization_series(net, plane)
    else:
        plane = (tiles_y + 2) - 0.5
        stats = horizontal_cut(net, plane, cycles)
        series = []  # series recording keys off vertical cuts only

    # The hierarchical comparison: the same payload over wide channels.
    wide = WideChannelModel().transfer(transfer_bytes, sparse=True)
    return {
        "cycles": cycles,
        "orientation": orientation,
        "cut_links": stats.num_links,
        "utilization": stats.utilization,
        # Fig 3's y-axis: utilization of the links carrying the transfer.
        "active_links": stats.active_links,
        "active_utilization": stats.active_utilization,
        "peak_link_utilization": stats.peak_link_utilization,
        "stall_fraction": stats.stall_fraction,
        "series": series,
        "wide_channel_efficiency": wide.efficiency,
        "wide_channel_cycles": wide.cycles,
        "payload_bytes": transfer_bytes,
    }


#: Transfer payload per --size knob (the comparative claim is
#: size-independent; tiny keeps the smoke sweep fast).
SIZE_BYTES = {"tiny": 16 * 1024, "small": 256 * 1024, "full": 1024 * 1024}


def transfer_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: one orientation of the Fig 3 transfer."""
    from ..orch import jsonable

    return jsonable(run(**params))


def jobs(size: str = "small") -> list:
    from ..orch import Job

    transfer_bytes = SIZE_BYTES.get(size, SIZE_BYTES["small"])
    return [
        Job("fig3", orientation,
            "repro.experiments.fig03_bisection_transfer:transfer_job",
            params={"transfer_bytes": transfer_bytes,
                    "orientation": orientation, "seed": 7})
        for orientation in ("horizontal", "vertical")
    ]


def reduce(payloads: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    return dict(payloads)


def render(out: Dict[str, Dict[str, Any]]) -> None:
    from ..perf.report import format_series

    for orientation in ("horizontal", "vertical"):
        o = out[orientation]
        print(f"== Fig 3 ({orientation} adjacency) ==")
        print(f"cut links: {o['cut_links']} "
              f"({o['active_links']} carrying traffic), "
              f"active utilization: {o['active_utilization']:.2f}, "
              f"peak link: {o['peak_link_utilization']:.2f}, "
              f"transfer cycles: {o['cycles']:.0f}")
        print(f"1024-bit hierarchical channel payload efficiency: "
              f"{o['wide_channel_efficiency']:.3f}")
        if o["series"]:
            print(format_series(o["series"],
                                title="bisection utilization over time"))
        print()


def main(size=None) -> None:
    from ..orch import execute_serial

    render(reduce(execute_serial(jobs(size=size or "small"))))


if __name__ == "__main__":
    main()
