"""Fig 4: HW barrier latency and scalability vs software barriers.

Checks the paper's worked example -- with Ruche links of hop distance 3,
the remotest tile of a 16x8 group reaches the root in 8 cycles -- and
sweeps group sizes to show the HW tree's near-flat scaling against the
linear serialization of an amoadd-counter software barrier.

Both analytic curves are cross-validated against the event-driven
HwBarrierGroup/SwBarrierGroup models on a live simulator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..arch.params import BarrierTiming
from ..engine import Simulator
from ..noc.barrier import (
    HwBarrierGroup,
    SwBarrierGroup,
    analytic_hw_latency,
    analytic_sw_latency,
    barrier_hops,
    tree_root,
)

GROUP_SIZES: List[Tuple[int, int]] = [
    (2, 2), (4, 2), (4, 4), (8, 4), (8, 8), (16, 8), (16, 16), (32, 16),
]


def simulated_latency(width: int, height: int, hw: bool = True,
                      ruche: bool = True) -> float:
    """Drive a barrier group with simultaneous arrivals; returns release
    latency of the slowest member."""
    sim = Simulator()
    members = [(x, y) for y in range(height) for x in range(width)]
    if hw:
        group = HwBarrierGroup(sim, members, BarrierTiming(), ruche=ruche)
    else:
        group = SwBarrierGroup(sim, members)
    futures = [group.arrive(m, 0.0) for m in members]
    done = {}
    for m, fut in zip(members, futures):
        fut.add_callback(lambda _v, m=m: done.setdefault(m, sim.now))
    sim.run()
    return max(done.values())


def barrier_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: one live barrier-group simulation."""
    return {"latency": simulated_latency(params["width"], params["height"],
                                         hw=params["hw"])}


def jobs(size: str = "small") -> list:  # size: barriers have no input size
    from ..orch import Job

    out = []
    for width, height in GROUP_SIZES:
        for flavor, hw in (("hw", True), ("sw", False)):
            out.append(Job(
                "fig4", f"{flavor}/{width}x{height}",
                "repro.experiments.fig04_barrier:barrier_job",
                params={"width": width, "height": height, "hw": hw}))
    return out


def reduce(payloads: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    rows = []
    for width, height in GROUP_SIZES:
        rows.append({
            "group": f"{width}x{height}",
            "tiles": width * height,
            "hw_ruche": analytic_hw_latency(width, height, ruche=True),
            "hw_mesh": analytic_hw_latency(width, height, ruche=False),
            "sw": analytic_sw_latency(width, height),
            "hw_ruche_sim": payloads[f"hw/{width}x{height}"]["latency"],
            "sw_sim": payloads[f"sw/{width}x{height}"]["latency"],
        })
    # The paper's worked example: remotest tile -> root in 8 cycles.
    members = [(x, y) for y in range(8) for x in range(16)]
    root = tree_root(members)
    worst_in_sweep = max(barrier_hops(m, root, ruche=True) for m in members)
    return {"rows": rows, "in_sweep_16x8": worst_in_sweep}


def run() -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs()))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    print("== Fig 4: barrier latency (cycles) ==")
    print(f"16x8 in-sweep to root via Ruche: {out['in_sweep_16x8']} cycles "
          "(paper: 8)")
    rows = [(r["group"], r["tiles"], r["hw_ruche"], r["hw_mesh"], r["sw"],
             r["hw_ruche_sim"], r["sw_sim"]) for r in out["rows"]]
    print(format_table(
        ["group", "tiles", "HW(ruche)", "HW(mesh)", "SW", "HW sim", "SW sim"],
        rows))


def main(size=None) -> None:  # size: barriers have no input size
    render(run())


if __name__ == "__main__":
    main()
