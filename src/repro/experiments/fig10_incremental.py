"""Fig 10: incremental feature analysis.

Runs the full benchmark suite on every rung of the feature ladder
(baseline manycore -> router -> cache -> density -> the six HB features)
and reports per-kernel speedups over the baseline plus the geomean
progression.  The paper's headline: all optimizations together give a
5.2x geomean over Baseline Manycore, with core density the single
largest contributor, and Jacobi improving 17-48x by the end.

The grid is rungs x kernels; each point is one independent
:class:`repro.orch.Job` (key ``"<rung>/<kernel>"``), so the sweep
orchestrator can run the whole ladder in parallel and cache each point.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..baselines.features import ladder
from ..engine.stats import geomean
from ..kernels import registry
from .common import suite_jobs

_SEP = "/"  # rung names never contain a slash


def jobs(size: str = "small", kernels: Optional[Iterable[str]] = None,
         tiles_x: int = 16, tiles_y: int = 8) -> List[Any]:
    names = list(kernels) if kernels is not None else list(registry.SUITE)
    out: List[Any] = []
    for rung, config in ladder(tiles_x, tiles_y):
        out.extend(suite_jobs("fig10", config, size=size, kernels=names,
                              key_prefix=rung + _SEP))
    return out


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    rungs: List[str] = []
    cycles: Dict[str, Dict[str, float]] = {}
    for key, payload in payloads.items():
        rung, _, kernel = key.rpartition(_SEP)
        if rung not in cycles:
            rungs.append(rung)
            cycles[rung] = {}
        cycles[rung][kernel] = payload["cycles"]
    base = cycles[rungs[0]]
    speedups: Dict[str, Dict[str, float]] = {}
    geo: Dict[str, float] = {}
    for rung in rungs:
        speedups[rung] = {k: base[k] / cycles[rung][k] for k in base}
        geo[rung] = geomean(list(speedups[rung].values()))
    return {
        "rungs": rungs,
        "cycles": cycles,
        "speedups": speedups,
        "geomean": geo,
        "final_geomean": geo[rungs[-1]],
    }


def run(size: str = "small", kernels: Optional[Iterable[str]] = None,
        tiles_x: int = 16, tiles_y: int = 8) -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size, kernels=kernels,
                                      tiles_x=tiles_x, tiles_y=tiles_y)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    kernels: List[str] = sorted(next(iter(out["speedups"].values())))
    print("== Fig 10: speedup over Baseline Manycore ==")
    rows = []
    for rung in out["rungs"]:
        row: List[object] = [rung]
        row.extend(out["speedups"][rung][k] for k in kernels)
        row.append(out["geomean"][rung])
        rows.append(row)
    print(format_table(["config"] + kernels + ["geomean"], rows))
    print(f"\nfinal geomean speedup: {out['final_geomean']:.2f}x "
          "(paper: 5.2x)")


def main(size=None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":
    main()
