"""Fig 10: incremental feature analysis.

Runs the full benchmark suite on every rung of the feature ladder
(baseline manycore -> router -> cache -> density -> the six HB features)
and reports per-kernel speedups over the baseline plus the geomean
progression.  The paper's headline: all optimizations together give a
5.2x geomean over Baseline Manycore, with core density the single
largest contributor, and Jacobi improving 17-48x by the end.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..baselines.features import ladder
from ..engine.stats import geomean
from .common import run_suite


def run(size: str = "small", kernels: Optional[Iterable[str]] = None,
        tiles_x: int = 16, tiles_y: int = 8) -> Dict[str, Any]:
    rungs = ladder(tiles_x, tiles_y)
    cycles: Dict[str, Dict[str, float]] = {}
    for name, config in rungs:
        results = run_suite(config, size=size, kernels=kernels)
        cycles[name] = {k: r.cycles for k, r in results.items()}
    base_name = rungs[0][0]
    base = cycles[base_name]
    speedups: Dict[str, Dict[str, float]] = {}
    geo: Dict[str, float] = {}
    for name, _cfg in rungs:
        speedups[name] = {k: base[k] / cycles[name][k] for k in base}
        geo[name] = geomean(list(speedups[name].values()))
    return {
        "rungs": [name for name, _ in rungs],
        "cycles": cycles,
        "speedups": speedups,
        "geomean": geo,
        "final_geomean": geo[rungs[-1][0]],
    }


def main() -> None:
    from ..perf.report import format_table

    out = run()
    kernels: List[str] = sorted(next(iter(out["speedups"].values())))
    print("== Fig 10: speedup over Baseline Manycore ==")
    rows = []
    for rung in out["rungs"]:
        row: List[object] = [rung]
        row.extend(out["speedups"][rung][k] for k in kernels)
        row.append(out["geomean"][rung])
        rows.append(row)
    print(format_table(["config"] + kernels + ["geomean"], rows))
    print(f"\nfinal geomean speedup: {out['final_geomean']:.2f}x "
          "(paper: 5.2x)")


if __name__ == "__main__":
    main()
