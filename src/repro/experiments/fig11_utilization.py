"""Fig 11: core and HBM2 utilization of the most-optimized Cell.

For every kernel (ordered memory-intensive -> compute-intensive) report
the core-cycle breakdown over the Table III stall taxonomy and the HBM2
channel breakdown (read / write / busy / idle).  The paper's reading:
PR/BFS/SpGEMM are HBM-bound, AES/SW/SGEMM/BS are compute-bound, SW is
branch-miss heavy, BS is bypass/fdiv heavy, and FFT/Jacobi/SGEMM show
network-congestion stalls.

Like every harness, the figure is a fan-out of :class:`repro.orch.Job`
specs (:func:`jobs`) plus a pure :func:`reduce`; ``run()`` executes them
serially in-process and ``repro sweep fig11`` schedules them on the
worker pool.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..arch.config import HB_16x8
from ..kernels.registry import FIG11_ORDER
from ..perf.counters import ordered_from
from .common import suite_jobs


def jobs(size: str = "small",
         kernels: Optional[Iterable[str]] = None) -> List[Any]:
    names = list(kernels) if kernels is not None else list(FIG11_ORDER)
    return suite_jobs("fig11", HB_16x8, size=size, kernels=names)


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    names = list(payloads)
    core: Dict[str, Dict[str, float]] = {}
    hbm: Dict[str, Dict[str, float]] = {}
    util: Dict[str, float] = {}
    for name in names:
        r = payloads[name]
        core[name] = ordered_from(r["core_breakdown"])
        hbm[name] = r["hbm"]
        util[name] = r["core_utilization"]
    return {
        "order": names,
        "core_breakdown": core,
        "hbm_breakdown": hbm,
        "core_utilization": util,
        "results": dict(payloads),
    }


def run(size: str = "small",
        kernels: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size, kernels=kernels)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.counters import BREAKDOWN_ORDER, HBM_ORDER
    from ..perf.report import format_stacked

    print("== Fig 11: core utilization breakdown ==")
    print(format_stacked(out["core_breakdown"], BREAKDOWN_ORDER))
    print("\n== Fig 11: HBM2 utilization breakdown ==")
    print(format_stacked(out["hbm_breakdown"], HBM_ORDER))


def main(size=None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":
    main()
