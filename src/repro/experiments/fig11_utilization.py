"""Fig 11: core and HBM2 utilization of the most-optimized Cell.

For every kernel (ordered memory-intensive -> compute-intensive) report
the core-cycle breakdown over the Table III stall taxonomy and the HBM2
channel breakdown (read / write / busy / idle).  The paper's reading:
PR/BFS/SpGEMM are HBM-bound, AES/SW/SGEMM/BS are compute-bound, SW is
branch-miss heavy, BS is bypass/fdiv heavy, and FFT/Jacobi/SGEMM show
network-congestion stalls.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from ..arch.config import HB_16x8
from ..kernels.registry import FIG11_ORDER
from ..perf.counters import ordered_breakdown
from .common import run_suite


def run(size: str = "small",
        kernels: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    names = list(kernels) if kernels is not None else list(FIG11_ORDER)
    results = run_suite(HB_16x8, size=size, kernels=names)
    core: Dict[str, Dict[str, float]] = {}
    hbm: Dict[str, Dict[str, float]] = {}
    util: Dict[str, float] = {}
    for name in names:
        r = results[name]
        core[name] = ordered_breakdown(r)
        hbm[name] = r.hbm
        util[name] = r.core_utilization
    return {
        "order": names,
        "core_breakdown": core,
        "hbm_breakdown": hbm,
        "core_utilization": util,
        "results": results,
    }


def main() -> None:
    from ..perf.counters import BREAKDOWN_ORDER, HBM_ORDER
    from ..perf.report import format_stacked

    out = run()
    print("== Fig 11: core utilization breakdown ==")
    print(format_stacked(out["core_breakdown"], BREAKDOWN_ORDER))
    print("\n== Fig 11: HBM2 utilization breakdown ==")
    print(format_stacked(out["hbm_breakdown"], HBM_ORDER))


if __name__ == "__main__":
    main()
