"""Fig 12: scaling irregular workloads with tile groups.

SpGEMM on the wiki-Vote-like power-law matrix, regrouping the 16x8 Cell
into progressively smaller tile groups, each running an independent task
(same stationary matrix, different activation) from its own amoadd
counter.  The paper: eight 4x4 groups beat one 16x8 group by ~4x in
throughput and ~7.8x in HBM utilization, with diminishing returns below
4x4 as per-group working sets blow up the cache.

Each group shape is one :class:`repro.orch.Job`; :func:`reduce`
normalizes throughput/HBM against the single-group baseline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..arch.config import HB_16x8
from ..kernels import spgemm
from ..session import run as run_kernel

GROUP_SHAPES: List[Tuple[int, int]] = [(16, 8), (8, 8), (8, 4), (4, 4),
                                       (4, 2), (2, 2)]

#: Input scale per --size knob ("small" is the benchmark default).
SIZE_SCALE = {"tiny": 0.1, "small": 0.2, "full": 0.2}


def _scaled_config(scale: float):
    # Scale the LLC with the scaled-down input so the working-set-to-
    # cache ratio matches the paper's full-size experiment (each task's
    # activation matrix is private; many small groups = many resident
    # working sets).
    return HB_16x8.with_cache(
        sets=max(4, int(HB_16x8.timings.cache.sets * scale)))


def shape_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: one group shape of the Fig 12 sweep."""
    gw, gh = params["group_shape"]
    num_groups = config.cell.num_tiles // (gw * gh)
    args = spgemm.make_args(tasks=num_groups, scale=params["scale"])
    result = run_kernel(config, spgemm.KERNEL, args, group_shape=(gw, gh))
    matrix = args["matrix"]
    hbm_active = (result.hbm["read"] + result.hbm["write"]
                  + result.hbm["busy"])
    return {
        "shape": f"{gw}x{gh}",
        "groups": num_groups,
        "cycles": result.cycles,
        "rows_per_kcycle": (1000.0 * matrix.num_rows * num_groups
                            / result.cycles),
        "hbm_active": hbm_active,
        "hbm_rw": result.hbm["read"] + result.hbm["write"],
        "core_utilization": result.core_utilization,
    }


def jobs(size: str = "small", scale: Optional[float] = None,
         shapes: Optional[List[Tuple[int, int]]] = None) -> list:
    from ..arch.serialize import to_dict
    from ..orch import Job

    scale = scale if scale is not None else SIZE_SCALE.get(size, 0.2)
    shapes = shapes or GROUP_SHAPES
    config_dict = to_dict(_scaled_config(scale))
    return [
        Job("fig12", f"{gw}x{gh}",
            "repro.experiments.fig12_tilegroups:shape_job",
            params={"group_shape": [gw, gh], "scale": scale},
            config=config_dict)
        for gw, gh in shapes
    ]


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    rows = [dict(payloads[key]) for key in payloads]
    base = rows[0]
    for row in rows:
        row["throughput_x"] = row["rows_per_kcycle"] / base["rows_per_kcycle"]
        row["hbm_x"] = (row["hbm_rw"] / base["hbm_rw"]
                        if base["hbm_rw"] > 0 else float("nan"))
    best = max(rows, key=lambda r: r["throughput_x"])
    return {"rows": rows, "best_shape": best["shape"],
            "best_throughput_x": best["throughput_x"]}


def run(scale: float = 0.2, shapes: Optional[List[Tuple[int, int]]] = None
        ) -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(scale=scale, shapes=shapes)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    print("== Fig 12: SpGEMM (WV-like) vs tile-group shape ==")
    print(format_table(
        ["groups", "shape", "cycles", "rows/kcycle", "throughput x",
         "HBM r+w", "HBM x"],
        [(r["groups"], r["shape"], r["cycles"], r["rows_per_kcycle"],
          r["throughput_x"], r["hbm_rw"], r["hbm_x"]) for r in out["rows"]]))
    print(f"\nbest shape: {out['best_shape']} at "
          f"{out['best_throughput_x']:.2f}x (paper: 4x4 at ~4x)")


def main(size=None) -> None:
    from ..orch import execute_serial

    render(reduce(execute_serial(jobs(size=size or "small"))))


if __name__ == "__main__":
    main()
