"""Fig 12: scaling irregular workloads with tile groups.

SpGEMM on the wiki-Vote-like power-law matrix, regrouping the 16x8 Cell
into progressively smaller tile groups, each running an independent task
(same stationary matrix, different activation) from its own amoadd
counter.  The paper: eight 4x4 groups beat one 16x8 group by ~4x in
throughput and ~7.8x in HBM utilization, with diminishing returns below
4x4 as per-group working sets blow up the cache.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..arch.config import HB_16x8
from ..kernels import spgemm
from ..runtime.host import run_on_cell

GROUP_SHAPES: List[Tuple[int, int]] = [(16, 8), (8, 8), (8, 4), (4, 4),
                                       (4, 2), (2, 2)]


def run(scale: float = 0.2, shapes: List[Tuple[int, int]] = None
        ) -> Dict[str, Any]:
    shapes = shapes or GROUP_SHAPES
    # Scale the LLC with the scaled-down input so the working-set-to-
    # cache ratio matches the paper's full-size experiment (each task's
    # activation matrix is private; many small groups = many resident
    # working sets).
    from dataclasses import replace as _replace

    cache = _replace(HB_16x8.timings.cache,
                     sets=max(4, int(HB_16x8.timings.cache.sets * scale)))
    config = HB_16x8.with_cache(cache)
    cell_tiles = config.cell.num_tiles
    rows: List[Dict[str, Any]] = []
    for gw, gh in shapes:
        num_groups = cell_tiles // (gw * gh)
        args = spgemm.make_args(tasks=num_groups, scale=scale)
        result = run_on_cell(config, spgemm.KERNEL, args,
                             group_shape=(gw, gh))
        matrix = args["matrix"]
        total_rows = matrix.num_rows * num_groups
        hbm_active = result.hbm["read"] + result.hbm["write"] + result.hbm["busy"]
        rows.append({
            "shape": f"{gw}x{gh}",
            "groups": num_groups,
            "cycles": result.cycles,
            "rows_per_kcycle": 1000.0 * total_rows / result.cycles,
            "hbm_active": hbm_active,
            "hbm_rw": result.hbm["read"] + result.hbm["write"],
            "core_utilization": result.core_utilization,
        })
    base = rows[0]
    for row in rows:
        row["throughput_x"] = row["rows_per_kcycle"] / base["rows_per_kcycle"]
        row["hbm_x"] = (row["hbm_rw"] / base["hbm_rw"]
                        if base["hbm_rw"] > 0 else float("nan"))
    best = max(rows, key=lambda r: r["throughput_x"])
    return {"rows": rows, "best_shape": best["shape"],
            "best_throughput_x": best["throughput_x"]}


def main() -> None:
    from ..perf.report import format_table

    out = run()
    print("== Fig 12: SpGEMM (WV-like) vs tile-group shape ==")
    print(format_table(
        ["groups", "shape", "cycles", "rows/kcycle", "throughput x",
         "HBM r+w", "HBM x"],
        [(r["groups"], r["shape"], r["cycles"], r["rows_per_kcycle"],
          r["throughput_x"], r["hbm_rw"], r["hbm_x"]) for r in out["rows"]]))
    print(f"\nbest shape: {out['best_shape']} at "
          f"{out['best_throughput_x']:.2f}x (paper: 4x4 at ~4x)")


if __name__ == "__main__":
    main()
