"""Fig 13: energy-per-instruction vs the OpenPiton power study.

Reproduces the paper's methodology directly (it is an analytic,
CV^2-normalized comparison): HB EPI from per-component event energies,
Piton EPI from the published measurements scaled to the same node.
Headline: HB is 3.6-15.1x more energy-efficient per instruction.

Also demonstrates the kernel-level use: estimating a measured run's core
energy from its executed instruction mix.  That one measured run is the
harness's single :class:`repro.orch.Job`; the EPI table itself is
analytic and lives in :func:`reduce`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..arch.config import HB_16x8
from ..energy.epi import (
    INSTRUCTION_CLASSES,
    efficiency_ratios,
    hb_epi,
    hb_epi_breakdown,
    kernel_energy,
    piton_epi_scaled,
)
from .common import suite_jobs


def _measure_config(size: str):
    if size != "tiny":
        return HB_16x8
    from ..arch.config import small_config

    return small_config(4, 4)


def jobs(size: str = "tiny", measure_kernel: str = "AES") -> list:
    return suite_jobs("fig13", _measure_config(size), size=size,
                      kernels=[measure_kernel])


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    (measure_kernel, result), = payloads.items()
    ratios = efficiency_ratios()
    rows = []
    for cls in INSTRUCTION_CLASSES:
        rows.append({
            "class": cls,
            "hb_pj": hb_epi(cls),
            "piton_pj": piton_epi_scaled(cls),
            "ratio": ratios[cls],
            "hb_breakdown": hb_epi_breakdown(cls),
        })
    counts = {
        "int": result["int_instructions"],
        "fp": result["fp_instructions"],
    }
    report = kernel_energy(counts)
    return {
        "rows": rows,
        "min_ratio": min(ratios.values()),
        "max_ratio": max(ratios.values()),
        "kernel": measure_kernel,
        "kernel_energy_pj": report.total_pj,
        "kernel_instructions": result["instructions"],
    }


def run(measure_kernel: str = "AES", size: str = "tiny") -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size,
                                      measure_kernel=measure_kernel)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    print("== Fig 13: energy per instruction (pJ, 14/16 nm normalized) ==")
    print(format_table(
        ["class", "HB", "Piton (CV^2)", "Piton/HB"],
        [(r["class"], r["hb_pj"], r["piton_pj"], r["ratio"])
         for r in out["rows"]]))
    print(f"\nefficiency band: {out['min_ratio']:.1f}x - "
          f"{out['max_ratio']:.1f}x (paper: 3.6-15.1x)")
    print(f"{out['kernel']} run energy: {out['kernel_energy_pj']/1e6:.2f} uJ "
          f"over {out['kernel_instructions']:.0f} instructions")


def main(size=None) -> None:
    render(run(size=size or "tiny"))


if __name__ == "__main__":
    main()
