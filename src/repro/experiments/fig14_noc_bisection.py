"""Fig 14: bisection stall analysis -- mesh vs Ruche vs Ruche + LPC.

Measures how often packets stall at the 16x8 Cell's horizontal bisection
under three network configurations:

* 2-D mesh (no ruche links, no load compression),
* Ruche network (4x the cut width),
* Ruche + Load Packet Compression.

The paper: mesh bisection links stall up to ~50% on PR (HW),
Jacobi (DRAM) and FFT; Ruche helps everything except SPM-resident Jacobi
(nearest-neighbour traffic never crosses the cut); LPC helps sequential
kernels but not SpGEMM.

The grid is variants x kernels; each point is one
:class:`repro.orch.Job` (key ``"<variant>/<kernel>"``) that measures the
cut inside the worker and returns only the two fractions.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..arch.config import HB_16x8
from ..kernels import jacobi, registry
from ..perf.bisection import cell_bisection
from ..session import run as run_kernel
from .common import suite_args

VARIANTS: List[Tuple[str, Dict[str, bool]]] = [
    ("mesh", {"ruche_network": False, "load_compression": False}),
    ("ruche", {"ruche_network": True, "load_compression": False}),
    ("ruche+lpc", {"ruche_network": True, "load_compression": True}),
]

#: Fig 14's kernel set: the suite's network-sensitive members plus the
#: two Jacobi placements.
DEFAULT_KERNELS = ("PR", "Jacobi($)", "Jacobi(DRAM)", "FFT", "SGEMM",
                   "SpGEMM", "BFS")

_SEP = "/"  # variant names never contain a slash


def _args_for(name: str, size: str):
    if name == "Jacobi($)":
        return jacobi.KERNEL, jacobi.make_args(z_depth=32, iters=1,
                                               use_spm=True)
    if name == "Jacobi(DRAM)":
        return jacobi.KERNEL, jacobi.make_args(z_depth=32, iters=1,
                                               use_spm=False)
    return registry.SUITE[name].kernel, suite_args(name, size)


def bisection_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: one (variant, kernel) cut measurement."""
    kern, args = _args_for(params["kernel"], params["size"])
    result = run_kernel(config, kern, args, keep_machine=True)
    stats = cell_bisection(result.machine.memsys.req_net,
                           config.cell.tiles_x, result.cycles)
    return {
        "cycles": result.cycles,
        "stall_fraction": stats.stall_fraction,
        "utilization": stats.utilization,
    }


def jobs(size: str = "small",
         kernels: Optional[Iterable[str]] = None) -> List[Any]:
    from ..arch.serialize import to_dict
    from ..orch import Job

    names = list(kernels) if kernels is not None else list(DEFAULT_KERNELS)
    out: List[Any] = []
    for vname, flags in VARIANTS:
        config = HB_16x8.with_features(replace(HB_16x8.features, **flags))
        config_dict = to_dict(config)
        for kname in names:
            out.append(Job(
                "fig14", f"{vname}{_SEP}{kname}",
                "repro.experiments.fig14_noc_bisection:bisection_job",
                params={"kernel": kname, "size": size},
                config=config_dict))
    return out


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    names: List[str] = []
    stalls: Dict[str, Dict[str, float]] = {v: {} for v, _ in VARIANTS}
    utils: Dict[str, Dict[str, float]] = {v: {} for v, _ in VARIANTS}
    for key, payload in payloads.items():
        vname, _, kname = key.partition(_SEP)
        if kname not in names:
            names.append(kname)
        stalls[vname][kname] = payload["stall_fraction"]
        utils[vname][kname] = payload["utilization"]
    return {"kernels": names, "stall_fraction": stalls,
            "utilization": utils}


def run(size: str = "small",
        kernels: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size, kernels=kernels)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    print("== Fig 14: bisection stall fraction ==")
    rows = []
    for kname in out["kernels"]:
        rows.append([kname] + [out["stall_fraction"][v][kname]
                               for v, _ in VARIANTS])
    print(format_table(["kernel"] + [v for v, _ in VARIANTS], rows))
    print("\n== bisection utilization ==")
    rows = []
    for kname in out["kernels"]:
        rows.append([kname] + [out["utilization"][v][kname]
                               for v, _ in VARIANTS])
    print(format_table(["kernel"] + [v for v, _ in VARIANTS], rows))


def main(size=None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":
    main()
