"""Fig 14: bisection stall analysis -- mesh vs Ruche vs Ruche + LPC.

Measures how often packets stall at the 16x8 Cell's horizontal bisection
under three network configurations:

* 2-D mesh (no ruche links, no load compression),
* Ruche network (4x the cut width),
* Ruche + Load Packet Compression.

The paper: mesh bisection links stall up to ~50% on PR (HW),
Jacobi (DRAM) and FFT; Ruche helps everything except SPM-resident Jacobi
(nearest-neighbour traffic never crosses the cut); LPC helps sequential
kernels but not SpGEMM.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..arch.config import HB_16x8
from ..kernels import jacobi, registry
from ..perf.bisection import cell_bisection
from ..runtime.host import run_on_cell
from .common import suite_args

VARIANTS: List[Tuple[str, Dict[str, bool]]] = [
    ("mesh", {"ruche_network": False, "load_compression": False}),
    ("ruche", {"ruche_network": True, "load_compression": False}),
    ("ruche+lpc", {"ruche_network": True, "load_compression": True}),
]

#: Fig 14's kernel set: the suite's network-sensitive members plus the
#: two Jacobi placements.
DEFAULT_KERNELS = ("PR", "Jacobi($)", "Jacobi(DRAM)", "FFT", "SGEMM",
                   "SpGEMM", "BFS")


def _args_for(name: str, size: str):
    if name == "Jacobi($)":
        return jacobi.KERNEL, jacobi.make_args(z_depth=32, iters=1,
                                               use_spm=True)
    if name == "Jacobi(DRAM)":
        return jacobi.KERNEL, jacobi.make_args(z_depth=32, iters=1,
                                               use_spm=False)
    return registry.SUITE[name].kernel, suite_args(name, size)


def run(size: str = "small",
        kernels: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    names = list(kernels) if kernels is not None else list(DEFAULT_KERNELS)
    stalls: Dict[str, Dict[str, float]] = {v: {} for v, _ in VARIANTS}
    utils: Dict[str, Dict[str, float]] = {v: {} for v, _ in VARIANTS}
    for vname, flags in VARIANTS:
        config = HB_16x8.with_features(replace(HB_16x8.features, **flags))
        for kname in names:
            kern, args = _args_for(kname, size)
            result = run_on_cell(config, kern, args, keep_machine=True)
            net = result.machine.memsys.req_net
            stats = cell_bisection(net, HB_16x8.cell.tiles_x, result.cycles)
            stalls[vname][kname] = stats.stall_fraction
            utils[vname][kname] = stats.utilization
    return {"kernels": names, "stall_fraction": stalls,
            "utilization": utils}


def main() -> None:
    from ..perf.report import format_table

    out = run()
    print("== Fig 14: bisection stall fraction ==")
    rows = []
    for kname in out["kernels"]:
        rows.append([kname] + [out["stall_fraction"][v][kname]
                               for v, _ in VARIANTS])
    print(format_table(["kernel"] + [v for v, _ in VARIANTS], rows))
    print("\n== bisection utilization ==")
    rows = []
    for kname in out["kernels"]:
        rows.append([kname] + [out["utilization"][v][kname]
                               for v, _ in VARIANTS])
    print(format_table(["kernel"] + [v for v, _ in VARIANTS], rows))


if __name__ == "__main__":
    main()
