"""Fig 15: three strategies for doubling compute at constant HBM bandwidth.

Compares the Table II machines against the 16x8 baseline:

* 16x16 -- double the Cell vertically: 2x tiles, same cache, longer hops;
* 32x8  -- double horizontally: 2x tiles, 2x cache capacity/bandwidth,
  more bisection pressure;
* 2x16x8 -- double the Cell count: modelled, per the paper's own
  multi-Cell methodology, as one 16x8 Cell running half the work at half
  the per-Cell HBM bandwidth (two such Cells run in parallel).  Data
  structures that resist partitioning (the BH octree) are duplicated, so
  their per-Cell work does not halve.

Paper geomeans over the suite: 1.25x / 1.39x / 1.34x.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional

from ..arch.config import HB_16x8, HB_16x16, HB_32x8
from ..engine.stats import geomean
from ..kernels import registry
from ..runtime.host import run_on_cell

#: Kernels whose primary data structure is duplicated (not split) when
#: the Cell count doubles; their work items split but the shared
#: structure is re-read per Cell.
DUPLICATED = {"BH"}

#: Fig 15 needs enough work per tile that fixed phases (staging, barrier
#: convergence, cold misses) do not mask the scaling effect the figure is
#: about, so it carries its own input sizes: a "unit" workload for the
#: doubled machines and the baseline, and a "half" workload for the
#: per-Cell model of 2x16x8.
UNIT_ARGS: Dict[str, Dict[str, Any]] = {
    "AES": {"blocks_per_tile": 16},
    "BS": {"options_per_tile": 12},
    "SW": {"query_len": 12, "ref_len": 16, "pairs_per_tile": 2},
    "SGEMM": {"n": 64},
    "FFT": {"n": 2048},
    "Jacobi": {"z_depth": 48, "iters": 1},
    "SpGEMM": {"scale": 0.2},
    "PR": {"scale": 0.5, "iters": 1},
    "BFS": {"width": 16},
    "BH": {"num_bodies": 448},
}

HALF_ARGS: Dict[str, Dict[str, Any]] = {
    "AES": {"blocks_per_tile": 8},
    "BS": {"options_per_tile": 6},
    "SW": {"query_len": 12, "ref_len": 16, "pairs_per_tile": 1},
    "SGEMM": {"n": 64, "work_fraction": 0.5},
    "FFT": {"n": 1024},
    "Jacobi": {"z_depth": 24, "iters": 1},
    "SpGEMM": {"scale": 0.1},
    "PR": {"scale": 0.25, "iters": 1},
    "BFS": {"width": 11},
    # Bodies split across the two Cells; the octree is duplicated, so
    # each Cell traverses half the bodies over the full-size tree.
    "BH": {"num_bodies": 448, "traverse_fraction": 0.5},
}


#: Keys consumed by the kernels at launch rather than by make_args.
_LAUNCH_KEYS = ("work_fraction", "traverse_fraction")


def _build(name: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    spec = dict(spec)
    extra = {k: spec.pop(k) for k in _LAUNCH_KEYS if k in spec}
    args = registry.SUITE[name].make_args(**spec)
    args.update(extra)
    return args


def _unit_args(name: str) -> Dict[str, Any]:
    return _build(name, UNIT_ARGS[name])


def _half_work_args(name: str) -> Dict[str, Any]:
    """Args for one Cell of the 2x16x8 model: half the work items."""
    return _build(name, HALF_ARGS[name])


def run(kernels: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    names = list(kernels) if kernels is not None else list(registry.SUITE)
    cycles: Dict[str, Dict[str, float]] = {
        "16x8": {}, "16x16": {}, "32x8": {}, "2x16x8": {},
    }
    for name in names:
        bench = registry.SUITE[name]
        base = run_on_cell(HB_16x8, bench.kernel, _unit_args(name))
        cycles["16x8"][name] = base.cycles
        tall = run_on_cell(HB_16x16, bench.kernel, _unit_args(name))
        cycles["16x16"][name] = tall.cycles
        wide = run_on_cell(HB_32x8, bench.kernel, _unit_args(name))
        cycles["32x8"][name] = wide.cycles
        # 2x16x8: one Cell, half the work, half the HBM bandwidth.
        half_cfg = replace(HB_16x8, name="2x16x8-cell", hbm_scale=0.5)
        half = run_on_cell(half_cfg, bench.kernel, _half_work_args(name))
        cycles["2x16x8"][name] = half.cycles
    speedups = {
        cfg: {k: cycles["16x8"][k] / cycles[cfg][k] for k in names}
        for cfg in ("16x16", "32x8", "2x16x8")
    }
    geo = {cfg: geomean(list(sp.values())) for cfg, sp in speedups.items()}
    return {"cycles": cycles, "speedups": speedups, "geomean": geo,
            "kernels": names}


def main() -> None:
    from ..perf.report import format_table

    out = run()
    print("== Fig 15: doubling strategies, speedup over 16x8 ==")
    rows = []
    for k in out["kernels"]:
        rows.append([k] + [out["speedups"][cfg][k]
                           for cfg in ("16x16", "32x8", "2x16x8")])
    rows.append(["geomean"] + [out["geomean"][cfg]
                               for cfg in ("16x16", "32x8", "2x16x8")])
    print(format_table(["kernel", "16x16", "32x8", "2x16x8"], rows))
    print("\npaper geomeans: 1.25x / 1.39x / 1.34x")


if __name__ == "__main__":
    main()
