"""Fig 15: three strategies for doubling compute at constant HBM bandwidth.

Compares the Table II machines against the 16x8 baseline:

* 16x16 -- double the Cell vertically: 2x tiles, same cache, longer hops;
* 32x8  -- double horizontally: 2x tiles, 2x cache capacity/bandwidth,
  more bisection pressure;
* 2x16x8 -- double the Cell count: modelled, per the paper's own
  multi-Cell methodology, as one 16x8 Cell running half the work at half
  the per-Cell HBM bandwidth (two such Cells run in parallel).  Data
  structures that resist partitioning (the BH octree) are duplicated, so
  their per-Cell work does not halve.

Paper geomeans over the suite: 1.25x / 1.39x / 1.34x.

The grid is machines x kernels; each point is one
:class:`repro.orch.Job` (key ``"<machine>/<kernel>"``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..arch.config import HB_16x8, HB_16x16, HB_32x8
from ..engine.stats import geomean
from ..kernels import registry
from ..session import run as run_kernel

#: Kernels whose primary data structure is duplicated (not split) when
#: the Cell count doubles; their work items split but the shared
#: structure is re-read per Cell.
DUPLICATED = {"BH"}

#: Fig 15 needs enough work per tile that fixed phases (staging, barrier
#: convergence, cold misses) do not mask the scaling effect the figure is
#: about, so it carries its own input sizes: a "unit" workload for the
#: doubled machines and the baseline, and a "half" workload for the
#: per-Cell model of 2x16x8.
UNIT_ARGS: Dict[str, Dict[str, Any]] = {
    "AES": {"blocks_per_tile": 16},
    "BS": {"options_per_tile": 12},
    "SW": {"query_len": 12, "ref_len": 16, "pairs_per_tile": 2},
    "SGEMM": {"n": 64},
    "FFT": {"n": 2048},
    "Jacobi": {"z_depth": 48, "iters": 1},
    "SpGEMM": {"scale": 0.2},
    "PR": {"scale": 0.5, "iters": 1},
    "BFS": {"width": 16},
    "BH": {"num_bodies": 448},
}

HALF_ARGS: Dict[str, Dict[str, Any]] = {
    "AES": {"blocks_per_tile": 8},
    "BS": {"options_per_tile": 6},
    "SW": {"query_len": 12, "ref_len": 16, "pairs_per_tile": 1},
    "SGEMM": {"n": 64, "work_fraction": 0.5},
    "FFT": {"n": 1024},
    "Jacobi": {"z_depth": 24, "iters": 1},
    "SpGEMM": {"scale": 0.1},
    "PR": {"scale": 0.25, "iters": 1},
    "BFS": {"width": 11},
    # Bodies split across the two Cells; the octree is duplicated, so
    # each Cell traverses half the bodies over the full-size tree.
    "BH": {"num_bodies": 448, "traverse_fraction": 0.5},
}

#: Reduced unit/half workloads for ``--size tiny`` smoke sweeps.  The
#: scaling *shapes* survive; absolute speedups get noisier, which the
#: tiny tier accepts by design.
TINY_UNIT_ARGS: Dict[str, Dict[str, Any]] = {
    "AES": {"blocks_per_tile": 4},
    "BS": {"options_per_tile": 4},
    "SW": {"query_len": 8, "ref_len": 12, "pairs_per_tile": 1},
    "SGEMM": {"n": 32},
    "FFT": {"n": 512},
    "Jacobi": {"z_depth": 16, "iters": 1},
    "SpGEMM": {"scale": 0.1},
    "PR": {"scale": 0.15, "iters": 1},
    "BFS": {"width": 11},
    "BH": {"num_bodies": 112},
}

TINY_HALF_ARGS: Dict[str, Dict[str, Any]] = {
    "AES": {"blocks_per_tile": 2},
    "BS": {"options_per_tile": 2},
    "SW": {"query_len": 8, "ref_len": 12, "pairs_per_tile": 1},
    "SGEMM": {"n": 32, "work_fraction": 0.5},
    "FFT": {"n": 256},
    "Jacobi": {"z_depth": 8, "iters": 1},
    "SpGEMM": {"scale": 0.05},
    "PR": {"scale": 0.08, "iters": 1},
    "BFS": {"width": 8},
    "BH": {"num_bodies": 112, "traverse_fraction": 0.5},
}


#: Keys consumed by the kernels at launch rather than by make_args.
_LAUNCH_KEYS = ("work_fraction", "traverse_fraction")

MACHINES = ("16x8", "16x16", "32x8", "2x16x8")


def _machine_config(machine: str):
    if machine == "2x16x8":
        # One Cell, half the work, half the HBM bandwidth.
        return replace(HB_16x8, name="2x16x8-cell", hbm_scale=0.5)
    return {"16x8": HB_16x8, "16x16": HB_16x16, "32x8": HB_32x8}[machine]


def _spec_tables(size: str):
    if size == "tiny":
        return TINY_UNIT_ARGS, TINY_HALF_ARGS
    return UNIT_ARGS, HALF_ARGS


def _build(name: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    spec = dict(spec)
    extra = {k: spec.pop(k) for k in _LAUNCH_KEYS if k in spec}
    args = registry.SUITE[name].make_args(**spec)
    args.update(extra)
    return args


def _unit_args(name: str, size: str = "small") -> Dict[str, Any]:
    return _build(name, _spec_tables(size)[0][name])


def _half_work_args(name: str, size: str = "small") -> Dict[str, Any]:
    """Args for one Cell of the 2x16x8 model: half the work items."""
    return _build(name, _spec_tables(size)[1][name])


def machine_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: one kernel on one doubling strategy."""
    name = params["kernel"]
    spec = dict(params["spec"])
    args = _build(name, spec)
    return run_kernel(config, registry.SUITE[name].kernel, args).to_dict()


def jobs(size: str = "small",
         kernels: Optional[Iterable[str]] = None) -> List[Any]:
    from ..arch.serialize import to_dict
    from ..orch import Job

    names = list(kernels) if kernels is not None else list(registry.SUITE)
    unit, half = _spec_tables(size)
    out: List[Any] = []
    for machine in MACHINES:
        config_dict = to_dict(_machine_config(machine))
        specs = half if machine == "2x16x8" else unit
        for name in names:
            out.append(Job(
                "fig15", f"{machine}/{name}",
                "repro.experiments.fig15_doubling:machine_job",
                params={"kernel": name, "spec": specs[name]},
                config=config_dict))
    return out


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    cycles: Dict[str, Dict[str, float]] = {m: {} for m in MACHINES}
    names: List[str] = []
    for key, payload in payloads.items():
        machine, _, name = key.partition("/")
        if name not in names:
            names.append(name)
        cycles[machine][name] = payload["cycles"]
    speedups = {
        cfg: {k: cycles["16x8"][k] / cycles[cfg][k] for k in names}
        for cfg in ("16x16", "32x8", "2x16x8")
    }
    geo = {cfg: geomean(list(sp.values())) for cfg, sp in speedups.items()}
    return {"cycles": cycles, "speedups": speedups, "geomean": geo,
            "kernels": names}


def run(size: str = "small",
        kernels: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size, kernels=kernels)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    print("== Fig 15: doubling strategies, speedup over 16x8 ==")
    rows = []
    for k in out["kernels"]:
        rows.append([k] + [out["speedups"][cfg][k]
                           for cfg in ("16x16", "32x8", "2x16x8")])
    rows.append(["geomean"] + [out["geomean"][cfg]
                               for cfg in ("16x16", "32x8", "2x16x8")])
    print(format_table(["kernel", "16x16", "32x8", "2x16x8"], rows))
    print("\npaper geomeans: 1.25x / 1.39x / 1.34x")


def main(size=None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":
    main()
