"""Fig 16: HB vs a hierarchical manycore (ET model) on irregular kernels.

Both machines get equal HBM2 bandwidth and equal area; the ET model has
1/8 the independent threads, 4x the cache capacity, and block-structured
(1024-bit channel) inter-cluster communication.  Total run time is
execution + inter-phase data transfer, as in the paper's figure:

* execution: measured by simulating each kernel on both machines;
* transfer: the partial results exchanged between program phases
  (contribution arrays, frontiers, output rows, forces), moved over HB's
  word-granular network vs the ET model's wide channels carrying sparse
  single-word payloads.

Paper's reading: ET's larger L2 occasionally helps execution, but HB's
thread density wins overall, and sparse transfers over wide channels
inflate ET's run time.

Each (machine, kernel) execution is one :class:`repro.orch.Job`; the
channel-model transfer pricing is analytic and lives in :func:`reduce`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..arch.config import HB_32x8
from ..baselines.hierarchical import WideChannelModel, WordChannelModel, et_config
from ..engine.stats import geomean
from ..kernels import registry
from ..session import run as run_kernel
from .common import suite_args

IRREGULAR = ("SpGEMM", "PR", "BFS", "BH")


def _phase_transfer_bytes(name: str, args: Dict[str, Any]) -> int:
    """Partial-result volume exchanged between program phases."""
    if name == "SpGEMM":
        return 8 * args["matrix"].nnz  # output rows gathered
    if name == "PR":
        return 4 * args["graph"].num_rows * args["iters"] * 2  # contribs
    if name == "BFS":
        return 8 * args["graph"].num_rows  # frontier + distance exchange
    if name == "BH":
        return 16 * args["num_bodies"] * 2  # bodies out, forces back
    raise KeyError(name)


def model_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: one kernel on one of the two machines."""
    name = params["kernel"]
    args = suite_args(name, params["size"])
    result = run_kernel(config, registry.SUITE[name].kernel, args)
    payload = result.to_dict()
    payload["transfer_bytes"] = _phase_transfer_bytes(name, args)
    return payload


def jobs(size: str = "small",
         kernels: Optional[Iterable[str]] = None) -> List[Any]:
    from ..arch.serialize import to_dict
    from ..orch import Job

    names = list(kernels) if kernels is not None else list(IRREGULAR)
    hb_cfg = HB_32x8
    et_cfg = et_config(hb_cfg.cell.tiles_x, hb_cfg.cell.tiles_y)
    out: List[Any] = []
    for model, cfg in (("hb", hb_cfg), ("et", et_cfg)):
        config_dict = to_dict(cfg)
        for name in names:
            out.append(Job(
                "fig16", f"{model}/{name}",
                "repro.experiments.fig16_vs_hierarchical:model_job",
                params={"kernel": name, "size": size},
                config=config_dict))
    return out


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    hb_cfg = HB_32x8
    # HB's inter-Cell cut: (1 mesh + 3 ruche) channels per row-direction.
    hb_channel = WordChannelModel(links=4 * hb_cfg.cell.tiles_y)
    et_channel = WideChannelModel()
    names = [k.partition("/")[2] for k in payloads if k.startswith("hb/")]
    rows: List[Dict[str, Any]] = []
    for name in names:
        hb_run = payloads[f"hb/{name}"]
        et_run = payloads[f"et/{name}"]
        payload = hb_run["transfer_bytes"]
        hb_xfer = hb_channel.transfer(payload).cycles
        et_xfer = et_channel.transfer(payload, sparse=True).cycles
        hb_total = hb_run["cycles"] + hb_xfer
        et_total = et_run["cycles"] + et_xfer
        rows.append({
            "kernel": name,
            "hb_exec": hb_run["cycles"],
            "hb_transfer": hb_xfer,
            "hb_total": hb_total,
            "et_exec": et_run["cycles"],
            "et_transfer": et_xfer,
            "et_total": et_total,
            "speedup": et_total / hb_total,
            "hb_cache_hit": hb_run["cache_hit_rate"],
            "et_cache_hit": et_run["cache_hit_rate"],
        })
    geo = geomean([r["speedup"] for r in rows])
    return {"rows": rows, "geomean_speedup": geo,
            "hb_config": hb_cfg.name,
            "et_config": et_config(hb_cfg.cell.tiles_x,
                                   hb_cfg.cell.tiles_y).name}


def run(size: str = "small",
        kernels: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size, kernels=kernels)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    print(f"== Fig 16: {out['hb_config']} vs {out['et_config']} ==")
    print(format_table(
        ["kernel", "HB exec", "HB xfer", "ET exec", "ET xfer", "HB speedup"],
        [(r["kernel"], r["hb_exec"], r["hb_transfer"], r["et_exec"],
          r["et_transfer"], r["speedup"]) for r in out["rows"]]))
    print(f"\ngeomean HB advantage: {out['geomean_speedup']:.2f}x")


def main(size=None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":
    main()
