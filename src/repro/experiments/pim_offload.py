"""PIM offload study: the same primitive tile-side vs memory-side.

For each registered :class:`repro.pim.kernels.Offload` (GEMV, DOT,
AXPY) this harness runs

* the tile-side kernel across the Cell's tile array, streaming operands
  through the NoC and caches the usual way, and
* the memory-side kernel on one control tile driving the Cell's PIM
  engine with AiM-style commands,

then compares cycles, an energy estimate (core EPI model tile-side;
per-PIM-op EPI plus the control tile memory-side), and -- the point of
the exercise -- the *functional results*, which must match bitwise
(inputs are integer-valued floats, so summation order cannot perturb
them; any difference is a real datapath bug).

``sweep_banks`` additionally re-runs the memory side with the HBM bank
count swept down, demonstrating that PIM cycles scale with the bank
parallelism (``MAC_ABK`` completion is the max over enabled banks).

This harness drives live machines (host-side bank preloads via
``setup=``), so it is not in the sweepable ``HARNESSES`` registry; run
it directly or through ``repro pim``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..arch.config import HB_16x8, MachineConfig, small_config
from ..energy.epi import kernel_energy, pim_energy
from ..pim.kernels import OFFLOADS
from ..session import run as session_run

SIZES = ("tiny", "small", "full")

#: Bank counts for the scaling sweep (every offload size keeps its rows
#: divisible by all of these).
BANK_SWEEP = (4, 8, 16)


def _base_config(size: str) -> MachineConfig:
    return small_config(4, 4) if size == "tiny" else HB_16x8


def _tile_energy_pj(result) -> float:
    """Core-side energy estimate from the run's instruction mix.

    Loads/stores are not counted separately by :class:`RunResult`; the
    non-int, non-fp remainder (memory ops and branches) is split evenly
    between the load and store classes -- a deliberate coarse estimate,
    consistent across both sides of the comparison.
    """
    mem = max(0.0, result.instructions
              - result.int_instructions - result.fp_instructions)
    return kernel_energy({
        "int": result.int_instructions,
        "fp": result.fp_instructions,
        "load": mem / 2,
        "store": mem / 2,
    }).total_pj


def _offload_args(off, config: MachineConfig, size: str) -> Dict[str, Any]:
    pim = config.pim
    return off.make_args(nbanks=config.timings.hbm.banks,
                        simd_width=pim.simd_width,
                        grf_entries=pim.grf_entries,
                        **off.sizes[size])


def run_offload(name: str, size: str = "small",
                config: Optional[MachineConfig] = None,
                cell: Tuple[int, int] = (0, 0),
                trace: Any = False, sanitize: Any = False,
                audit: Any = False) -> Dict[str, Any]:
    """One offload comparison; returns a JSON-able report dict."""
    if name not in OFFLOADS:
        raise ValueError(f"unknown offload kernel {name!r}; one of "
                         f"{sorted(OFFLOADS)}")
    if size not in SIZES:
        raise ValueError(f"size must be one of {SIZES}")
    off = OFFLOADS[name]
    base = config if config is not None else _base_config(size)
    pim_config = base if base.pim is not None else base.with_pim()

    tile_args = _offload_args(off, pim_config, size)
    tile_res = session_run(base, off.tile, tile_args, cell=cell,
                           trace=trace, sanitize=sanitize, audit=audit)

    pim_args = _offload_args(off, pim_config, size)

    def _preload(machine):
        off.preload(machine.memsys.pim_engines[cell], pim_args)

    pim_res = session_run(pim_config, off.pim, pim_args, cell=cell,
                          setup=_preload, keep_machine=True, trace=trace,
                          sanitize=sanitize, audit=audit)
    engine = pim_res.machine.memsys.pim_engines[cell]
    ops = engine.counters.as_dict()
    pim_res.machine = None  # drop live simulator state from the report

    match = tile_args["out"] == pim_args["out"]
    report = {
        "kernel": name,
        "size": size,
        "config": base.name,
        "match": bool(match),
        "tile": {
            "cycles": float(tile_res.cycles),
            "instructions": float(tile_res.instructions),
            "energy_pj": _tile_energy_pj(tile_res),
            "tiles": int(tile_res.num_tiles),
        },
        "pim": {
            "cycles": float(pim_res.cycles),
            "instructions": float(pim_res.instructions),
            "energy_pj": (pim_energy(ops).total_pj
                          + _tile_energy_pj(pim_res)),
            "ops": {k: int(v) for k, v in ops.items()},
        },
    }
    report["speedup"] = (report["tile"]["cycles"] / report["pim"]["cycles"]
                         if report["pim"]["cycles"] else 0.0)
    if trace:
        # Live Trace objects, not JSON-able: only set when tracing was
        # requested, so the plain report stays serializable.
        report["tile_trace"] = tile_res.trace
        report["pim_trace"] = pim_res.trace
    if not match:
        bad = [i for i, (a, b) in
               enumerate(zip(tile_args["out"], pim_args["out"])) if a != b]
        report["mismatch_indices"] = bad[:16]
    return report


def sweep_banks(name: str = "GEMV", size: str = "small",
                banks: Iterable[int] = BANK_SWEEP,
                config: Optional[MachineConfig] = None) -> Dict[str, Any]:
    """Memory-side cycles vs HBM bank count (the parallelism knob).

    More banks means more concurrent ``MAC_ABK`` lanes, so PIM cycles
    must not increase with the bank count; ``scales`` reports whether
    the sweep is monotone non-increasing.
    """
    base = config if config is not None else _base_config(size)
    points = []
    for nb in banks:
        rep = run_offload(name, size=size, config=base.with_hbm(banks=nb))
        points.append({"banks": nb, "pim_cycles": rep["pim"]["cycles"],
                       "match": rep["match"]})
    cycles = [p["pim_cycles"] for p in points]
    return {
        "kernel": name,
        "size": size,
        "points": points,
        "scales": all(b <= a for a, b in zip(cycles, cycles[1:])),
    }


def run(size: str = "small",
        config: Optional[MachineConfig] = None) -> Dict[str, Any]:
    """All offloads at one size, plus the GEMV bank-scaling sweep."""
    return {
        "kernels": {name: run_offload(name, size=size, config=config)
                    for name in OFFLOADS},
        "bank_sweep": sweep_banks("GEMV", size=size, config=config),
    }


def render(out: Dict[str, Any]) -> None:
    print("== PIM offload: tile-side vs memory-side ==")
    print(f"{'kernel':<8} {'tile cyc':>10} {'pim cyc':>10} {'speedup':>8} "
          f"{'tile pJ':>12} {'pim pJ':>12}  match")
    for name, rep in out["kernels"].items():
        print(f"{name:<8} {rep['tile']['cycles']:>10.0f} "
              f"{rep['pim']['cycles']:>10.0f} {rep['speedup']:>8.2f} "
              f"{rep['tile']['energy_pj']:>12.0f} "
              f"{rep['pim']['energy_pj']:>12.0f}  {rep['match']}")
    sweep = out["bank_sweep"]
    pts = ", ".join(f"{p['banks']}b={p['pim_cycles']:.0f}"
                    for p in sweep["points"])
    ok = "scales with banks" if sweep["scales"] else "DOES NOT SCALE"
    print(f"{sweep['kernel']} bank sweep: {pts} -- {ok}")


def main(size: Optional[str] = None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
