"""Tables I, II and IV as runnable harnesses.

* Table I: the benchmark <-> dwarf coverage matrix, generated from the
  kernel registry;
* Table II: the four machine configurations with derived storage and
  density figures cross-checked against the published column;
* Table IV: the cross-design density comparison from the area model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..arch.config import TABLE_II
from ..energy.area import TABLE_IV, density_ratios
from ..kernels.registry import SUITE
from ..workloads.graphs import standard_graphs


def table1(scale: float = 0.25) -> Dict[str, Any]:
    """Benchmarks with dwarfs and the CSR input set (Table I a+b)."""
    bench_rows = [
        {"name": b.name, "dwarf": b.dwarf, "category": b.category}
        for b in SUITE.values()
    ]
    graph_rows = []
    for name, g in standard_graphs(scale).items():
        graph_rows.append({
            "name": name,
            "nodes": g.num_rows,
            "nnz": g.nnz,
            "avg_degree": g.nnz / g.num_rows,
            "degree_cv": g.degree_cv(),
        })
    return {"benchmarks": bench_rows, "graphs": graph_rows}


def table2() -> List[Dict[str, Any]]:
    """Machine configurations with derived on-chip storage."""
    rows = []
    for name, cfg in TABLE_II.items():
        cell = cfg.cell
        cache_mb = cfg.cell_cache_bytes / (1 << 20)
        spm_kb = cell.num_tiles * 4 * 2  # 4 KB SPM + 4 KB icache per tile
        rows.append({
            "name": name,
            "core_array": f"{cell.tiles_x}x{cell.tiles_y}",
            "cell_cache_banks": cell.num_banks,
            "cell_cache_mb": cache_mb,
            "cell_sram_kb": spm_kb,
            "published_area_mm2": cfg.published.get("area_mm2"),
            "published_cores_per_mm2": cfg.published.get("cores_per_mm2"),
            "hbm_scale": cfg.hbm_scale,
        })
    return rows


def table4() -> List[Dict[str, Any]]:
    """The density-comparison table with recomputed 'Our x' columns."""
    ratios = density_ratios()
    rows = []
    for rec in TABLE_IV:
        r = ratios[rec.name]
        rows.append({
            "name": rec.name,
            "category": rec.category,
            "cores": rec.cores,
            "fpus": rec.fpus,
            "scaled_area_mm2": rec.scaled_area_mm2,
            "cores_per_mm2": r["core_density"],
            "our_core_x": r["core_ratio"],
            "fpus_per_mm2": r["fpu_density"],
            "our_fpu_x": r["fpu_ratio"],
        })
    return rows


def tables_job(params: Dict[str, Any], config) -> Dict[str, Any]:
    """Orchestrator run function: all three tables in one cheap job."""
    return {"table1": table1(params.get("scale", 0.25)),
            "table2": table2(),
            "table4": table4()}


def jobs(size: str = "small") -> List[Any]:
    from ..orch import Job

    # Tables are analytic (no simulation); one job covers all of them.
    # ``size`` only picks the Table I(b) graph scale.
    scale = {"tiny": 0.1, "small": 0.25, "full": 0.25}.get(size, 0.25)
    return [Job("tables", "all", "repro.experiments.tables:tables_job",
                params={"scale": scale})]


def reduce(payloads: Mapping[str, Dict[str, Any]]) -> Dict[str, Any]:
    return dict(payloads["all"])


def run(size: str = "small") -> Dict[str, Any]:
    from ..orch import execute_serial

    return reduce(execute_serial(jobs(size=size)))


def render(out: Dict[str, Any]) -> None:
    from ..perf.report import format_table

    t1 = out["table1"]
    print("== Table I(a): benchmarks ==")
    print(format_table(["kernel", "dwarf", "category"],
                       [(r["name"], r["dwarf"], r["category"])
                        for r in t1["benchmarks"]]))
    print("\n== Table I(b): CSR inputs (synthetic stand-ins) ==")
    print(format_table(["graph", "nodes", "nnz", "avg deg", "deg CV"],
                       [(r["name"], r["nodes"], r["nnz"], r["avg_degree"],
                         r["degree_cv"]) for r in t1["graphs"]]))
    print("\n== Table II: machine configurations ==")
    print(format_table(
        ["config", "cores", "banks", "cache MB", "area mm2", "cores/mm2"],
        [(r["name"], r["core_array"], r["cell_cache_banks"],
          r["cell_cache_mb"], r["published_area_mm2"],
          r["published_cores_per_mm2"]) for r in out["table2"]]))
    print("\n== Table IV: density comparison ==")
    print(format_table(
        ["chip", "category", "cores", "area mm2", "cores/mm2", "our x"],
        [(r["name"], r["category"], r["cores"], r["scaled_area_mm2"],
          r["cores_per_mm2"], r["our_core_x"]) for r in out["table4"]]))


def main(size: Optional[str] = None) -> None:
    render(run(size=size or "small"))


if __name__ == "__main__":
    main()
