"""Kernel IR: ops, per-tile context and programs."""

from .context import KernelContext
from .disasm import format_op, format_trace
from .ops import (
    AmoOp,
    BarrierOp,
    BranchOp,
    FenceOp,
    FpOp,
    IntOp,
    LoadOp,
    MemoryOps,
    Op,
    SleepOp,
    StoreOp,
    VecLoadOp,
)
from .program import Kernel, kernel

__all__ = [
    "Op",
    "IntOp",
    "FpOp",
    "LoadOp",
    "VecLoadOp",
    "StoreOp",
    "AmoOp",
    "FenceOp",
    "BarrierOp",
    "BranchOp",
    "SleepOp",
    "MemoryOps",
    "KernelContext",
    "Kernel",
    "kernel",
    "format_op",
    "format_trace",
]
