"""Per-tile kernel context: the API kernel code is written against.

A kernel is ``def kernel(t, args): yield ...`` where ``t`` is a
:class:`KernelContext`.  The context provides

* tile identity (global coordinates, Cell, tile-group rank and shape),
* register allocation,
* op constructors that assign program counters (with loop-back support so
  the icache model sees loops, not an infinite straight line),
* PGAS address helpers bound to this tile's position.

It deliberately mirrors the C/CUDA-flavoured examples in the paper
(Figs 6-8): ``__tile_x``/``__tile_y`` become ``t.tile_x``/``t.tile_y``,
``group_spm(x, y, p)`` becomes ``t.group_spm_ptr(dx, dy, off)``, and the
amoadd parallel for-loop becomes :meth:`amoadd`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..arch.geometry import Coord
from ..pgas import spaces
from .ops import (
    AmoOp,
    BarrierOp,
    BranchOp,
    FenceOp,
    FpOp,
    IntOp,
    LoadOp,
    PimFenceOp,
    PimIssueOp,
    PimReadOp,
    SleepOp,
    StoreOp,
    VecLoadOp,
)


class KernelContext:
    """Everything a kernel can see from one tile."""

    def __init__(self, node: Coord, cell_xy: Coord, cell_origin: Coord,
                 group_rank: int, group_size: int,
                 group_shape: Tuple[int, int], barrier_group: object,
                 num_groups: int = 1, group_index: int = 0) -> None:
        self.node = node
        self.cell_xy = cell_xy
        self._cell_origin = cell_origin
        self.group_rank = group_rank
        self.group_size = group_size
        self.group_shape = group_shape
        self.barrier_group = barrier_group
        self.num_groups = num_groups
        self.group_index = group_index
        self._next_reg = 1
        self._pc = 0
        # Recorded compute windows, by label (see :meth:`block`).
        self._blocks = {}
        # r0 behaves like RISC-V x0: always ready, never written.
        self.zero = 0

    # -- identity ---------------------------------------------------------

    @property
    def tile_x(self) -> int:
        """Tile x within its Cell (0-based)."""
        return self.node[0] - self._cell_origin[0]

    @property
    def tile_y(self) -> int:
        """Tile y within its Cell's compute array (0-based)."""
        return self.node[1] - self._cell_origin[1] - 1

    # -- registers and program counters ------------------------------------

    def reg(self) -> int:
        """Allocate a fresh virtual register."""
        r = self._next_reg
        self._next_reg += 1
        return r

    def regs(self, n: int) -> Tuple[int, ...]:
        return tuple(self.reg() for _ in range(n))

    def _pc_next(self) -> int:
        pc = self._pc
        self._pc += 1
        return pc

    def loop_top(self) -> int:
        """Mark the top of a loop; pass to :meth:`branch_back`."""
        return self._pc

    def branch_back(self, top: int, taken: bool = True,
                    srcs: Sequence[int] = ()) -> BranchOp:
        """The backward branch closing a loop.

        When taken, the pc rolls back to ``top`` so the next iteration
        re-fetches the same icache lines.  The static predictor guesses
        taken for backward branches, so only the final (fall-through)
        execution mispredicts.
        """
        op = BranchOp(taken=taken, backward=True, srcs=srcs, pc=self._pc_next())
        if taken:
            self._pc = top
        return op

    def branch_fwd(self, taken: bool, srcs: Sequence[int] = ()) -> BranchOp:
        """A forward branch; predicted not-taken, so taken ones flush."""
        return BranchOp(taken=taken, backward=False, srcs=srcs, pc=self._pc_next())

    # -- batched compute windows -------------------------------------------

    def block(self, label: str):
        """A recorded compute-only window (see :mod:`repro.engine.batch`).

        The first call for ``label`` returns a recording builder
        (``blk.recording`` is True); later calls return a replay handle
        for the cached window.  Both provide ``emit(iters)``, so the
        idiomatic use records lazily at the loop position -- keeping pcs
        identical to the hand-unrolled stream::

            blk = t.block("round")
            if blk.recording:
                ... blk.alu(...)/blk.load(...)/blk.branch_back() ...
            yield blk.emit(iters=ROUNDS)
        """
        from ..engine.batch import BlockBuilder, BlockReplay

        cached = self._blocks.get(label)
        if cached is not None:
            return BlockReplay(self, cached)
        return BlockBuilder(self, label)

    # -- compute ops --------------------------------------------------------

    # The compute/memory constructors below inline the pc bump
    # (``self._pc``) instead of calling :meth:`_pc_next`: kernels create
    # one op per simulated instruction, so each avoided call counts.

    def alu(self, dst: Optional[int] = None, srcs: Sequence[int] = ()) -> IntOp:
        pc = self._pc
        self._pc = pc + 1
        return IntOp(dst, srcs, 1, pc)

    def mul(self, dst: Optional[int] = None, srcs: Sequence[int] = ()) -> IntOp:
        pc = self._pc
        self._pc = pc + 1
        return IntOp(dst, srcs, 2, pc)

    def fadd(self, dst: int, srcs: Sequence[int] = ()) -> FpOp:
        pc = self._pc
        self._pc = pc + 1
        return FpOp(dst, srcs, "fadd", pc)

    def fmul(self, dst: int, srcs: Sequence[int] = ()) -> FpOp:
        pc = self._pc
        self._pc = pc + 1
        return FpOp(dst, srcs, "fmul", pc)

    def fma(self, dst: int, srcs: Sequence[int] = ()) -> FpOp:
        pc = self._pc
        self._pc = pc + 1
        return FpOp(dst, srcs, "fma", pc)

    def fdiv(self, dst: int, srcs: Sequence[int] = ()) -> FpOp:
        pc = self._pc
        self._pc = pc + 1
        return FpOp(dst, srcs, "fdiv", pc)

    def fsqrt(self, dst: int, srcs: Sequence[int] = ()) -> FpOp:
        pc = self._pc
        self._pc = pc + 1
        return FpOp(dst, srcs, "fsqrt", pc)

    # -- memory ops ----------------------------------------------------------

    def load(self, addr: int, dst: Optional[int] = None,
             srcs: Sequence[int] = (), racy: bool = False) -> LoadOp:
        pc = self._pc
        self._pc = pc + 1
        if dst is None:
            dst = self._next_reg
            self._next_reg = dst + 1
        return LoadOp(dst, addr, srcs, pc, racy)

    def vload(self, addr: int, n: int = 4, srcs: Sequence[int] = (),
              racy: bool = False,
              dsts: Optional[Sequence[int]] = None) -> VecLoadOp:
        """``n`` sequential word loads (the Load Packet Compression idiom).

        ``dsts`` names the destination registers explicitly (they must
        number ``n``); kernels with recorded compute windows use this to
        land each stripe in a fixed register set so the window's operand
        tuples stay valid across iterations.  Timing is identical either
        way -- ready times are tracked per register id.
        """
        if dsts is None:
            dsts = self.regs(n)
        elif len(dsts) != n:
            raise ValueError(f"vload of {n} words got {len(dsts)} dsts")
        return VecLoadOp(dsts, addr, srcs=srcs, pc=self._pc_next(),
                         racy=racy)

    def store(self, addr: int, srcs: Sequence[int] = (),
              racy: bool = False) -> StoreOp:
        pc = self._pc
        self._pc = pc + 1
        return StoreOp(addr, srcs, pc, racy)

    def amoadd(self, addr: int, value: int = 1) -> AmoOp:
        return AmoOp(self.reg(), addr, "add", value, pc=self._pc_next())

    def amoor(self, addr: int, value: int) -> AmoOp:
        return AmoOp(self.reg(), addr, "or", value, pc=self._pc_next())

    def amoswap(self, addr: int, value: int) -> AmoOp:
        return AmoOp(self.reg(), addr, "swap", value, pc=self._pc_next())

    def fence(self) -> FenceOp:
        return FenceOp(pc=self._pc_next())

    def barrier(self) -> BarrierOp:
        return BarrierOp(group=self.barrier_group, pc=self._pc_next())

    def sleep(self, cycles: int) -> SleepOp:
        return SleepOp(cycles, pc=self._pc_next())

    # -- processing-in-memory ops --------------------------------------------

    def pim_issue(self, command: object,
                  addr: Optional[int] = None) -> PimIssueOp:
        """Fire-and-forget PIM command to this Cell's channel (or ``addr``)."""
        if addr is None:
            addr = self.pim()
        return PimIssueOp(addr, command, pc=self._pc_next())

    def pim_read(self, command: object,
                 addr: Optional[int] = None) -> PimReadOp:
        """Blocking PIM command; ``yield`` returns its payload tuple."""
        if addr is None:
            addr = self.pim()
        return PimReadOp(addr, command, pc=self._pc_next())

    def pim_fence(self) -> PimFenceOp:
        """Wait for every PIM command this tile has issued."""
        return PimFenceOp(pc=self._pc_next())

    # -- PGAS address helpers -------------------------------------------------

    def spm(self, offset: int) -> int:
        """This tile's own scratchpad."""
        return spaces.local_spm(offset)

    def group_spm_ptr(self, dx: int, dy: int, offset: int) -> int:
        """A neighbour tile's scratchpad, by relative tile offset."""
        return spaces.group_spm(self.node[0] + dx, self.node[1] + dy, offset)

    def tile_spm_ptr(self, tile_x: int, tile_y: int, offset: int) -> int:
        """Another tile's scratchpad by cell-local tile coordinates."""
        ox, oy = self._cell_origin
        return spaces.group_spm(ox + tile_x, oy + 1 + tile_y, offset)

    def local_dram(self, offset: int) -> int:
        return spaces.local_dram(offset)

    def group_dram(self, cell_x: int, cell_y: int, offset: int) -> int:
        return spaces.group_dram(cell_x, cell_y, offset)

    def global_dram(self, offset: int) -> int:
        return spaces.global_dram(offset)

    def pim(self, channel: int = 0) -> int:
        """This Cell's PIM command window (one per pseudo-channel)."""
        return spaces.pim_window(self.cell_xy[0], self.cell_xy[1], channel)
