"""Human-readable formatting of IR ops, for debugging and test failure
messages."""

from __future__ import annotations

from typing import Iterable, List

from ..pgas.spaces import decode
from .ops import (
    AmoOp,
    BarrierOp,
    BranchOp,
    FenceOp,
    FpOp,
    IntOp,
    LoadOp,
    Op,
    SleepOp,
    StoreOp,
    VecLoadOp,
)


def _addr(addr: int) -> str:
    dec = decode(addr)
    if dec.field_a or dec.field_b:
        return f"{dec.space.name}[{dec.field_a},{dec.field_b}]+{dec.offset:#x}"
    return f"{dec.space.name}+{dec.offset:#x}"


def _regs(srcs: Iterable[int]) -> str:
    return ",".join(f"r{s}" for s in srcs)


def format_op(op: Op) -> str:
    """One-line disassembly of a single op."""
    pc = f"{op.pc:6d}: "
    if isinstance(op, IntOp):
        name = "mul" if op.latency == 2 else "int"
        dst = f"r{op.dst}" if op.dst is not None else "-"
        return f"{pc}{name:8s}{dst} <- {_regs(op.srcs)}"
    if isinstance(op, FpOp):
        dst = f"r{op.dst}" if op.dst is not None else "-"
        return f"{pc}{op.unit:8s}{dst} <- {_regs(op.srcs)}"
    if isinstance(op, LoadOp):
        return f"{pc}{'load':8s}r{op.dst} <- {_addr(op.addr)}"
    if isinstance(op, VecLoadOp):
        dsts = ",".join(f"r{d}" for d in op.dsts)
        return f"{pc}{'vload':8s}{dsts} <- {_addr(op.addr)}"
    if isinstance(op, StoreOp):
        return f"{pc}{'store':8s}{_addr(op.addr)} <- {_regs(op.srcs) or '-'}"
    if isinstance(op, AmoOp):
        return f"{pc}{'amo' + op.kind:8s}r{op.dst} <- {_addr(op.addr)}, {op.value}"
    if isinstance(op, FenceOp):
        return f"{pc}fence"
    if isinstance(op, BarrierOp):
        return f"{pc}barrier"
    if isinstance(op, BranchOp):
        direction = "b" if op.backward else "f"
        outcome = "taken" if op.taken else "fallthrough"
        return f"{pc}{'br.' + direction:8s}{outcome}"
    if isinstance(op, SleepOp):
        return f"{pc}{'sleep':8s}{op.cycles}"
    return f"{pc}{type(op).__name__}"


def format_trace(ops: Iterable[Op], limit: int = 200) -> str:
    """Disassemble a sequence of ops, truncating long traces."""
    lines: List[str] = []
    for i, op in enumerate(ops):
        if i >= limit:
            lines.append(f"... ({i}+ ops)")
            break
        lines.append(format_op(op))
    return "\n".join(lines)
