"""The kernel IR: the timed operations a tile core executes.

Kernels are Python generators that *functionally* compute their result
while yielding these ops for timing.  Registers are small integers
allocated by the per-tile kernel context; the core model tracks a ready
time per register to reproduce single-issue in-order RAW/bypass stalls.

Every op carries a ``pc`` (assigned by the kernel context) so the
direct-mapped icache model sees a realistic fetch stream: loop bodies
revisit the same lines, straight-line code streams through new ones.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class Op:
    """Base of all IR operations."""

    __slots__ = ("pc",)

    def __init__(self, pc: int = 0) -> None:
        self.pc = pc


class IntOp(Op):
    """Integer ALU op (also covers address arithmetic and integer mul)."""

    __slots__ = ("dst", "srcs", "latency")

    def __init__(self, dst: Optional[int], srcs: Sequence[int] = (),
                 latency: int = 1, pc: int = 0) -> None:
        self.pc = pc
        self.dst = dst
        self.srcs = tuple(srcs)
        self.latency = latency


class FpOp(Op):
    """Floating-point op; ``unit`` picks the latency class."""

    __slots__ = ("dst", "srcs", "unit")
    UNITS = ("fadd", "fmul", "fma", "fdiv", "fsqrt")

    def __init__(self, dst: Optional[int], srcs: Sequence[int] = (),
                 unit: str = "fadd", pc: int = 0) -> None:
        self.pc = pc
        if unit not in self.UNITS:
            raise ValueError(f"unknown FP unit {unit!r}")
        self.dst = dst
        self.srcs = tuple(srcs)
        self.unit = unit


class LoadOp(Op):
    """A word load.  Local-SPM loads complete in the pipeline; remote
    loads (other SPMs, DRAM spaces) become network packets and resolve
    through the non-blocking scoreboard.

    ``racy`` marks an access that is unsynchronized *by design* (e.g. a
    benign stale read that a later atomic claim makes harmless); the
    sanitizer will not report races involving it.  Timing ignores it.
    """

    __slots__ = ("dst", "addr", "srcs", "racy")

    def __init__(self, dst: int, addr: int, srcs: Sequence[int] = (),
                 pc: int = 0, racy: bool = False) -> None:
        self.pc = pc
        self.dst = dst
        self.addr = addr
        self.srcs = tuple(srcs)
        self.racy = racy


class VecLoadOp(Op):
    """Four sequential word loads from one base address.

    This is the idiom Load Packet Compression recognizes: with the
    feature enabled the whole group travels as one compressed request;
    without it the core issues four independent loads.
    """

    __slots__ = ("dsts", "addr", "srcs", "racy")

    def __init__(self, dsts: Sequence[int], addr: int,
                 srcs: Sequence[int] = (), pc: int = 0,
                 racy: bool = False) -> None:
        self.pc = pc
        self.dsts = tuple(dsts)
        self.addr = addr
        self.srcs = tuple(srcs)
        self.racy = racy


class StoreOp(Op):
    """A word store; non-blocking, tracked for fence completion.

    ``racy`` has the same meaning as on :class:`LoadOp`.
    """

    __slots__ = ("addr", "srcs", "racy")

    def __init__(self, addr: int, srcs: Sequence[int] = (), pc: int = 0,
                 racy: bool = False) -> None:
        self.pc = pc
        self.addr = addr
        self.srcs = tuple(srcs)
        self.racy = racy


class AmoOp(Op):
    """Remote atomic on a cache bank (amoadd/amoor/amoswap/...).

    The functional update happens at the cycle the packet reaches the
    owning bank, so work distribution orders exactly as timed.  The old
    value is sent back into the kernel generator.
    """

    __slots__ = ("dst", "addr", "kind", "value", "srcs")
    KINDS = ("add", "or", "and", "xor", "swap", "min", "max")

    def __init__(self, dst: Optional[int], addr: int, kind: str, value: int,
                 srcs: Sequence[int] = (), pc: int = 0) -> None:
        self.pc = pc
        if kind not in self.KINDS:
            raise ValueError(f"unknown AMO kind {kind!r}")
        self.dst = dst
        self.addr = addr
        self.kind = kind
        self.value = value
        self.srcs = tuple(srcs)


class FenceOp(Op):
    """Memory fence: wait until every outstanding request has completed."""

    __slots__ = ()


class BarrierOp(Op):
    """Join this tile's barrier group (HW tree or SW fallback)."""

    __slots__ = ("group",)

    def __init__(self, group: Optional[object] = None, pc: int = 0) -> None:
        self.pc = pc
        self.group = group


class BranchOp(Op):
    """A conditional branch with its actual outcome.

    The static predictor takes backward branches and falls through
    forward ones; a wrong guess costs the 2-cycle flush.
    """

    __slots__ = ("taken", "backward", "srcs")

    def __init__(self, taken: bool, backward: bool,
                 srcs: Sequence[int] = (), pc: int = 0) -> None:
        self.pc = pc
        self.taken = taken
        self.backward = backward
        self.srcs = tuple(srcs)


class SleepOp(Op):
    """Idle for a fixed number of cycles (host-side pacing, test aid)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int, pc: int = 0) -> None:
        self.pc = pc
        self.cycles = cycles


AnyOp = Op
MemoryOps: Tuple[type, ...] = (LoadOp, VecLoadOp, StoreOp, AmoOp)
