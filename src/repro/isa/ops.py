"""The kernel IR: the timed operations a tile core executes.

Kernels are Python generators that *functionally* compute their result
while yielding these ops for timing.  Registers are small integers
allocated by the per-tile kernel context; the core model tracks a ready
time per register to reproduce single-issue in-order RAW/bypass stalls.

Every op carries a ``pc`` (assigned by the kernel context) so the
direct-mapped icache model sees a realistic fetch stream: loop bodies
revisit the same lines, straight-line code streams through new ones.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class Op:
    """Base of all IR operations."""

    __slots__ = ("pc",)

    def __init__(self, pc: int = 0) -> None:
        self.pc = pc


class IntOp(Op):
    """Integer ALU op (also covers address arithmetic and integer mul)."""

    __slots__ = ("dst", "srcs", "latency")

    def __init__(self, dst: Optional[int], srcs: Sequence[int] = (),
                 latency: int = 1, pc: int = 0) -> None:
        self.pc = pc
        self.dst = dst
        self.srcs = tuple(srcs)
        self.latency = latency


class FpOp(Op):
    """Floating-point op; ``unit`` picks the latency class."""

    __slots__ = ("dst", "srcs", "unit")
    UNITS = ("fadd", "fmul", "fma", "fdiv", "fsqrt")

    def __init__(self, dst: Optional[int], srcs: Sequence[int] = (),
                 unit: str = "fadd", pc: int = 0) -> None:
        self.pc = pc
        if unit not in self.UNITS:
            raise ValueError(f"unknown FP unit {unit!r}")
        self.dst = dst
        self.srcs = tuple(srcs)
        self.unit = unit


class LoadOp(Op):
    """A word load.  Local-SPM loads complete in the pipeline; remote
    loads (other SPMs, DRAM spaces) become network packets and resolve
    through the non-blocking scoreboard.

    ``racy`` marks an access that is unsynchronized *by design* (e.g. a
    benign stale read that a later atomic claim makes harmless); the
    sanitizer will not report races involving it.  Timing ignores it.
    """

    __slots__ = ("dst", "addr", "srcs", "racy")

    def __init__(self, dst: int, addr: int, srcs: Sequence[int] = (),
                 pc: int = 0, racy: bool = False) -> None:
        self.pc = pc
        self.dst = dst
        self.addr = addr
        self.srcs = tuple(srcs)
        self.racy = racy


class VecLoadOp(Op):
    """Four sequential word loads from one base address.

    This is the idiom Load Packet Compression recognizes: with the
    feature enabled the whole group travels as one compressed request;
    without it the core issues four independent loads.
    """

    __slots__ = ("dsts", "addr", "srcs", "racy")

    def __init__(self, dsts: Sequence[int], addr: int,
                 srcs: Sequence[int] = (), pc: int = 0,
                 racy: bool = False) -> None:
        self.pc = pc
        self.dsts = tuple(dsts)
        self.addr = addr
        self.srcs = tuple(srcs)
        self.racy = racy


class StoreOp(Op):
    """A word store; non-blocking, tracked for fence completion.

    ``racy`` has the same meaning as on :class:`LoadOp`.
    """

    __slots__ = ("addr", "srcs", "racy")

    def __init__(self, addr: int, srcs: Sequence[int] = (), pc: int = 0,
                 racy: bool = False) -> None:
        self.pc = pc
        self.addr = addr
        self.srcs = tuple(srcs)
        self.racy = racy


class AmoOp(Op):
    """Remote atomic on a cache bank (amoadd/amoor/amoswap/...).

    The functional update happens at the cycle the packet reaches the
    owning bank, so work distribution orders exactly as timed.  The old
    value is sent back into the kernel generator.
    """

    __slots__ = ("dst", "addr", "kind", "value", "srcs")
    KINDS = ("add", "or", "and", "xor", "swap", "min", "max")

    def __init__(self, dst: Optional[int], addr: int, kind: str, value: int,
                 srcs: Sequence[int] = (), pc: int = 0) -> None:
        self.pc = pc
        if kind not in self.KINDS:
            raise ValueError(f"unknown AMO kind {kind!r}")
        self.dst = dst
        self.addr = addr
        self.kind = kind
        self.value = value
        self.srcs = tuple(srcs)


class FenceOp(Op):
    """Memory fence: wait until every outstanding request has completed."""

    __slots__ = ()


class BarrierOp(Op):
    """Join this tile's barrier group (HW tree or SW fallback)."""

    __slots__ = ("group",)

    def __init__(self, group: Optional[object] = None, pc: int = 0) -> None:
        self.pc = pc
        self.group = group


class BranchOp(Op):
    """A conditional branch with its actual outcome.

    The static predictor takes backward branches and falls through
    forward ones; a wrong guess costs the 2-cycle flush.
    """

    __slots__ = ("taken", "backward", "srcs")

    def __init__(self, taken: bool, backward: bool,
                 srcs: Sequence[int] = (), pc: int = 0) -> None:
        self.pc = pc
        self.taken = taken
        self.backward = backward
        self.srcs = tuple(srcs)


class SleepOp(Op):
    """Idle for a fixed number of cycles (host-side pacing, test aid)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int, pc: int = 0) -> None:
        self.pc = pc
        self.cycles = cycles


class PimIssueOp(Op):
    """Fire-and-forget PIM command write to a Cell's PIM window.

    Non-blocking like a store: the core tracks the in-flight command
    until a :class:`PimFenceOp` drains it.  ``addr`` is a
    ``Space.PIM`` address; ``command`` a :class:`repro.pim.PimCommand`.
    """

    __slots__ = ("addr", "command", "srcs")

    def __init__(self, addr: int, command: object,
                 srcs: Sequence[int] = (), pc: int = 0) -> None:
        self.pc = pc
        self.addr = addr
        self.command = command
        self.srcs = tuple(srcs)


class PimReadOp(Op):
    """Blocking PIM command whose payload returns to the kernel.

    Used for ``RD_MAC``: the generator receives the tuple of read
    values, the way an :class:`AmoOp` receives the old word.
    """

    __slots__ = ("addr", "command", "srcs")

    def __init__(self, addr: int, command: object,
                 srcs: Sequence[int] = (), pc: int = 0) -> None:
        self.pc = pc
        self.addr = addr
        self.command = command
        self.srcs = tuple(srcs)


class PimFenceOp(Op):
    """Wait until every PIM command this tile issued has completed.

    PIM completion is *only* observable through this fence (or a
    ``pim_read`` ordered behind the commands at the channel): ordinary
    fences do not cover the PIM window.
    """

    __slots__ = ()


#: Decoded-entry kinds for :class:`BlockOp` bodies.  Every entry is a
#: uniform 6-tuple ``(kind, pc, dst, srcs, a, b)``:
#:
#: * ``K_INT``: ``a`` = latency
#: * ``K_FP``:  ``a`` = unit name, ``b`` = True for the iterative unit
#: * ``K_BR``:  ``a`` = taken (``None`` = taken except final iteration),
#:   ``b`` = backward
#: * ``K_LD``:  ``a`` = address (Local-SPM space only)
K_INT, K_FP, K_BR, K_LD = 0, 1, 2, 3

_FP_ITERATIVE = ("fdiv", "fsqrt")


class BlockOp(Op):
    """A pre-decoded compute-only instruction region, replayed ``iters``
    times as one op.

    This is the memoized-decode/batched form of the IR: the kernel
    context records a loop body (or straight-line region) *once*, each
    instruction decoded down to a flat operand tuple, and the core's
    replay loop executes the whole window without touching the kernel
    generator, without building per-instruction op objects, and -- once
    the iteration reaches a verified steady state -- by advancing whole
    iterations arithmetically.

    Only timing-closed ops may appear in a body: int/fp compute,
    branches with static outcomes, and Local-SPM loads (whose timing
    never leaves the tile).  Anything that can touch shared state --
    remote memory, atomics, fences, barriers -- stays outside so the
    block advances the tile's local clock atomically in host order.

    When any observability hook (trace/sanitize/audit) is attached, the
    core never sees a ``BlockOp``: :func:`repro.engine.batch.expand_blocks`
    re-materializes the recorded ops one by one, so hook-on runs take
    the classic per-op path (and stay cycle-identical to batched runs).
    """

    __slots__ = ("body", "iters", "end_pc", "writes", "readonly",
                 "branch_count", "load_count", "has_fdiv",
                 "_decoded", "_decoded_width")

    def __init__(self, body, iters: int, end_pc: int) -> None:
        self.pc = body[0][1] if body else end_pc
        self.body = tuple(body)
        self.iters = iters
        self.end_pc = end_pc
        writes = []
        reads = []
        branch_count = 0
        load_count = 0
        has_fdiv = False
        for kind, _pc, dst, srcs, a, b in self.body:
            for s in srcs:
                if s not in reads:
                    reads.append(s)
            if kind == K_BR:
                branch_count += 1
                continue
            if kind == K_LD:
                load_count += 1
            elif kind == K_FP and b:
                has_fdiv = True
            if dst is not None and dst not in writes:
                writes.append(dst)
        self.writes = tuple(writes)
        self.readonly = tuple(r for r in reads if r not in writes)
        self.branch_count = branch_count
        self.load_count = load_count
        self.has_fdiv = has_fdiv
        self._decoded = None
        self._decoded_width = 0

    def decoded_for(self, line_instrs: int):
        """The replay-ready body: entries with the pc pre-divided down to
        its icache line number, memoized per line width.  The replay loop
        iterates these directly -- one tuple unpack per instruction, no
        per-execution division."""
        if self._decoded is None or self._decoded_width != line_instrs:
            self._decoded = tuple(
                (kind, pc // line_instrs, dst, srcs, a, b)
                for kind, pc, dst, srcs, a, b in self.body)
            self._decoded_width = line_instrs
        return self._decoded

    def replayed(self, iters: int) -> "BlockOp":
        """This block with a different iteration count (shared body)."""
        if iters == self.iters:
            return self
        clone = BlockOp.__new__(BlockOp)
        for name in ("pc", "body", "end_pc", "writes", "readonly",
                     "branch_count", "load_count", "has_fdiv",
                     "_decoded", "_decoded_width"):
            setattr(clone, name, getattr(self, name))
        clone.iters = iters
        return clone

    def expand(self):
        """Yield the equivalent per-instruction op stream.

        Used by the exact path (trace/sanitize/audit attached): the
        expanded ops carry the same pcs, registers, addresses and branch
        outcomes the recorder saw, so the classic interpreter -- and
        every hook observing it -- sees the identical instruction
        stream a hand-unrolled kernel would have yielded.
        """
        last = self.iters - 1
        for i in range(self.iters):
            for kind, pc, dst, srcs, a, b in self.body:
                if kind == K_INT:
                    yield IntOp(dst, srcs, a, pc)
                elif kind == K_FP:
                    yield FpOp(dst, srcs, a, pc)
                elif kind == K_BR:
                    yield BranchOp(a if a is not None else i < last, b,
                                   srcs, pc)
                else:
                    yield LoadOp(dst, a, srcs, pc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BlockOp({len(self.body)} ops x {self.iters} iters, "
                f"pc={self.pc}..{self.end_pc})")


AnyOp = Op
MemoryOps: Tuple[type, ...] = (LoadOp, VecLoadOp, StoreOp, AmoOp)
