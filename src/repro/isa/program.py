"""Kernel programs: a name, a generator factory and metadata.

A :class:`Kernel` is what the host runtime loads onto a Cell
(``cell.load_kernel``).  Its factory is called once per tile with that
tile's :class:`~repro.isa.context.KernelContext` and the launch
arguments, and must return the tile's op generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator

from .context import KernelContext

KernelFactory = Callable[..., Generator[Any, Any, Any]]


@dataclass(frozen=True)
class Kernel:
    """A loadable SPMD program."""

    name: str
    factory: KernelFactory
    dwarf: str = ""  # Berkeley dwarf(s) this kernel covers (Table I)
    category: str = ""  # compute-low-comm / compute-sequential / memory-irregular
    meta: Dict[str, Any] = field(default_factory=dict)

    def instantiate(self, ctx: KernelContext, args: Any) -> Generator[Any, Any, Any]:
        return self.factory(ctx, args)


def kernel(name: str, dwarf: str = "", category: str = "",
           **meta: Any) -> Callable[[KernelFactory], Kernel]:
    """Decorator turning a generator function into a :class:`Kernel`."""

    def wrap(fn: KernelFactory) -> Kernel:
        return Kernel(name=name, factory=fn, dwarf=dwarf,
                      category=category, meta=dict(meta))

    return wrap
