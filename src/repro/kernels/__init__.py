"""The parallel benchmark suite (paper Table I)."""

from . import (
    aes,
    barneshut,
    bfs,
    blackscholes,
    fft,
    jacobi,
    pagerank,
    sgemm,
    smithwaterman,
    spgemm,
)
from .registry import FIG11_ORDER, SUITE, Benchmark, fast_args

__all__ = [
    "SUITE",
    "FIG11_ORDER",
    "Benchmark",
    "fast_args",
    "aes",
    "blackscholes",
    "smithwaterman",
    "sgemm",
    "fft",
    "jacobi",
    "spgemm",
    "pagerank",
    "bfs",
    "barneshut",
]
