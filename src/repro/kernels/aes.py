"""AES-128 CTR-style block encryption (Table I: Combinational Logic dwarf).

Compute-intensive, low-communication.  Each tile keeps a private copy of
the S-box in Local SPM (the paper calls this out explicitly), streams its
share of 16-byte blocks from Local DRAM, runs ten rounds of table lookups
and byte mixing per block, and writes ciphertext back.
"""

from __future__ import annotations

from typing import Any, Dict

from ..workloads.dense import aes_blocks
from .base import Layout, copy_dram_to_spm, num_tiles, range_split, sync, tile_id
from ..isa.program import kernel

SBOX_WORDS = 64  # 256-byte S-box
ROUNDS = 10


def make_args(blocks_per_tile: int = 4, tiles: int = 128,
              seed: int = 0) -> Dict[str, Any]:
    """Plan the Local-DRAM layout and generate plaintext blocks.

    The *total* block count is fixed by ``blocks_per_tile * tiles``; at
    launch the work is re-split over however many tiles the machine has,
    so configs of different density see identical work (Fig 10).
    """
    total_blocks = blocks_per_tile * tiles
    layout = Layout()
    return {
        "sbox": layout.words("sbox", SBOX_WORDS),
        "input": layout.array("input", 16 * total_blocks),
        "output": layout.array("output", 16 * total_blocks),
        "total_blocks": total_blocks,
        "plaintext": aes_blocks(total_blocks, seed=seed),
    }


@kernel("AES", dwarf="Combinational Logic", category="compute-low-comm")
def aes_kernel(t, args):
    # Phase 1: every tile caches the S-box in its scratchpad.
    yield from copy_dram_to_spm(t, args["sbox"], 0, SBOX_WORDS)
    yield from sync(t)


    tid = tile_id(t)
    blk_lo, blk_hi = range_split(args["total_blocks"], num_tiles(t), tid)

    # Fixed register set: each block's state lands in the same four
    # registers (and lookups in one scratch reg) so the recorded round
    # window's operand tuples stay valid across blocks.  Ready times are
    # tracked per register id, so reuse is timing-neutral.
    state = list(t.regs(4))
    lut = t.reg()

    block_top = t.loop_top()
    for b in range(blk_lo, blk_hi):
        yield t.vload(t.local_dram(args["input"] + 16 * b), dsts=state)
        # Initial AddRoundKey.
        for w in state:
            yield t.alu(w, [w])
        # The ten AES rounds are one recorded compute window: all-local
        # work (S-box lookups hit the tile's own scratchpad), so the
        # core replays it without re-decoding and folds the steady
        # state.  Recorded lazily here -- at the loop position -- so the
        # pcs match the hand-unrolled stream exactly.
        rounds = t.block("round")
        if rounds.recording:
            # SubBytes: 16 S-box lookups from the local scratchpad; the
            # table index depends on the state word (real data hazard).
            for byte in range(16):
                word = state[byte % 4]
                rounds.load(t.spm(4 * (byte * 4 % SBOX_WORDS)),
                            dst=lut, srcs=[word])
                rounds.alu(word, [word, lut])
            # ShiftRows + MixColumns + AddRoundKey: byte shuffles and xors.
            for col in range(4):
                rounds.alu(state[col], [state[col], state[(col + 1) % 4]])
                rounds.mul(state[col], [state[col]])
                rounds.alu(state[col], [state[col], state[(col + 3) % 4]])
            rounds.branch_back()
        yield rounds.emit(iters=ROUNDS)
        for i, w in enumerate(state):
            yield t.store(t.local_dram(args["output"] + 16 * b + 4 * i),
                          srcs=[w])
        yield t.branch_back(block_top, taken=(b < blk_hi - 1))
    yield from sync(t)


KERNEL = aes_kernel
