"""Barnes-Hut N-body force computation (Table I: N-Body Methods dwarf).

Memory-intensive, irregular: bodies are distributed with an amoadd
parallel-for; each body traverses the shared octree with a *private
stack allocated in Local DRAM* -- 4 KB per tile, the paper's example of
why Regional IPOLY hashing matters (without it, every tile's stack base
camps on the same cache bank).  Node visits mix pointer-chasing vloads,
an fsqrt + fdiv distance test, and data-dependent opening branches.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.bodies import Octree, plummer_sphere
from .base import Layout, sync, tile_id
from ..isa.program import kernel

NODE_WORDS = 8  # com.xyz, mass, half, child-block pointer, flags, pad
STACK_BYTES = 4096  # per-tile private stack in Local DRAM


def make_args(num_bodies: int = 160, theta: float = 0.8, tiles: int = 128,
              seed: int = 0) -> Dict[str, Any]:
    positions = plummer_sphere(num_bodies, seed=seed)
    tree = Octree(positions)
    layout = Layout()
    return {
        "tree": tree,
        "theta": theta,
        "num_bodies": num_bodies,
        "nodes": layout.array("nodes", 4 * NODE_WORDS * len(tree)),
        "bodies": layout.array("bodies", 16 * num_bodies),
        "forces": layout.array("forces", 16 * num_bodies),
        "counter": layout.array("counter", 64),
        # Last on purpose: on a machine with more tiles than ``tiles``
        # the extra tiles' stacks land past the layout's end -- still
        # disjoint per tile, instead of aliasing the counter word (the
        # race the sanitizer caught when tiny inputs ran on 128 tiles).
        "stacks": layout.array("stacks", STACK_BYTES * tiles),
    }


@kernel("BH", dwarf="N-Body Methods", category="memory-irregular")
def barneshut_kernel(t, args):
    tree: Octree = args["tree"]
    theta = args["theta"]
    # A Cell may traverse only a fraction of the bodies while holding the
    # full (duplicated) octree -- the 2x16x8 duplication model of Fig 15.
    nb = int(args["num_bodies"] * args.get("traverse_fraction", 1.0))

    tid = tile_id(t)
    stack_base = args["stacks"] + STACK_BYTES * tid

    body_top = t.loop_top()
    while True:
        body = yield t.amoadd(t.local_dram(args["counter"]), 1)
        yield t.branch_back(body_top, taken=(body < nb))
        if body >= nb:
            break
        bv = t.vload(t.local_dram(args["bodies"] + 16 * body))
        yield bv
        bx, by, bz, _bm = bv.dsts
        pos = tree.positions[body]
        ax, ay, az = t.reg(), t.reg(), t.reg()
        yield t.fmul(ax, [])
        yield t.fmul(ay, [])
        yield t.fmul(az, [])
        # Push the root onto the private Local-DRAM stack.
        sp = 0
        root_reg = t.reg()
        yield t.alu(root_reg)
        yield t.store(t.local_dram(stack_base), srcs=[root_reg])
        stack = [0]
        sp = 1
        walk_top = t.loop_top()
        while stack:
            # Pop: load the node index from the private stack.
            sp -= 1
            idx_ld = t.load(t.local_dram(stack_base + 4 * (sp % 1024)))
            yield idx_ld
            node = tree.nodes[stack.pop()]
            if node.mass == 0:
                yield t.branch_back(walk_top, taken=bool(stack))
                continue
            # Node record: two compressed 4-word loads (com, mass | geom).
            nv1 = t.vload(t.local_dram(args["nodes"] + 4 * NODE_WORDS * node.index))
            yield nv1
            nv2 = t.vload(t.local_dram(
                args["nodes"] + 4 * NODE_WORDS * node.index + 16))
            yield nv2
            cx, cy, cz, mass = nv1.dsts
            # Distance: 3 subs, 3 fma (squares), fsqrt, then the MAC test
            # divide -- the back-to-back iterative-unit visit the paper
            # flags for BH/BS.
            dx, dy, dz = t.reg(), t.reg(), t.reg()
            yield t.fadd(dx, [cx, bx])
            yield t.fadd(dy, [cy, by])
            yield t.fadd(dz, [cz, bz])
            d2 = t.reg()
            yield t.fmul(d2, [dx, dx])
            yield t.fma(d2, [d2, dy, dy])
            yield t.fma(d2, [d2, dz, dz])
            dist = t.reg()
            yield t.fsqrt(dist, [d2])
            ratio = t.reg()
            yield t.fdiv(ratio, [nv2.dsts[0], dist])
            d = node.com - pos
            dval = float(np.sqrt((d * d).sum()) + 1e-9)
            far = node.is_leaf or (2 * node.half) / dval < theta
            yield t.branch_fwd(taken=far, srcs=[ratio])
            if far:
                if not (node.is_leaf and node.body == body):
                    # Accumulate the force contribution.
                    inv3 = t.reg()
                    yield t.fmul(inv3, [dist, d2])
                    yield t.fdiv(inv3, [mass, inv3])
                    yield t.fma(ax, [ax, dx, inv3])
                    yield t.fma(ay, [ay, dy, inv3])
                    yield t.fma(az, [az, dz, inv3])
            else:
                # Open the node: push each present child onto the stack.
                for child in node.children:
                    if child is None:
                        continue
                    c_reg = t.reg()
                    yield t.alu(c_reg)
                    yield t.store(
                        t.local_dram(stack_base + 4 * (sp % 1024)),
                        srcs=[c_reg])
                    stack.append(child)
                    sp += 1
            yield t.branch_back(walk_top, taken=bool(stack))
        # Write the body's force vector.
        yield t.store(t.local_dram(args["forces"] + 16 * body), srcs=[ax])
        yield t.store(t.local_dram(args["forces"] + 16 * body + 4), srcs=[ay])
        yield t.store(t.local_dram(args["forces"] + 16 * body + 8), srcs=[az])
    yield from sync(t)


KERNEL = barneshut_kernel
