"""Shared kernel-authoring helpers.

Kernels in this suite follow the paper's idioms: copy hot data to SPM,
stream blocks with the vload (Load Packet Compression) idiom, distribute
irregular work with amoadd parallel-for loops, synchronize with the HW
barrier.  Generators here only *yield ops*; functional state lives in the
numpy arrays carried by the launch args.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..isa.context import KernelContext


class Layout:
    """Bump allocator for planning a Cell's Local-DRAM data layout.

    Used by ``make_args`` functions: addresses are virtual, so layouts can
    be planned host-side without touching the machine.
    """

    def __init__(self, base: int = 0x10000, align: int = 64) -> None:
        self._brk = base
        self._align = align
        self.offsets: Dict[str, int] = {}

    def array(self, name: str, nbytes: int) -> int:
        self._brk = (self._brk + self._align - 1) & ~(self._align - 1)
        self.offsets[name] = self._brk
        self._brk += max(nbytes, 4)
        return self.offsets[name]

    def words(self, name: str, nwords: int) -> int:
        return self.array(name, 4 * nwords)

    def __getitem__(self, name: str) -> int:
        return self.offsets[name]


def tile_id(t: KernelContext) -> int:
    """Flat id of this tile across all tile groups of the launch."""
    return t.group_index * t.group_size + t.group_rank


def num_tiles(t: KernelContext) -> int:
    return t.num_groups * t.group_size


def range_split(total: int, parts: int, index: int) -> Tuple[int, int]:
    """Even contiguous split of ``range(total)`` into ``parts`` pieces."""
    base, rem = divmod(total, parts)
    start = index * base + min(index, rem)
    end = start + base + (1 if index < rem else 0)
    return start, end


def copy_dram_to_spm(t: KernelContext, dram_base: int, spm_off: int,
                     words: int) -> Iterator:
    """Stream a block from Local DRAM into the local scratchpad.

    Uses the vload idiom so Load Packet Compression can kick in, and
    pipelines the stores behind the non-blocking loads.
    """
    top = t.loop_top()
    nchunks = (words + 3) // 4
    for c in range(nchunks):
        chunk = min(4, words - 4 * c)
        if chunk == 4:
            vl = t.vload(t.local_dram(dram_base + 16 * c))
            yield vl
            for i, reg in enumerate(vl.dsts):
                yield t.store(t.spm(spm_off + 16 * c + 4 * i), srcs=[reg])
        else:
            for i in range(chunk):
                ld = t.load(t.local_dram(dram_base + 16 * c + 4 * i))
                yield ld
                yield t.store(t.spm(spm_off + 16 * c + 4 * i), srcs=[ld.dst])
        yield t.branch_back(top, taken=(c < nchunks - 1))


def copy_spm_to_dram(t: KernelContext, spm_off: int, dram_base: int,
                     words: int) -> Iterator:
    """Stream a scratchpad block out to Local DRAM (write-validate path)."""
    top = t.loop_top()
    for w in range(words):
        ld = t.load(t.spm(spm_off + 4 * w))
        yield ld
        yield t.store(t.local_dram(dram_base + 4 * w), srcs=[ld.dst])
        yield t.branch_back(top, taken=(w < words - 1))


def stream_dram_block(t: KernelContext, dram_base: int, words: int) -> Iterator:
    """Read a sequential DRAM block without retaining it (warm-up/flush)."""
    top = t.loop_top()
    nchunks = (words + 3) // 4
    for c in range(nchunks):
        yield t.vload(t.local_dram(dram_base + 16 * c))
        yield t.branch_back(top, taken=(c < nchunks - 1))


def sync(t: KernelContext) -> Iterator:
    """Fence then barrier: the end-of-phase idiom."""
    yield t.fence()
    yield t.barrier()
