"""Direction-optimizing BFS (Table I: Graph Traversal dwarf).

The Beamer push/pull heuristic over a shared frontier:

* forward (push): amoadd parallel-for over the current frontier; each
  neighbour's distance word is a random DRAM load; unvisited nodes are
  marked with amoor into the dense next-frontier bitmap (Fig 8 verbatim);
* backward (pull): parallel-for over unvisited nodes; scan in-neighbours
  until one is in the current frontier (early-exit branch);
* switch when the frontier's edge count crosses the alpha/beta thresholds.

The traversal is *functional*: the frontier evolves exactly as the timed
amoadd/amoor ordering dictates, and tests check distances against a host
BFS.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.csr import CsrMatrix
from ..workloads.graphs import roadnet_like
from .base import Layout, num_tiles, range_split, sync, tile_id
from ..isa.program import kernel

ALPHA = 14  # push->pull switch: frontier edges > unvisited edges / ALPHA
BETA = 24  # pull->push switch: frontier < nodes / BETA


def reference_bfs(graph: CsrMatrix, source: int) -> np.ndarray:
    """Host-side BFS distances (graph rows = out-neighbours)."""
    n = graph.num_rows
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.row_slice(u):
                if dist[v] < 0:
                    dist[v] = level + 1
                    nxt.append(int(v))
        frontier = nxt
        level += 1
    return dist


def make_args(graph: CsrMatrix = None, source: int = 0,
              width: int = 24) -> Dict[str, Any]:
    if graph is None:
        graph = roadnet_like(width=width, height=width)
    n = graph.num_rows
    layout = Layout()
    return {
        "graph": graph,
        "tgraph": graph.transpose(),
        "source": source,
        "offsets": layout.words("offsets", n + 1),
        "indices": layout.words("indices", graph.nnz),
        "distance": layout.words("distance", n),
        "frontier": layout.words("frontier", n),
        "next_bitmap": layout.words("next_bitmap", (n + 31) // 32),
        "counters": layout.array("counters", 64 * 128),
        # Shared traversal state, mutated in timed order by all tiles.
        "state": {
            "distance": np.full(n, -1, dtype=np.int64),
            "frontier": [source],
            "next": set(),
            "level": 0,
            "visited_edges": 0,
        },
    }


def _should_pull(graph: CsrMatrix, state: Dict[str, Any]) -> bool:
    n = graph.num_rows
    frontier_edges = sum(graph.row_nnz(u) for u in state["frontier"])
    unvisited = int((state["distance"] < 0).sum())
    unvisited_edges = max(1, graph.nnz * unvisited // max(n, 1))
    if frontier_edges > unvisited_edges // ALPHA:
        return True
    if len(state["frontier"]) < n // BETA:
        return False
    return False


@kernel("BFS", dwarf="Graph Traversal", category="memory-irregular")
def bfs_kernel(t, args):
    g: CsrMatrix = args["graph"]
    tg: CsrMatrix = args["tgraph"]
    state = args["state"]
    n = g.num_rows

    # Tile 0's functional duty: seed the source (all tiles see the shared
    # state after the first barrier).
    if t.group_rank == 0 and t.group_index == 0:
        state["distance"][args["source"]] = 0
    yield t.barrier()

    epoch = 0
    while state["frontier"]:
        level = state["level"]
        pull = _should_pull(g, state)
        counter = args["counters"] + 64 * (epoch % 128)
        epoch += 1

        if not pull:
            # ---- forward (push) over the current frontier ----
            frontier = state["frontier"]
            top = t.loop_top()
            while True:
                i = yield t.amoadd(t.local_dram(counter), 1)
                yield t.branch_back(top, taken=(i < len(frontier)))
                if i >= len(frontier):
                    break
                src = frontier[i]
                f_ld = t.load(t.local_dram(args["frontier"] + 4 * (i % n)))
                yield f_ld
                ext = t.vload(t.local_dram(args["offsets"] + 4 * src), n=2)
                yield ext
                lo, hi = int(g.offsets[src]), int(g.offsets[src + 1])
                e_top = t.loop_top()
                for ee in range(lo, hi, 4):
                    ev = t.vload(t.local_dram(args["indices"] + 4 * ee))
                    yield ev
                    for e in range(ee, min(ee + 4, hi)):
                        nz = int(g.indices[e])
                        # Stale distance reads are benign: visitation is
                        # decided by the amoor claim below, never by this
                        # value (hence racy=True for the sanitizer).
                        d_ld = t.load(t.local_dram(args["distance"] + 4 * nz),
                                      racy=True)
                        yield d_ld
                        unvisited = state["distance"][nz] < 0
                        yield t.branch_fwd(taken=unvisited, srcs=[d_ld.dst])
                        if unvisited:
                            word, bit = nz // 32, nz % 32
                            old = yield t.amoor(
                                t.local_dram(args["next_bitmap"] + 4 * word),
                                1 << bit)
                            if not (old >> bit) & 1:
                                # This tile won the race: claim the node.
                                state["distance"][nz] = level + 1
                                state["next"].add(nz)
                                d_reg = t.reg()
                                yield t.alu(d_reg)
                                # Exclusive via the amoor claim; only the
                                # benign stale reads above observe it early.
                                yield t.store(
                                    t.local_dram(args["distance"] + 4 * nz),
                                    srcs=[d_reg], racy=True)
                    yield t.branch_back(e_top, taken=(ee + 4 < hi))
        else:
            # ---- backward (pull) over unvisited nodes ----
            in_frontier = set(state["frontier"])
            top = t.loop_top()
            while True:
                base = yield t.amoadd(t.local_dram(counter), 8)
                yield t.branch_back(top, taken=(base < n))
                if base >= n:
                    break
                for v in range(base, min(base + 8, n)):
                    if state["distance"][v] >= 0:
                        continue
                    ext = t.vload(t.local_dram(args["offsets"] + 4 * v), n=2)
                    yield ext
                    lo, hi = int(tg.offsets[v]), int(tg.offsets[v + 1])
                    found = False
                    e_top = t.loop_top()
                    for e in range(lo, hi):
                        u = int(tg.indices[e])
                        u_ld = t.load(t.local_dram(args["indices"] + 4 * e))
                        yield u_ld
                        # Benign stale read: membership in the frontier
                        # was fixed at the last sync; concurrent claims
                        # of still-unvisited nodes may race harmlessly.
                        d_ld = t.load(t.local_dram(args["distance"] + 4 * u),
                                      srcs=[u_ld.dst], racy=True)
                        yield d_ld
                        hit = u in in_frontier
                        yield t.branch_fwd(taken=hit, srcs=[d_ld.dst])
                        yield t.branch_back(e_top, taken=(not hit and e < hi - 1))
                        if hit:
                            found = True
                            break
                    if found:
                        state["distance"][v] = level + 1
                        state["next"].add(v)
                        dist_reg = t.reg()
                        yield t.alu(dist_reg)
                        # Exclusive: v was claimed by this tile's amoadd
                        # range; only benign stale reads race with it.
                        yield t.store(t.local_dram(args["distance"] + 4 * v),
                                      srcs=[dist_reg], racy=True)

        yield from sync(t)
        # Frontier compaction: each tile scans its bitmap slice...

        words = (n + 31) // 32
        w_lo, w_hi = range_split(words, num_tiles(t), tile_id(t))
        c_top = t.loop_top()
        for w in range(w_lo, w_hi):
            b_ld = t.load(t.local_dram(args["next_bitmap"] + 4 * w))
            yield b_ld
            yield t.branch_back(c_top, taken=(w < w_hi - 1))
        # ...and tile (0,0) publishes the new frontier functionally.
        if t.group_rank == 0 and t.group_index == 0:
            state["frontier"] = sorted(state["next"])
            state["next"] = set()
            state["level"] = level + 1
        yield from sync(t)
    yield from sync(t)


KERNEL = bfs_kernel
