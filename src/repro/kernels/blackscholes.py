"""Black-Scholes option pricing (Table I: MapReduce/dense dwarf).

Compute-intensive, low-communication, dominated by the FP pipeline:
log/exp/CND polynomial chains create long bypass dependences, and each
option prices through two divides and two square roots on the iterative
unit -- the stall signature Fig 11 reports for BS.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.dense import option_batch
from .base import Layout, num_tiles, range_split, sync, tile_id
from ..isa.program import kernel

CND_POLY_TERMS = 5  # Abramowitz-Stegun cumulative-normal polynomial


def reference_prices(batch) -> np.ndarray:
    """Host-side reference (call prices) for functional validation."""
    from math import erf, exp, log, sqrt

    out = np.zeros(len(batch))
    for i in range(len(batch)):
        s, k = float(batch.spot[i]), float(batch.strike[i])
        r, v, tt = float(batch.rate[i]), float(batch.volatility[i]), float(batch.expiry[i])
        d1 = (log(s / k) + (r + v * v / 2) * tt) / (v * sqrt(tt))
        d2 = d1 - v * sqrt(tt)
        nd1 = 0.5 * (1 + erf(d1 / sqrt(2)))
        nd2 = 0.5 * (1 + erf(d2 / sqrt(2)))
        out[i] = s * nd1 - k * exp(-r * tt) * nd2
    return out


def make_args(options_per_tile: int = 12, tiles: int = 128,
              seed: int = 0) -> Dict[str, Any]:
    n = options_per_tile * tiles

    layout = Layout()
    return {
        "inputs": layout.array("inputs", 4 * 5 * n),  # 5 floats per option
        "outputs": layout.array("outputs", 4 * 2 * n),  # call + put
        "total_options": n,
        "batch": option_batch(n, seed=seed),
    }


def _cnd(blk, x_reg, kreg, acc, e):
    """Record the polynomial cumulative-normal approximation; returns reg."""
    # k = 1 / (1 + 0.2316419 |x|): one divide on the iterative unit.
    blk.fmul(kreg, [x_reg])
    blk.fdiv(kreg, [kreg])
    blk.fmul(acc, [kreg])
    for _ in range(CND_POLY_TERMS - 1):
        # Horner steps: each fma depends on the previous (bypass chain).
        blk.fma(acc, [acc, kreg])
    # exp(-x^2/2) factor: square, scale, poly-exp.
    blk.fmul(e, [x_reg, x_reg])
    for _ in range(3):
        blk.fma(e, [e])
    blk.fma(acc, [acc, e])
    return acc


@kernel("BS", dwarf="MapReduce", category="compute-low-comm")
def blackscholes_kernel(t, args):

    tid = tile_id(t)
    lo, hi = range_split(args["total_options"], num_tiles(t), tid)
    in_base = args["inputs"]
    out_base = args["outputs"]

    # Fixed registers: each option's inputs land in the same registers
    # so the recorded pricing window's operand tuples stay valid across
    # iterations (ready times are per register id, so reuse is
    # timing-neutral).
    s, k, r, v = t.regs(4)
    texp = t.reg()
    sqrt_t, vsqrt, ratio, logr, d1, d2 = t.regs(6)
    cnd1 = t.regs(3)
    cnd2 = t.regs(3)
    disc, call, put = t.regs(3)

    top = t.loop_top()
    for i in range(lo, hi):
        yield t.vload(t.local_dram(in_base + 20 * i), dsts=(s, k, r, v))  # S, K, r, v
        yield t.load(t.local_dram(in_base + 20 * i + 16), dst=texp)  # T
        # The whole pricing chain is one recorded FP window: the ~35-op
        # log/exp/CND chain replays from decoded tuples instead of
        # rebuilding one op object per instruction per option.
        price = t.block("price")
        if price.recording:
            # sqrt(T) and v*sqrt(T): the first iterative-unit visit.
            price.fsqrt(sqrt_t, [texp])
            price.fmul(vsqrt, [v, sqrt_t])
            # log(S/K): divide then a 4-term polynomial.
            price.fdiv(ratio, [s, k])
            price.fma(logr, [ratio])
            for _ in range(3):
                price.fma(logr, [logr, ratio])
            # d1 = (log(S/K) + (r + v^2/2) T) / (v sqrt(T)); d2 = d1 - v sqrt(T).
            price.fma(d1, [v, v])
            price.fma(d1, [d1, r])
            price.fma(d1, [d1, texp, logr])
            price.fdiv(d1, [d1, vsqrt])
            price.fadd(d2, [d1, vsqrt])
            nd1 = _cnd(price, d1, *cnd1)
            nd2 = _cnd(price, d2, *cnd2)
            # Discount factor exp(-rT) and final call/put combination.
            price.fmul(disc, [r, texp])
            for _ in range(3):
                price.fma(disc, [disc])
            price.fmul(call, [s, nd1])
            price.fma(call, [call, k, disc])
            price.fma(put, [call, disc])
            price.fma(put, [put, nd2])
        yield price.emit()
        yield t.store(t.local_dram(out_base + 8 * i), srcs=[call])
        yield t.store(t.local_dram(out_base + 8 * i + 4), srcs=[put])
        yield t.branch_back(top, taken=(i < hi - 1))
    yield from sync(t)


KERNEL = blackscholes_kernel
