"""Radix-2 FFT (Table I: Spectral Methods dwarf).

Compute-intensive with power-of-two strided phases: every stage doubles
the butterfly stride, the access pattern that camps on cache banks under
plain modulo interleaving and that Regional IPOLY hashing fixes.  Tiles
synchronize with the HW barrier between stages.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.dense import fft_input
from .base import Layout, range_split, sync, tile_id, num_tiles
from ..isa.program import kernel


def make_args(n: int = 2048, seed: int = 0) -> Dict[str, Any]:
    if n & (n - 1):
        raise ValueError("FFT size must be a power of two")
    layout = Layout()
    return {
        "n": n,
        "data": layout.array("data", 8 * n),  # interleaved re/im
        "signal": fft_input(n, seed=seed),
    }


@kernel("FFT", dwarf="Spectral Methods", category="compute-sequential")
def fft_kernel(t, args):
    n = args["n"]
    tid = tile_id(t)
    ntiles = num_tiles(t)
    stages = n.bit_length() - 1
    half = n // 2
    lo, hi = range_split(half, ntiles, tid)
    base = args["data"]

    stage_top = t.loop_top()
    for s in range(stages):
        stride = 1 << s
        fly_top = t.loop_top()
        for b in range(lo, hi):
            # Butterfly b of stage s pairs elements (idx, idx + stride).
            block = b // stride
            offset = b % stride
            idx = block * 2 * stride + offset
            pair = idx + stride
            yield t.alu(t.reg())  # index arithmetic
            if stride == 1 and idx % 2 == 0:
                # Adjacent complex pair: one compressed 4-word load.
                vl = t.vload(t.local_dram(base + 8 * idx))
                yield vl
                are, aim, bre, bim = vl.dsts
            else:
                a_ld = t.vload(t.local_dram(base + 8 * idx), n=2)
                yield a_ld
                b_ld = t.vload(t.local_dram(base + 8 * pair), n=2)
                yield b_ld
                are, aim = a_ld.dsts
                bre, bim = b_ld.dsts
            # Twiddle multiply (4 fmul + 2 fadd) and butterfly add/sub.
            tre, tim = t.reg(), t.reg()
            yield t.fmul(tre, [bre])
            yield t.fma(tre, [tre, bim])
            yield t.fmul(tim, [bim])
            yield t.fma(tim, [tim, bre])
            out0re, out0im = t.reg(), t.reg()
            out1re, out1im = t.reg(), t.reg()
            yield t.fadd(out0re, [are, tre])
            yield t.fadd(out0im, [aim, tim])
            yield t.fadd(out1re, [are, tre])
            yield t.fadd(out1im, [aim, tim])
            yield t.store(t.local_dram(base + 8 * idx), srcs=[out0re])
            yield t.store(t.local_dram(base + 8 * idx + 4), srcs=[out0im])
            yield t.store(t.local_dram(base + 8 * pair), srcs=[out1re])
            yield t.store(t.local_dram(base + 8 * pair + 4), srcs=[out1im])
            yield t.branch_back(fly_top, taken=(b < hi - 1))
        # All tiles must see the stage's writes before the next stride.
        yield from sync(t)
        yield t.branch_back(stage_top, taken=(s < stages - 1))


KERNEL = fft_kernel
