"""Radix-2 FFT (Table I: Spectral Methods dwarf).

Compute-intensive with power-of-two strided phases: every stage doubles
the butterfly stride, the access pattern that camps on cache banks under
plain modulo interleaving and that Regional IPOLY hashing fixes.  Tiles
synchronize with the HW barrier between stages.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.dense import fft_input
from .base import Layout, range_split, sync, tile_id, num_tiles
from ..isa.program import kernel


def make_args(n: int = 2048, seed: int = 0) -> Dict[str, Any]:
    if n & (n - 1):
        raise ValueError("FFT size must be a power of two")
    layout = Layout()
    return {
        "n": n,
        "data": layout.array("data", 8 * n),  # interleaved re/im
        "signal": fft_input(n, seed=seed),
    }


@kernel("FFT", dwarf="Spectral Methods", category="compute-sequential")
def fft_kernel(t, args):
    n = args["n"]
    tid = tile_id(t)
    ntiles = num_tiles(t)
    stages = n.bit_length() - 1
    half = n // 2
    lo, hi = range_split(half, ntiles, tid)
    base = args["data"]

    # Fixed register set: every butterfly's operands land in the same
    # registers so the recorded FP windows' operand tuples stay valid.
    idx_r = t.reg()
    are, aim, bre, bim = t.regs(4)
    tre, tim = t.reg(), t.reg()
    out0re, out0im, out1re, out1im = t.regs(4)

    stage_top = t.loop_top()
    for s in range(stages):
        stride = 1 << s
        fly_top = t.loop_top()
        for b in range(lo, hi):
            # Butterfly b of stage s pairs elements (idx, idx + stride).
            block = b // stride
            offset = b % stride
            idx = block * 2 * stride + offset
            pair = idx + stride
            yield t.alu(idx_r)  # index arithmetic
            if stride == 1 and idx % 2 == 0:
                # Adjacent complex pair: one compressed 4-word load.
                yield t.vload(t.local_dram(base + 8 * idx),
                              dsts=(are, aim, bre, bim))
                shape = 1
            else:
                yield t.vload(t.local_dram(base + 8 * idx), n=2,
                              dsts=(are, aim))
                yield t.vload(t.local_dram(base + 8 * pair), n=2,
                              dsts=(bre, bim))
                shape = 2
            # Twiddle multiply (4 fmul + 2 fadd) and butterfly add/sub,
            # as one recorded window.  Stage 0's single compressed load
            # puts the window one pc earlier than the two-load stages,
            # so it is keyed by the load shape.
            bfly = t.block(f"bfly/{shape}")
            if bfly.recording:
                bfly.fmul(tre, [bre])
                bfly.fma(tre, [tre, bim])
                bfly.fmul(tim, [bim])
                bfly.fma(tim, [tim, bre])
                bfly.fadd(out0re, [are, tre])
                bfly.fadd(out0im, [aim, tim])
                bfly.fadd(out1re, [are, tre])
                bfly.fadd(out1im, [aim, tim])
            yield bfly.emit()
            yield t.store(t.local_dram(base + 8 * idx), srcs=[out0re])
            yield t.store(t.local_dram(base + 8 * idx + 4), srcs=[out0im])
            yield t.store(t.local_dram(base + 8 * pair), srcs=[out1re])
            yield t.store(t.local_dram(base + 8 * pair + 4), srcs=[out1im])
            yield t.branch_back(fly_top, taken=(b < hi - 1))
        # All tiles must see the stage's writes before the next stride.
        yield from sync(t)
        yield t.branch_back(stage_top, taken=(s < stages - 1))


KERNEL = fft_kernel
