"""Jacobi 3-D stencil (Table I: Structured Grids dwarf).

The paper's showcase for Group SPM (Fig 7): each tile owns a 1x1xZ
column of the grid resident in its scratchpad; neighbour columns are
read directly from the four adjacent tiles' scratchpads with pipelined
non-blocking remote loads.  The ``use_spm=False`` variant keeps all data
in Local DRAM -- the configuration Fig 14 labels "Jacobi (DRAM)" and the
one that improves 17-48x when the SPM path is enabled (Fig 10).
"""

from __future__ import annotations

from typing import Any, Dict

from .base import (Layout, copy_dram_to_spm, copy_spm_to_dram,
                   num_tiles, sync, tile_id)
from ..isa.program import kernel


def make_args(z_depth: int = 48, iters: int = 2, use_spm: bool = True,
              tiles: int = 128) -> Dict[str, Any]:
    layout = Layout()
    return {
        "z": z_depth,
        "total_columns": tiles,
        "iters": iters,
        "use_spm": use_spm,
        # One column of z+2 words (halo) per tile, packed by tile id.
        "grid": layout.array("grid", 4 * (z_depth + 2) * tiles),
        "out": layout.array("out", 4 * (z_depth + 2) * tiles),
    }


@kernel("Jacobi", dwarf="Structured Grids", category="compute-sequential")
def jacobi_kernel(t, args):

    # Constant total work: with fewer tiles than the reference layout,
    # each tile owns a proportionally deeper column.
    z = args["z"] * max(1, args.get("total_columns", num_tiles(t))
                        // num_tiles(t))
    use_spm = args["use_spm"]
    tid = tile_id(t)
    col_words = z + 2
    my_col = args["grid"] + 4 * col_words * tid
    my_out = args["out"] + 4 * col_words * tid
    gw, gh = t.group_shape

    # Double-buffered column: reads target ``cur``, writes ``nxt``,
    # swapped each iteration.  In-place updates would race: a tile
    # overwrites words its neighbours are still streaming out of its
    # scratchpad (the sanitizer flags exactly that).  SPM timing is
    # address-independent, so the second buffer costs no cycles.
    cur, nxt = 0, 4 * col_words

    if use_spm:
        # Phase 1: stage the column (with halo) in the scratchpad.
        yield from copy_dram_to_spm(t, my_col, cur, col_words)
        yield from sync(t)

    def neighbour_addr(dx: int, dy: int, word: int) -> int:
        """Group-SPM pointer into a neighbour's column buffer."""
        return t.group_spm_ptr(dx, dy, cur + 4 * word)

    px, py = t.tile_x % gw, t.tile_y % gh  # position within the tile group
    neighbours = []
    if px > 0:
        neighbours.append((-1, 0))
    if px < gw - 1:
        neighbours.append((1, 0))
    if py > 0:
        neighbours.append((0, -1))
    if py < gh - 1:
        neighbours.append((0, 1))

    # Fixed register sets: every chunk's loads land in the same
    # registers so the recorded stencil windows' operand tuples stay
    # valid across chunks.  The loads themselves stay classic ops --
    # their addresses change every chunk, and the race checker must
    # keep seeing the real ones.
    self_regs = list(t.regs(6))
    nbr_regs = list(t.regs(4 * len(neighbours)))
    accs = list(t.regs(4))

    iter_top = t.loop_top()
    for it in range(args["iters"]):
        chunk_top = t.loop_top()
        for z0 in range(1, z + 1, 4):
            # 22-point load pattern of Fig 7: 6 self + 4x4 neighbours.
            for j in range(6):
                if use_spm:
                    yield t.load(t.spm(cur + 4 * min(z0 - 1 + j,
                                                     col_words - 1)),
                                 dst=self_regs[j])
                else:
                    yield t.load(t.local_dram(
                        my_col + 4 * min(z0 - 1 + j, col_words - 1)),
                        dst=self_regs[j])
            nr = 0
            for dx, dy in neighbours:
                for j in range(4):
                    word = min(z0 + j, col_words - 1)
                    if use_spm:
                        # Non-blocking remote SPM loads pipeline in the
                        # network; consumption below creates load-use slack.
                        yield t.load(neighbour_addr(dx, dy, word),
                                     dst=nbr_regs[nr])
                    else:
                        nid = tid + dx + dy * gw
                        yield t.load(t.local_dram(
                            args["grid"] + 4 * (col_words * nid + word)),
                            dst=nbr_regs[nr])
                    nr += 1
            # Compute and store the 1x1x4 output chunk.  Each output
            # word's FP chain is a recorded window (the interleaved
            # stores keep their own pcs, so the windows are per-word).
            for j in range(4):
                acc = accs[j]
                stencil = t.block(f"stencil{j}")
                if stencil.recording:
                    stencil.fmul(acc, [self_regs[j], self_regs[j + 1]])
                    stencil.fma(acc, [acc, self_regs[j + 2]])
                    for k in range(j, len(nbr_regs), 4):
                        stencil.fma(acc, [acc, nbr_regs[k]])
                yield stencil.emit()
                if use_spm:
                    yield t.store(t.spm(nxt + 4 * (z0 + j)), srcs=[acc])
                else:
                    yield t.store(t.local_dram(my_out + 4 * (z0 + j)),
                                  srcs=[acc])
            yield t.branch_back(chunk_top, taken=(z0 + 4 < z + 1))
        if use_spm:
            # Boundary halo words carry over into the write buffer so
            # the next iteration's (clamped) reads stay initialized.
            for w in (0, col_words - 1):
                halo = t.load(t.spm(cur + 4 * w))
                yield halo
                yield t.store(t.spm(nxt + 4 * w), srcs=[halo.dst])
        yield from sync(t)
        if use_spm:
            cur, nxt = nxt, cur
        yield t.branch_back(iter_top, taken=(it < args["iters"] - 1))

    if use_spm:
        # Phase 3: spill the result column back to DRAM.
        yield from copy_spm_to_dram(t, cur, my_out, col_words)
        yield from sync(t)


KERNEL = jacobi_kernel
