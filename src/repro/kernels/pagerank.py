"""PageRank, pull-based (Table I: Graph Traversal / Sparse dwarf).

Memory-intensive: per destination node, every in-neighbour's contribution
is a random-access word load from Local DRAM -- the access pattern that
saturates HBM2 when enough cores issue non-blocking loads (Fig 11 shows
PR as HBM-bound).  Nodes are distributed with a chunked amoadd
parallel-for; iterations separate with fence + barrier.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.csr import CsrMatrix
from ..workloads.graphs import hollywood_like
from .base import Layout, sync
from ..isa.program import kernel

CHUNK = 4
DAMPING = 0.85


def reference_pagerank(graph: CsrMatrix, iters: int) -> np.ndarray:
    """Host-side reference on the same pull formulation."""
    n = graph.num_rows
    out_deg = np.maximum(graph.transpose().degrees(), 1)
    rank = np.full(n, 1.0 / n)
    pull = graph  # row v lists the in-neighbours of v
    for _ in range(iters):
        contrib = rank / out_deg
        nxt = np.full(n, (1 - DAMPING) / n)
        for v in range(n):
            nxt[v] += DAMPING * contrib[pull.row_slice(v)].sum()
        rank = nxt
    return rank


def make_args(graph: CsrMatrix = None, iters: int = 2,
              scale: float = 0.3) -> Dict[str, Any]:
    if graph is None:
        graph = hollywood_like(scale=scale)
    n = graph.num_rows
    layout = Layout()
    return {
        "graph": graph,  # row v = in-neighbours of v
        "iters": iters,
        "offsets": layout.words("offsets", n + 1),
        "indices": layout.words("indices", graph.nnz),
        "rank": layout.words("rank", n),
        "contrib": layout.words("contrib", n),
        "next_rank": layout.words("next_rank", n),
        "counters": layout.array("counters", 64 * 2 * iters),
    }


@kernel("PR", dwarf="Sparse Linear Algebra", category="memory-irregular")
def pagerank_kernel(t, args):
    g: CsrMatrix = args["graph"]
    n = g.num_rows

    for it in range(args["iters"]):
        # Phase 1: contrib[u] = rank[u] / out_degree[u].
        counter = args["counters"] + 64 * (2 * it)
        top = t.loop_top()
        while True:
            base = yield t.amoadd(t.local_dram(counter), CHUNK)
            yield t.branch_back(top, taken=(base < n))
            if base >= n:
                break
            for v in range(base, min(base + CHUNK, n)):
                r_ld = t.load(t.local_dram(args["rank"] + 4 * v))
                yield r_ld
                d_ld = t.load(t.local_dram(args["offsets"] + 4 * v))
                yield d_ld
                c = t.reg()
                yield t.fdiv(c, [r_ld.dst, d_ld.dst])
                yield t.store(t.local_dram(args["contrib"] + 4 * v), srcs=[c])
        yield from sync(t)

        # Phase 2: gather in-neighbour contributions (random access).
        counter = args["counters"] + 64 * (2 * it + 1)
        top = t.loop_top()
        while True:
            base = yield t.amoadd(t.local_dram(counter), CHUNK)
            yield t.branch_back(top, taken=(base < n))
            if base >= n:
                break
            # Software-pipelined gather (the "unroll further" remedy the
            # paper prescribes): issue the whole chunk's offset vloads,
            # then per node issue all index vloads, then all contribution
            # loads, and only then consume -- the non-blocking scoreboard
            # keeps tens of requests in flight.
            vs = list(range(base, min(base + CHUNK, n)))
            for v in vs:
                yield t.vload(t.local_dram(args["offsets"] + 4 * v), n=2)
            for v in vs:
                lo, hi = int(g.offsets[v]), int(g.offsets[v + 1])
                e_top = t.loop_top()
                for ee in range(lo, hi, 4):
                    yield t.vload(t.local_dram(args["indices"] + 4 * ee))
                    yield t.branch_back(e_top, taken=(ee + 4 < hi))
                c_lds = []
                g_top = t.loop_top()
                for e in range(lo, hi):
                    u = int(g.indices[e])
                    # The contribution gather is a random DRAM word.
                    c_ld = t.load(t.local_dram(args["contrib"] + 4 * u))
                    yield c_ld
                    c_lds.append(c_ld.dst)
                    yield t.branch_back(g_top, taken=(e < hi - 1))
                acc = t.reg()
                yield t.fmul(acc, [])
                a_top = t.loop_top()
                for i, reg in enumerate(c_lds):
                    yield t.fma(acc, [acc, reg])
                    yield t.branch_back(a_top, taken=(i < len(c_lds) - 1))
                yield t.fma(acc, [acc])  # damping
                yield t.store(t.local_dram(args["next_rank"] + 4 * v),
                              srcs=[acc])
        yield from sync(t)
    yield from sync(t)


KERNEL = pagerank_kernel
