"""The benchmark registry: Table I in code.

``SUITE`` maps short names to ``(kernel, default-args factory)`` pairs;
experiment harnesses iterate it to cover every kernel.  ``FAST_SCALE``
factories produce reduced inputs for quick runs (tests, smoke benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..isa.program import Kernel
from . import (
    aes,
    barneshut,
    bfs,
    blackscholes,
    fft,
    jacobi,
    pagerank,
    sgemm,
    smithwaterman,
    spgemm,
)


@dataclass(frozen=True)
class Benchmark:
    """One Table-I row: kernel + workload factory + dwarf metadata."""

    name: str
    kernel: Kernel
    make_args: Callable[..., Dict[str, Any]]
    dwarf: str
    category: str


SUITE: Dict[str, Benchmark] = {
    "AES": Benchmark("AES", aes.KERNEL, aes.make_args,
                     "Combinational Logic", "compute-low-comm"),
    "BS": Benchmark("BS", blackscholes.KERNEL, blackscholes.make_args,
                    "MapReduce", "compute-low-comm"),
    "SW": Benchmark("SW", smithwaterman.KERNEL, smithwaterman.make_args,
                    "Dynamic Programming", "compute-low-comm"),
    "SGEMM": Benchmark("SGEMM", sgemm.KERNEL, sgemm.make_args,
                       "Dense Linear Algebra", "compute-sequential"),
    "FFT": Benchmark("FFT", fft.KERNEL, fft.make_args,
                     "Spectral Methods", "compute-sequential"),
    "Jacobi": Benchmark("Jacobi", jacobi.KERNEL, jacobi.make_args,
                        "Structured Grids", "compute-sequential"),
    "SpGEMM": Benchmark("SpGEMM", spgemm.KERNEL, spgemm.make_args,
                        "Sparse Linear Algebra", "memory-irregular"),
    "PR": Benchmark("PR", pagerank.KERNEL, pagerank.make_args,
                    "Sparse Linear Algebra", "memory-irregular"),
    "BFS": Benchmark("BFS", bfs.KERNEL, bfs.make_args,
                     "Graph Traversal", "memory-irregular"),
    "BH": Benchmark("BH", barneshut.KERNEL, barneshut.make_args,
                    "N-Body Methods", "memory-irregular"),
}

#: Kernel order used by Fig 11 (memory-intensive to compute-intensive).
FIG11_ORDER = ("PR", "BFS", "SpGEMM", "BH", "FFT", "Jacobi",
               "SGEMM", "SW", "BS", "AES")


def fast_args(name: str, tiles: int = 16) -> Dict[str, Any]:
    """Reduced-size inputs sized for small test machines."""
    makers: Dict[str, Callable[[], Dict[str, Any]]] = {
        "AES": lambda: aes.make_args(blocks_per_tile=2, tiles=tiles),
        "BS": lambda: blackscholes.make_args(options_per_tile=3, tiles=tiles),
        "SW": lambda: smithwaterman.make_args(query_len=8, ref_len=12,
                                              tiles=tiles),
        "SGEMM": lambda: sgemm.make_args(n=16),
        "FFT": lambda: fft.make_args(n=256),
        "Jacobi": lambda: jacobi.make_args(z_depth=16, iters=1, tiles=tiles),
        "SpGEMM": lambda: spgemm.make_args(scale=0.1),
        "PR": lambda: pagerank.make_args(scale=0.1, iters=1),
        "BFS": lambda: bfs.make_args(width=10),
        "BH": lambda: barneshut.make_args(num_bodies=24, tiles=tiles),
    }
    return makers[name]()
