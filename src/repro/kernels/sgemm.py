"""Single-precision GEMM (Table I: Dense Linear Algebra dwarf).

Compute-intensive with sequential access phases: tiles stream A-row
panels into SPM, stream B columns with the vload/compression idiom, run
long fma chains, and dump C blocks through the write-validate cache --
the paper's archetype for the "load big, compute long, store big" class.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.dense import random_matrix
from .base import Layout, range_split, sync, tile_id, num_tiles
from ..isa.program import kernel


def make_args(n: int = 80, seed: int = 0) -> Dict[str, Any]:
    """C = A @ B with all three matrices n x n in Local DRAM.

    A is row-major, B column-major (the usual pre-transposed layout), so
    both stream sequentially.
    """
    layout = Layout()
    return {
        "n": n,
        "a": layout.array("a", 4 * n * n),
        "b": layout.array("b", 4 * n * n),
        "c": layout.array("c", 4 * n * n),
        "a_data": random_matrix(n, n, seed=seed),
        "b_data": random_matrix(n, n, seed=seed + 1),
    }


#: C is decomposed into TB x TB register blocks; each block's inner loop
#: streams A-row and B-column chunks and does TB*TB fmas per 2*TB loaded
#: words, the register-blocking that gives SGEMM its high core
#: utilization in Fig 11.
TB = 4


@kernel("SGEMM", dwarf="Dense Linear Algebra", category="compute-sequential")
def sgemm_kernel(t, args):
    n = args["n"]
    if n % TB:
        raise ValueError(f"matrix size must be a multiple of {TB}")
    tid = tile_id(t)
    ntiles = num_tiles(t)
    blocks_per_dim = n // TB
    # ``work_fraction`` < 1 computes only a leading fraction of C's
    # blocks: the constant-total-work splits of Fig 15 use it to model
    # one Cell of a multi-Cell machine exactly.
    total_blocks = int(blocks_per_dim * blocks_per_dim
                       * args.get("work_fraction", 1.0))
    blk_lo, blk_hi = range_split(total_blocks, ntiles, tid)

    # Fixed register sets so the recorded fma windows' operand tuples
    # stay valid across C blocks: 16 accumulators plus two load buffers
    # (double buffering alternates them), each 2*TB stripes of TB words.
    accs = [t.reg() for _ in range(TB * TB)]
    bufs = [[t.regs(TB) for _ in range(2 * TB)] for _ in range(2)]

    blk_top = t.loop_top()
    for blk in range(blk_lo, blk_hi):
        bi, bj = divmod(blk, blocks_per_dim)
        zero = t.block("zero_accs")
        if zero.recording:
            for acc in accs:
                zero.alu(acc)
        yield zero.emit()

        def issue_chunk(k, buf):
            # One A-row chunk and one B-column chunk per block row/col:
            # 2*TB compressed loads feeding TB*TB fmas.
            for r in range(TB):
                yield t.vload(t.local_dram(
                    args["a"] + 4 * (n * (bi * TB + r) + k)), dsts=buf[r])
            for cidx in range(TB):
                yield t.vload(t.local_dram(
                    args["b"] + 4 * (n * (bj * TB + cidx) + k)),
                    dsts=buf[TB + cidx])

        # Double-buffered k loop: chunk k+TB's non-blocking loads are in
        # the network while chunk k's fmas execute (load-use distance).
        nk = n // TB
        k_top = t.loop_top()
        yield from issue_chunk(0, bufs[0])
        for j in range(nk):
            last = j == nk - 1
            if not last:
                yield from issue_chunk((j + 1) * TB, bufs[(j + 1) % 2])
            buf = bufs[j % 2]
            # The 64-fma chunk is a recorded window.  Its pc offset
            # within the loop body differs between the first, middle and
            # final iterations (the vload count ahead of it varies), and
            # its operands alternate with the buffer parity -- so the
            # window is keyed by both, recorded lazily in place.
            chunk = t.block(f"fma+{t.loop_top() - k_top}/{j % 2}")
            if chunk.recording:
                # u-outermost: 15 other fmas separate successive writes
                # to the same accumulator, hiding the 3-cycle fma latency.
                for u in range(TB):
                    for r in range(TB):
                        for cidx in range(TB):
                            acc = accs[r * TB + cidx]
                            chunk.fma(acc, [acc, buf[r][u],
                                            buf[TB + cidx][u]])
            yield chunk.emit()
            yield t.branch_back(k_top, taken=not last)
        for r in range(TB):
            for cidx in range(TB):
                yield t.store(
                    t.local_dram(args["c"] + 4 * (n * (bi * TB + r)
                                                  + bj * TB + cidx)),
                    srcs=[accs[r * TB + cidx]])
        yield t.branch_back(blk_top, taken=(blk < blk_hi - 1))
    yield from sync(t)


KERNEL = sgemm_kernel
