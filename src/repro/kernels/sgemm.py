"""Single-precision GEMM (Table I: Dense Linear Algebra dwarf).

Compute-intensive with sequential access phases: tiles stream A-row
panels into SPM, stream B columns with the vload/compression idiom, run
long fma chains, and dump C blocks through the write-validate cache --
the paper's archetype for the "load big, compute long, store big" class.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.dense import random_matrix
from .base import Layout, range_split, sync, tile_id, num_tiles
from ..isa.program import kernel


def make_args(n: int = 80, seed: int = 0) -> Dict[str, Any]:
    """C = A @ B with all three matrices n x n in Local DRAM.

    A is row-major, B column-major (the usual pre-transposed layout), so
    both stream sequentially.
    """
    layout = Layout()
    return {
        "n": n,
        "a": layout.array("a", 4 * n * n),
        "b": layout.array("b", 4 * n * n),
        "c": layout.array("c", 4 * n * n),
        "a_data": random_matrix(n, n, seed=seed),
        "b_data": random_matrix(n, n, seed=seed + 1),
    }


#: C is decomposed into TB x TB register blocks; each block's inner loop
#: streams A-row and B-column chunks and does TB*TB fmas per 2*TB loaded
#: words, the register-blocking that gives SGEMM its high core
#: utilization in Fig 11.
TB = 4


@kernel("SGEMM", dwarf="Dense Linear Algebra", category="compute-sequential")
def sgemm_kernel(t, args):
    n = args["n"]
    if n % TB:
        raise ValueError(f"matrix size must be a multiple of {TB}")
    tid = tile_id(t)
    ntiles = num_tiles(t)
    blocks_per_dim = n // TB
    # ``work_fraction`` < 1 computes only a leading fraction of C's
    # blocks: the constant-total-work splits of Fig 15 use it to model
    # one Cell of a multi-Cell machine exactly.
    total_blocks = int(blocks_per_dim * blocks_per_dim
                       * args.get("work_fraction", 1.0))
    blk_lo, blk_hi = range_split(total_blocks, ntiles, tid)

    blk_top = t.loop_top()
    for blk in range(blk_lo, blk_hi):
        bi, bj = divmod(blk, blocks_per_dim)
        accs = [t.reg() for _ in range(TB * TB)]
        for acc in accs:
            yield t.alu(acc)

        def issue_chunk(k):
            # One A-row chunk and one B-column chunk per block row/col:
            # 2*TB compressed loads feeding TB*TB fmas.
            a_rows = []
            for r in range(TB):
                av = t.vload(t.local_dram(
                    args["a"] + 4 * (n * (bi * TB + r) + k)))
                yield av
                a_rows.append(av.dsts)
            b_cols = []
            for cidx in range(TB):
                bv = t.vload(t.local_dram(
                    args["b"] + 4 * (n * (bj * TB + cidx) + k)))
                yield bv
                b_cols.append(bv.dsts)
            return a_rows, b_cols

        # Double-buffered k loop: chunk k+TB's non-blocking loads are in
        # the network while chunk k's fmas execute (load-use distance).
        k_top = t.loop_top()
        current = yield from issue_chunk(0)
        for k in range(0, n, TB):
            last = k + TB >= n
            nxt = None if last else (yield from issue_chunk(k + TB))
            a_rows, b_cols = current
            # u-outermost: 15 other fmas separate successive writes to the
            # same accumulator, hiding the 3-cycle fma latency.
            for u in range(TB):
                for r in range(TB):
                    for cidx in range(TB):
                        acc = accs[r * TB + cidx]
                        yield t.fma(acc, [acc, a_rows[r][u], b_cols[cidx][u]])
            current = nxt
            yield t.branch_back(k_top, taken=not last)
        for r in range(TB):
            for cidx in range(TB):
                yield t.store(
                    t.local_dram(args["c"] + 4 * (n * (bi * TB + r)
                                                  + bj * TB + cidx)),
                    srcs=[accs[r * TB + cidx]])
        yield t.branch_back(blk_top, taken=(blk < blk_hi - 1))
    yield from sync(t)


KERNEL = sgemm_kernel
