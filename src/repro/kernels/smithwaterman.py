"""Smith-Waterman local sequence alignment (Table I: Dynamic Programming).

Compute-intensive with data-dependent control flow: the inner max()
cascade branches on real DP values, giving the high branch-miss rate the
paper attributes to SW (fixable with min/max ISA extensions).  Sequences
live in SPM; the active DP rows also stay in SPM.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..workloads.dense import dna_sequences
from .base import (Layout, copy_dram_to_spm, num_tiles, range_split,
                   sync, tile_id)
from ..isa.program import kernel

MATCH, MISMATCH, GAP = 2, -1, -1


def reference_score(query: np.ndarray, ref: np.ndarray) -> int:
    """Host-side DP for functional validation."""
    q, r = len(query), len(ref)
    h = np.zeros((r + 1, q + 1), dtype=np.int64)
    best = 0
    for i in range(1, r + 1):
        for j in range(1, q + 1):
            sub = MATCH if ref[i - 1] == query[j - 1] else MISMATCH
            h[i, j] = max(0, h[i - 1, j - 1] + sub,
                          h[i - 1, j] + GAP, h[i, j - 1] + GAP)
            best = max(best, int(h[i, j]))
    return best


def make_args(query_len: int = 24, ref_len: int = 32, tiles: int = 128,
              pairs_per_tile: int = 1, seed: int = 0) -> Dict[str, Any]:
    num_pairs = tiles * pairs_per_tile
    queries, refs = dna_sequences(query_len, ref_len, num_pairs, seed=seed)
    layout = Layout()
    return {
        "queries": layout.array("queries", queries.size),
        "refs": layout.array("refs", refs.size),
        "scores": layout.words("scores", num_pairs),
        "query_len": query_len,
        "ref_len": ref_len,
        "num_pairs": num_pairs,
        "query_data": queries,
        "ref_data": refs,
    }


@kernel("SW", dwarf="Dynamic Programming", category="compute-low-comm")
def smithwaterman_kernel(t, args):

    qlen, rlen = args["query_len"], args["ref_len"]
    tid = tile_id(t)
    lo, hi = range_split(args["num_pairs"], num_tiles(t), tid)
    qwords = (qlen + 3) // 4
    rwords = (rlen + 3) // 4
    row_base = 4 * (qwords + rwords)

    pair_top = t.loop_top()
    for pair in range(lo, hi):
        query = args["query_data"][pair]
        ref = args["ref_data"][pair]

        # Phase 1: pull both sequences into SPM (packed bytes -> words).
        yield from copy_dram_to_spm(t, args["queries"] + pair * qlen,
                                    0, qwords)
        yield from copy_dram_to_spm(t, args["refs"] + pair * rlen,
                                    4 * qwords, rwords)

        # DP over two SPM-resident rows.  prev/cur values are computed
        # functionally so every branch outcome is a real comparison.
        prev = [0] * (qlen + 1)
        best = 0
        h_prev_diag = t.reg()
        outer_top = t.loop_top()
        for i in range(1, rlen + 1):
            cur = [0]
            inner_top = t.loop_top()
            for j in range(1, qlen + 1):
                # Load H[i-1][j-1] and H[i-1][j] from the SPM row buffer.
                diag = t.load(t.spm(row_base + 4 * (j - 1)))
                yield diag
                up = t.load(t.spm(row_base + 4 * j))
                yield up
                sub = MATCH if ref[i - 1] == query[j - 1] else MISMATCH
                yield t.alu(h_prev_diag, [diag.dst])  # diag + substitution
                cand_diag = prev[j - 1] + sub
                cand_up = prev[j] + GAP
                cand_left = cur[j - 1] + GAP
                value = max(0, cand_diag, cand_up, cand_left)
                # The max() cascade: three data-dependent forward branches.
                yield t.branch_fwd(taken=(cand_diag >= cand_up),
                                   srcs=[h_prev_diag, up.dst])
                yield t.branch_fwd(
                    taken=(max(cand_diag, cand_up) >= cand_left))
                yield t.branch_fwd(taken=(value == 0))
                yield t.alu(h_prev_diag, [h_prev_diag])
                yield t.store(t.spm(row_base + 4 * (j - 1)),
                              srcs=[h_prev_diag])
                if value > best:
                    best = value
                    yield t.alu(t.reg(), [h_prev_diag])
                cur.append(value)
                yield t.branch_back(inner_top, taken=(j < qlen))
            prev = cur
            yield t.branch_back(outer_top, taken=(i < rlen))

        # Publish the pair's best score.
        score_reg = t.reg()
        yield t.alu(score_reg)
        yield t.store(t.local_dram(args["scores"] + 4 * pair),
                      srcs=[score_reg])
        # Functional cross-check hook for tests.
        args.setdefault("computed_scores", {})[pair] = best
        yield t.branch_back(pair_top, taken=(pair < hi - 1))
    yield from sync(t)


KERNEL = smithwaterman_kernel
