"""SpGEMM via Gustavson's algorithm (Table I: Sparse Linear Algebra).

Memory-intensive, irregular: output rows are distributed over tiles with
an amoadd parallel-for (Fig 8's idiom); each row's work is the real
flop count of the input matrix, so power-law inputs (WV) produce the
severe imbalance Fig 12 addresses with tile groups.

Tile-group task parallelism: with ``tasks > 1`` each group multiplies the
same stationary sparse matrix against a different dense activation
(the paper's motivating task example), pulling work from its own counter.
"""

from __future__ import annotations

from typing import Any, Dict

from ..workloads.csr import CsrMatrix
from ..workloads.graphs import wiki_vote_like
from .base import Layout, sync
from ..isa.program import kernel


def make_args(matrix: CsrMatrix = None, tasks: int = 1,
              scale: float = 0.35) -> Dict[str, Any]:
    if matrix is None:
        matrix = wiki_vote_like(scale=scale)
    n = matrix.num_rows
    tasks = max(tasks, 1)
    layout = Layout()
    return {
        "matrix": matrix,
        "tasks": tasks,
        "offsets": layout.words("offsets", n + 1),
        # The stationary matrix A is shared; each task multiplies it with
        # its *own* activation B (same structure, distinct data), so more
        # concurrent tasks mean a larger resident working set.
        "indices": layout.words("indices", matrix.nnz * tasks),
        "values": layout.words("values", matrix.nnz * tasks),
        "task_stride_words": matrix.nnz,
        "out_rows": layout.array("out_rows", 4 * matrix.nnz * 4 * tasks),
        "counters": layout.array("counters", 64 * tasks),
    }


@kernel("SpGEMM", dwarf="Sparse Linear Algebra", category="memory-irregular")
def spgemm_kernel(t, args):
    a: CsrMatrix = args["matrix"]
    n = a.num_rows
    tasks = args["tasks"]
    # Each tile group works one task; extra tasks wrap around groups.
    my_task = t.group_index % max(tasks, 1)
    counter = args["counters"] + 64 * my_task
    # This task's private activation-matrix arrays.
    b_off = 4 * args.get("task_stride_words", 0) * my_task
    acc_base = 512  # SPM dense-accumulator region

    loop_top = t.loop_top()
    while True:
        row = yield t.amoadd(t.local_dram(counter), 1)
        yield t.branch_back(loop_top, taken=(row < n))
        if row >= n:
            break
        # Row extent: offsets[row], offsets[row+1] are adjacent words.
        ext = t.vload(t.local_dram(args["offsets"] + 4 * row), n=2)
        yield ext
        lo, hi = int(a.offsets[row]), int(a.offsets[row + 1])
        k_top = t.loop_top()
        for kk in range(lo, hi, 4):
            # Stream this row's column indices (sequential).
            kv = t.vload(t.local_dram(args["indices"] + 4 * kk))
            yield kv
            for k in range(kk, min(kk + 4, hi)):
                col = int(a.indices[k])
                clo, chi = int(a.offsets[col]), int(a.offsets[col + 1])
                # B's row `col` starts at a *random* place: pointer chase.
                bext = t.vload(t.local_dram(args["offsets"] + 4 * col), n=2)
                yield bext
                j_top = t.loop_top()
                for jj in range(clo, chi, 4):
                    jv = t.vload(t.local_dram(args["indices"] + b_off + 4 * jj))
                    yield jv
                    vv = t.vload(t.local_dram(args["values"] + b_off + 4 * jj))
                    yield vv
                    for u in range(min(4, chi - jj)):
                        # Accumulate into the SPM dense row fragment.
                        slot = acc_base + 4 * ((jj + u) % 512)
                        acc = t.load(t.spm(slot))
                        yield acc
                        yield t.fma(acc.dst, [acc.dst, vv.dsts[u % 4]])
                        yield t.store(t.spm(slot), srcs=[acc.dst])
                    yield t.branch_back(j_top, taken=(jj + 4 < chi))
            yield t.branch_back(k_top, taken=(kk + 4 < hi))
        # Write the finished output row (write-validate absorbs these).
        # Rows own disjoint CSR-style segments of the output buffer
        # (``3*lo + row`` keeps even empty rows unique), so rows claimed
        # concurrently by different tiles never alias an output word.
        out_nnz = max(1, hi - lo)
        out_base = 3 * lo + row
        w_top = t.loop_top()
        for w in range(out_nnz):
            val = t.reg()
            yield t.alu(val)
            yield t.store(t.local_dram(
                args["out_rows"] + 16 * a.nnz * my_task
                + 4 * ((out_base + w) % (a.nnz * 4))),
                srcs=[val])
            yield t.branch_back(w_top, taken=(w < out_nnz - 1))
    yield from sync(t)


KERNEL = spgemm_kernel
