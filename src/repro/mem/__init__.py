"""Memory system: cache banks, MSHRs, scratchpads, HBM2."""

from .cache import CacheBank
from .hbm import PseudoChannel
from .mshr import MshrEntry, MshrFile
from .spm import Scratchpad

__all__ = ["CacheBank", "PseudoChannel", "MshrFile", "MshrEntry", "Scratchpad"]
