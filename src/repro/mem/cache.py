"""Last-level cache banks.

Each bank is independent, maps an exclusive slice of DRAM (no coherence
hardware needed), and implements the paper's policies:

* **write-validate** -- a store miss allocates the line and validates the
  written words without fetching from DRAM (vs. the fetch-on-write
  *write-allocate* baseline used in the Fig 10 ablation);
* **non-blocking** -- hits proceed under misses; primary misses claim an
  MSHR entry, secondary misses merge onto it (vs. the blocking baseline
  where a miss stalls the whole bank until refill);
* LRU replacement over 64 sets x 8 ways x 64 B lines (Table II).

Timing-only: the bank tracks tags and dirty bits, not data -- functional
values live with the kernels (and in the machine's atomic memory).

Each set is one insertion-ordered dict (line -> :class:`_Line`): a hit
pops and re-inserts its key (MRU at the back), so the LRU victim is
always the first key -- replacing the seed's O(ways) list scans with
C-level dict operations of identical replacement order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..arch.params import CacheTiming
from ..engine import Future, Simulator
from ..engine.stats import Counter, Interval
from ..noc.wormhole import WormholeStrip
from .hbm import PseudoChannel
from .mshr import MshrFile


class _Line:
    """One resident cache line's tag state."""

    __slots__ = ("line", "dirty")

    def __init__(self, line: int, dirty: bool = False) -> None:
        self.line = line
        self.dirty = dirty


class CacheBank:
    """One LLC bank embedded in a Cell's north or south strip."""

    def __init__(self, sim: Simulator, timing: CacheTiming,
                 hbm: PseudoChannel, strip: WormholeStrip, bank_x: int,
                 write_validate: bool = True, nonblocking: bool = True,
                 name: str = "bank") -> None:
        self.sim = sim
        self.timing = timing
        self.hbm = hbm
        self.strip = strip
        self.bank_x = bank_x
        self.write_validate = write_validate
        self.nonblocking = nonblocking
        self.name = name
        self._port = Interval()
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(timing.sets)]
        self.mshr = MshrFile(timing.mshr_entries)
        self.counters = Counter()
        #: Timeline tracer hook (set by :func:`repro.trace.attach`).
        self._trace = None
        self._trace_track = 0
        #: Invariant-checker hook (set by :func:`repro.audit.attach`):
        #: observes port reservations, hit/miss classification, evictions
        #: and MSHR accounting against naive reference models.
        self._audit = None
        # Hot-path constants.
        self._nsets = timing.sets
        self._nways = timing.ways
        self._block_bytes = timing.block_bytes
        self._hit_latency = timing.hit_latency
        self._port_cpa = timing.port_cycles_per_access

    # -- public interface ---------------------------------------------------

    def access(self, mem_addr: int, is_write: bool, time: float,
               words: int = 1, is_amo: bool = False) -> Future:
        """Serve one request; the future resolves when the response data is
        ready to inject into the response network."""
        res = self.access_timed(mem_addr, is_write, time, words, is_amo)
        if res.__class__ is Future:
            return res
        fut = Future(self.sim)
        fut.resolve_at(res, None)
        return fut

    def access_timed(self, mem_addr: int, is_write: bool, time: float,
                     words: int = 1, is_amo: bool = False):
        """Serve one request; returns the data-ready cycle as a plain
        float when it is synchronously known (hits and write-validate
        stores -- the overwhelmingly common cases), or a :class:`Future`
        on the miss paths, whose completion depends on MSHR/HBM state.
        Callers that need a uniform future use :meth:`access`."""
        # The bank data port is double-pumped (two words per port cycle),
        # so an n-word access holds it for ceil(n * cpa / 2) cycles and
        # never less than one: flooring would let single-word requests
        # occupy no port time at all and halve odd-length bursts.
        port_cycles = -(-words * self._port_cpa // 2)
        if port_cycles < 1:
            port_cycles = 1
        start = self._port.reserve(time, port_cycles)
        cv = self.counters.raw
        cv["accesses"] += 1
        if is_amo:
            cv["amos"] += 1
        line = mem_addr // self._block_bytes
        set_idx = line % self._nsets
        ways = self._sets[set_idx]
        entry = ways.pop(line, None)
        trace = self._trace
        if self._audit is not None:
            self._audit.cache_access(self, set_idx, line, entry is not None,
                                     time, start, port_cycles)
        if entry is not None:
            ways[line] = entry  # LRU promote: MRU lives at the back
            cv["store_hits" if is_write else "load_hits"] += 1
            if is_write or is_amo:
                entry.dirty = True
            if trace is not None:
                trace.complete(
                    self._trace_track,
                    "amo-hit" if is_amo
                    else ("store-hit" if is_write else "load-hit"),
                    start, port_cycles)
            return start + self._hit_latency
        cv["store_misses" if is_write else "load_misses"] += 1
        if trace is not None:
            # The span covers the port occupancy (reservation window);
            # refill latency shows up on the wormhole and HBM tracks.
            trace.complete(
                self._trace_track,
                "amo-miss" if is_amo
                else ("store-miss" if is_write else "load-miss"),
                start, port_cycles)
        if is_write and not is_amo and self.write_validate:
            # Allocate without fetching; only a dirty victim costs DRAM
            # work (and the writeback posts no events, so returning the
            # ready time keeps the caller's schedule order unchanged).
            self._install(line, dirty=True, time=start)
            return start + self._hit_latency
        fut = Future(self.sim)
        if is_amo:
            # Read-modify-write: the old value is needed, so even under
            # write-validate the line must be fetched; it refills dirty.
            self._miss(line, fut, start, mark_dirty=True,
                       port_cycles=port_cycles)
            return fut
        self._miss(line, fut, start, mark_dirty=is_write,
                   port_cycles=port_cycles)
        return fut

    # -- tag management -------------------------------------------------------

    def _set_of(self, line: int) -> int:
        return line % self._nsets

    def _touch(self, line: int) -> bool:
        """Probe and LRU-promote; True on hit."""
        ways = self._sets[line % self._nsets]
        entry = ways.pop(line, None)
        if entry is None:
            return False
        ways[line] = entry
        return True

    def _mark_dirty(self, line: int) -> None:
        self._sets[line % self._nsets][line].dirty = True

    def _install(self, line: int, dirty: bool, time: float) -> None:
        ways = self._sets[line % self._nsets]
        entry = ways.get(line)
        if entry is not None:
            if dirty:
                entry.dirty = True
            return
        if len(ways) >= self._nways:
            victim = next(iter(ways))  # front of the dict == LRU
            if self._audit is not None:
                self._audit.cache_evict(self, line % self._nsets, victim,
                                        time)
            victim_line = ways.pop(victim)
            self.counters.raw["evictions"] += 1
            if victim_line.dirty:
                self._writeback(victim, time)
        ways[line] = _Line(line, dirty)
        if self._audit is not None:
            self._audit.cache_install(self, line % self._nsets, line, time)

    def _writeback(self, line: int, time: float) -> None:
        """Dirty eviction: occupy the strip channel and the HBM bus."""
        self.counters.raw["writebacks"] += 1
        addr = line * self._block_bytes
        _start, done = self.strip.transfer(self.bank_x, self._block_bytes, time)
        self.hbm.access(addr, is_write=True, time=done)

    # -- miss path ---------------------------------------------------------------

    def _miss(self, line: int, fut: Future, time: float, mark_dirty: bool,
              port_cycles: float = 1) -> None:
        existing = self.mshr.lookup(line)
        if existing is not None:
            self.mshr.merge(line, fut)
            if self._audit is not None:
                self._audit.mshr_merge(self, line, time)
            if mark_dirty:
                # The waiter's write lands after refill; remember dirtiness.
                existing.waiters.append(self._dirty_marker(line))
            return
        if self.mshr.full:
            retry_at = self.mshr.earliest_completion(time)
            if retry_at <= time:
                # Never re-enter in the same cycle: a stale completion
                # heap must not let the retry spin without advancing time.
                retry_at = time + 1
            self.counters.raw["mshr_full_stalls"] += 1
            if self._trace is not None:
                self._trace.instant(self._trace_track, "mshr-full", time)
            if self._audit is not None:
                self._audit.mshr_retry(self, line, time, retry_at)
            self.sim.schedule_at(retry_at, self._retry_miss,
                                 (line, fut, mark_dirty, port_cycles))
            return
        addr = line * self._block_bytes
        mem_done = self.hbm.access(addr, is_write=False, time=time + 1)
        _start, refill_done = self.strip.transfer(
            self.bank_x, self._block_bytes, mem_done
        )
        entry = self.mshr.allocate(line, time, refill_done)
        entry.waiters.append(fut)
        if self._audit is not None:
            self._audit.mshr_alloc(self, line, time)
        if self.nonblocking is False:
            # Blocking bank: nothing else is served until the refill lands.
            self._port.free_at = max(self._port.free_at, refill_done)
        if mark_dirty:
            self.sim._post(refill_done, self._refill_dirty, line)
        else:
            self.sim._post(refill_done, self._refill_clean, line)

    def _retry_miss(self, args) -> None:
        """Re-issue a miss that stalled on a full MSHR file.

        The stalled request lost its original port grant, so it must
        re-arbitrate: the retry reserves the bank port again before
        re-entering the miss path (a full MSHR file is not a free pass
        to bypass port contention).
        """
        line, fut, mark_dirty, port_cycles = args
        start = self._port.reserve(self.sim._now, port_cycles)
        if self._audit is not None:
            self._audit.cache_access(self, line % self._nsets, line,
                                     False, self.sim._now, start,
                                     port_cycles, retry=True)
        self._miss(line, fut, start, mark_dirty, port_cycles)

    def _dirty_marker(self, line: int) -> Future:
        marker = Future(self.sim)
        marker.add_callback(lambda _v: self._mark_dirty(line))
        return marker

    def _refill_clean(self, line: int) -> None:
        self._refill(line, False, self.sim._now)

    def _refill_dirty(self, line: int) -> None:
        self._refill(line, True, self.sim._now)

    def _refill(self, line: int, dirty: bool, time: float) -> None:
        self._install(line, dirty=dirty, time=time)
        if self._audit is not None:
            self._audit.mshr_release(self, line, time)
        waiters = self.mshr.release(line)
        hit_latency = self._hit_latency
        for waiter in waiters:
            waiter.resolve_at(time + hit_latency, None)

    # -- reporting ------------------------------------------------------------------

    def hit_rate(self) -> Optional[float]:
        hits = self.counters.get("load_hits") + self.counters.get("store_hits")
        misses = self.counters.get("load_misses") + self.counters.get("store_misses")
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)
