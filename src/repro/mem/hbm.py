"""HBM2 pseudo-channel timing model.

Captures the three DRAM effects the paper's evaluation leans on:

* **row-buffer locality** -- a hit pays ``tCL``, a conflict pays
  ``tRP + tRCD + tCL``;
* **bank-level parallelism** -- 16 banks per pseudo-channel with
  per-bank readiness, interleaved at row granularity;
* **channel bandwidth** -- each 64 B burst holds the shared data bus for
  ``tBL`` cycles, so a saturated channel serializes bursts back-to-back.

Utilization accounting matches Fig 11's categories: *reading* / *writing*
(bus occupied), *busy* (requests pending but the bus idle, e.g. blocked
on bank timing), *idle* (queue empty).  Refresh is handled the way the
paper reports it: as a fixed fraction excluded from the denominator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..arch.params import HBMTiming
from ..engine.stats import Counter, Interval


@dataclass
class _Bank:
    ready_at: float = 0
    # A bank that has activated at least once keeps a row open until the
    # next activation: only a never-touched bank may skip the precharge.
    # One-way flag -- pruning stale ``rows`` timestamps must not turn an
    # activated bank back into a fresh one.
    opened: bool = False
    # row -> last access completion time; emulates the FR-FCFS reorder
    # window (see PseudoChannel.REORDER_WINDOW).
    rows: Dict[int, float] = None

    def __post_init__(self) -> None:
        if self.rows is None:
            self.rows = {}


class PseudoChannel:
    """One HBM2 pseudo-channel (16 GB/s at full rate in the paper)."""

    def __init__(self, timing: HBMTiming, name: str = "pc",
                 bandwidth_scale: float = 1.0) -> None:
        """``bandwidth_scale`` < 1 stretches the burst occupancy, modelling
        several Cells statically sharing one channel's bandwidth (the
        constant-bandwidth scaling study of Fig 15)."""
        if bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        self.timing = timing
        self.name = name
        self.burst_cycles = max(1, round(timing.t_bl / bandwidth_scale))
        self._banks: List[_Bank] = [_Bank() for _ in range(timing.banks)]
        self._bus = Interval()
        self.counters = Counter()
        self._pressure_covered: float = 0
        self.read_cycles: float = 0
        self.write_cycles: float = 0
        self.busy_cycles: float = 0
        self.first_request: Optional[float] = None
        self.last_completion: float = 0
        #: Timeline tracer hook (set by :func:`repro.trace.attach`).
        self._trace = None
        self._trace_track = 0
        #: Invariant-checker hook (set by :func:`repro.audit.attach`):
        #: observes bank readiness, bus serialization and row states.
        self._audit = None

    def _bank_and_row(self, addr: int) -> (int, int):
        t = self.timing
        row_unit = addr // t.row_bytes
        return row_unit % t.banks, row_unit // t.banks

    #: Column-to-column command spacing within a bank (tCCD), core cycles.
    T_CCD = 4

    #: FR-FCFS approximation: a controller with a deep request queue
    #: groups same-row requests even when many streams interleave at a
    #: bank.  Accesses to a row last touched within this many core cycles
    #: are treated as row hits; outside the window the activation is paid
    #: again.  Strict in-order row state would make every multi-stream
    #: sequential workload conflict-bound, which real controllers avoid.
    REORDER_WINDOW = 150.0

    def _row_machine(self, bank: _Bank, row: int, time: float,
                     extra_busy: float = 0.0) -> (float, float, float, str):
        """Advance one bank's row state for a command arriving at ``time``.

        Returns ``(start, latency, bank_busy, row_state)`` and commits the
        bank's readiness (``extra_busy`` extends the occupancy, e.g. the
        ``t_mac`` of a PIM MAC_ABK).  Shared by :meth:`access` and the PIM
        engine so both traffic classes pay the same tRP/tRCD/tCL rules.
        """
        t = self.timing
        ready_at = bank.ready_at
        start = ready_at if ready_at > time else time
        last = bank.rows.get(row)
        # Column commands pipeline (tCCD); activations occupy the bank for
        # the full row cycle.  Data appears a latency after the command.
        if last is not None and start - last <= self.REORDER_WINDOW:
            latency = t.row_hit_latency
            bank_busy = self.T_CCD
            row_state = "hit"
            self.counters.add("row_hits")
        elif not bank.opened:
            # First-ever activation of this bank: no row to precharge.
            latency = t.t_rcd + t.t_cl
            bank_busy = t.t_rcd + self.T_CCD
            row_state = "open"
            self.counters.add("row_opens")
        else:
            # Some row is open (even if its timestamp has been pruned
            # from ``rows``), so the activation pays tRP first.
            latency = t.row_miss_latency
            bank_busy = t.t_rp + t.t_rcd + self.T_CCD
            row_state = "conflict"
            self.counters.add("row_conflicts")
        bank.ready_at = start + bank_busy + extra_busy
        bank.opened = True
        return start, latency, bank_busy, row_state

    def access(self, addr: int, is_write: bool, time: float) -> float:
        """A 64 B line access; returns the completion cycle."""
        bank_idx, row = self._bank_and_row(addr)
        bank = self._banks[bank_idx]
        ready_at = bank.ready_at
        start, latency, _bank_busy, row_state = self._row_machine(
            bank, row, time)
        burst_start = self._bus.reserve(start + latency, self.burst_cycles)
        bank.rows[row] = burst_start + self.burst_cycles
        if len(bank.rows) > 64:
            horizon = start - self.REORDER_WINDOW
            bank.rows = {r: tt for r, tt in bank.rows.items() if tt >= horizon}
        done = burst_start + self.burst_cycles
        self.counters.add("writes" if is_write else "reads")
        if is_write:
            self.write_cycles += self.burst_cycles
        else:
            self.read_cycles += self.burst_cycles
        self._account_pressure(time, burst_start)
        if self.first_request is None:
            self.first_request = time
        if done > self.last_completion:
            self.last_completion = done
        if self._trace is not None:
            # Bus bursts serialize through the Interval, so the spans on
            # the channel track never overlap.
            self._trace.complete(
                self._trace_track, "write" if is_write else "read",
                burst_start, self.burst_cycles,
                {"bank": bank_idx, "row_state": row_state})
        if self._audit is not None:
            self._audit.hbm_access(
                self, bank_idx, row, time, start, row_state, burst_start,
                self.burst_cycles, done, ready_at, bank.ready_at)
        return done

    def _account_pressure(self, arrival: float, burst_start: float) -> None:
        """Accumulate 'busy' cycles: waiting time not already covered by an
        earlier request's waiting window (an online interval-union)."""
        base = max(arrival, self._pressure_covered)
        if burst_start > base:
            self.busy_cycles += burst_start - base
            self._pressure_covered = burst_start

    def utilization(self, elapsed: float) -> Dict[str, float]:
        """Fractions of (refresh-adjusted) elapsed cycles per category.

        The four categories partition time, so they always sum to 1:
        on a saturated channel (bus cycles exceeding the refresh-adjusted
        denominator) the active categories are rescaled proportionally
        rather than clamped one by one -- independent ``min(1, ...)``
        clamps would let read + write + busy exceed 1.
        """
        if elapsed <= 0:
            return {"read": 0.0, "write": 0.0, "busy": 0.0, "idle": 1.0}
        denom = elapsed * (1 - self.timing.refresh_overhead)
        read = self.read_cycles / denom
        write = self.write_cycles / denom
        # Categories are exclusive: 'busy' is pending-but-not-transferring,
        # so waiting that overlaps a transfer is folded into read/write.
        busy_cap = max(0.0, denom - self.read_cycles - self.write_cycles)
        busy = min(self.busy_cycles, busy_cap) / denom
        active = read + write + busy
        if active > 1.0:
            scale = 1.0 / active
            read *= scale
            write *= scale
            busy *= scale
            active = 1.0
        idle = max(0.0, 1.0 - active)
        return {"read": read, "write": write, "busy": busy, "idle": idle}

    def bytes_per_cycle_peak(self) -> float:
        """Peak deliverable bandwidth in bytes per core cycle."""
        return 64.0 / self.burst_cycles

    def reset(self) -> None:
        self._banks = [_Bank() for _ in range(self.timing.banks)]
        self._bus = Interval()
        self.counters = Counter()
        self._pressure_covered = 0
        self.read_cycles = self.write_cycles = self.busy_cycles = 0
        self.first_request = None
        self.last_completion = 0
