"""Miss-status holding registers.

The paper consolidates all MSHRs at the last-level cache banks, shared by
every tile, instead of scattering them across a private-cache hierarchy.
One :class:`MshrFile` per bank tracks primary misses in flight and merges
secondary misses onto them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine import Future


@dataclass
class MshrEntry:
    """One in-flight line fill and the requests waiting on it."""

    line: int
    issued_at: float
    waiters: List[Future] = field(default_factory=list)


class MshrFile:
    """Fixed-capacity primary-miss tracker for one cache bank."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = entries
        self._entries: Dict[int, MshrEntry] = {}
        self._completions: List[float] = []  # min-heap of expected frees
        self.peak_occupancy = 0
        self.secondary_merges = 0
        self.full_events = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line: int) -> Optional[MshrEntry]:
        return self._entries.get(line)

    def merge(self, line: int, waiter: Future) -> None:
        """Attach a secondary miss to an existing entry."""
        entry = self._entries[line]
        entry.waiters.append(waiter)
        self.secondary_merges += 1

    def allocate(self, line: int, time: float, expected_done: float) -> MshrEntry:
        """Claim an entry for a primary miss.  Caller must check ``full``."""
        if self.full:
            raise RuntimeError("MSHR file is full")
        if line in self._entries:
            raise RuntimeError(f"line {line:#x} already has an MSHR entry")
        entry = MshrEntry(line=line, issued_at=time)
        self._entries[line] = entry
        heapq.heappush(self._completions, expected_done)
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def release(self, line: int) -> List[Future]:
        """Retire the entry on refill; returns the waiters to wake."""
        entry = self._entries.pop(line)
        return entry.waiters

    def earliest_completion(self, after: float) -> float:
        """When the next entry is expected to free (for full-stall retry)."""
        self.full_events += 1
        while self._completions and self._completions[0] <= after:
            heapq.heappop(self._completions)
        if self._completions:
            return self._completions[0]
        # Nothing recorded beyond ``after``: retry shortly.
        return after + 1
