"""Tile scratchpad memory (4 KB, single-ported in the model).

Local accesses are pipelined in the core; this model only arbitrates the
port between the local pipeline and remote Group-SPM requests, which is
what matters for the Jacobi-style neighbour-access patterns.
"""

from __future__ import annotations

from ..arch.params import SPM_BYTES
from ..engine import Future, Simulator
from ..engine.stats import Counter, Interval


class Scratchpad:
    """One tile's SPM."""

    def __init__(self, sim: Simulator, capacity: int = SPM_BYTES,
                 access_latency: int = 1, name: str = "spm") -> None:
        self.sim = sim
        self.capacity = capacity
        self.access_latency = access_latency
        self.name = name
        self._port = Interval()
        self.counters = Counter()

    def check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.capacity:
            raise ValueError(
                f"SPM offset {offset:#x} outside {self.capacity}-byte scratchpad"
            )

    def reserve(self, time: float, words: int = 1) -> float:
        """Claim the port; returns the granted start cycle."""
        return self._port.reserve(time, max(1, words))

    def access(self, offset: int, is_write: bool, time: float,
               words: int = 1) -> Future:
        """Serve a (possibly remote) SPM access; resolves when data is ready."""
        fut = Future(self.sim)
        fut.resolve_at(self.access_timed(offset, is_write, time, words), None)
        return fut

    def access_timed(self, offset: int, is_write: bool, time: float,
                     words: int = 1) -> float:
        """Like :meth:`access`, but returns the data-ready cycle directly.

        SPM accesses always complete at a synchronously known cycle, so
        the memory system can schedule the response without routing it
        through an intermediate future.
        """
        self.check_offset(offset)
        start = self.reserve(time, words)
        self.counters.add("writes" if is_write else "reads")
        return start + self.access_latency

    def utilization(self, elapsed: float) -> float:
        return self._port.utilization(elapsed)
