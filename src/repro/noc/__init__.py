"""Network-on-chip models: mesh/Ruche topologies, routing, barriers."""

from . import analysis
from .barrier import (
    HwBarrierGroup,
    SwBarrierGroup,
    analytic_hw_latency,
    analytic_sw_latency,
    barrier_hops,
    tree_root,
)
from .network import DeliveryReport, Network
from .routing import hop_count, route
from .topology import Link, Topology
from .wormhole import WormholeStrip

__all__ = [
    "analysis",
    "Network",
    "DeliveryReport",
    "Topology",
    "Link",
    "route",
    "hop_count",
    "HwBarrierGroup",
    "SwBarrierGroup",
    "barrier_hops",
    "tree_root",
    "analytic_hw_latency",
    "analytic_sw_latency",
    "WormholeStrip",
]
