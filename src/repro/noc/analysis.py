"""Closed-form NoC analysis: the paper's scalability arithmetic.

Section I's flat-manycore argument ("each tile can only inject packets
at the average rate of 2/N per cycle before edge network channels
become completely saturated"), Section III-A's bisection-bandwidth
claims (Ruche = 4x mesh at factor 3), and Section III-C's wiring-density
comparison against the 1024-bit hierarchical mesh (21.6x horizontal,
7.0x vertical) are all simple formulas -- this module states them
executably so tests can pin them and experiments can reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass


def mesh_saturation_injection_rate(n: int) -> float:
    """Max per-tile injection rate for uniform-random traffic on an
    N x N mesh before the bisection saturates.

    Half of all traffic crosses the bisection of width N channels per
    direction; with N^2 tiles injecting r packets/cycle, r * N^2 / 2
    must be <= N, so r <= 2 / N -- the paper's 2/N.
    """
    if n <= 0:
        raise ValueError("mesh dimension must be positive")
    return 2.0 / n


def bisection_channels(width_tiles: int, rows: int, ruche_factor: int) -> int:
    """Horizontal channels crossing a Cell's vertical bisection, one
    direction: 1 mesh channel plus ``ruche_factor`` ruche channels per
    row (a link of hop distance R crosses any plane from R start
    columns)."""
    if ruche_factor < 0:
        raise ValueError("ruche factor must be non-negative")
    del width_tiles  # the cut width is independent of Cell width
    return rows * (1 + ruche_factor)


def ruche_bisection_gain(ruche_factor: int = 3) -> float:
    """Bisection bandwidth of a ruche network over the plain mesh.

    Factor 3 gives the paper's 4x.
    """
    return 1.0 + ruche_factor


@dataclass(frozen=True)
class WiringDensity:
    """Bits of cross-section bandwidth per tile edge."""

    bits_per_tile_row_horizontal: float
    bits_per_tile_col_vertical: float


def hb_wiring_density(word_bits: int = 32, ruche_factor: int = 3,
                      planes: int = 2) -> WiringDensity:
    """HB: per tile row, each direction: (1 + ruche_factor) channels of
    one word, on ``planes`` physical networks (request + response)."""
    h = planes * (1 + ruche_factor) * word_bits * 2  # both directions
    v = planes * 1 * word_bits * 2
    return WiringDensity(h, v)


def hierarchical_wiring_density(channel_bits: int = 1024,
                                cluster_tiles_x: int = 8,
                                cluster_tiles_y: int = 8) -> WiringDensity:
    """The representative hierarchical manycore: one wide mesh channel
    per *cluster*, so per tile row/column the share is channel/cluster
    dimension (both directions)."""
    h = channel_bits * 2 / cluster_tiles_y
    v = channel_bits * 2 / cluster_tiles_x
    return WiringDensity(h, v)


def wiring_density_ratio(word_bits: int = 32, ruche_factor: int = 3,
                         planes: int = 2, channel_bits: int = 1024,
                         cluster_x: int = 8, cluster_y: int = 8,
                         hb_tile_mm: float = 0.194,
                         et_tile_mm: float = 1.65) -> WiringDensity:
    """Bit-per-mm ratio HB : hierarchical, normalizing by tile pitch.

    With HB's ~16x smaller tile pitch (Section V-H's 16.6x tile-area
    observation gives ~4x linear, and the minion tile is itself several
    HB tiles wide), the paper quotes 21.6x horizontal and 7.0x vertical;
    defaults here land in that neighbourhood.
    """
    hb = hb_wiring_density(word_bits, ruche_factor, planes)
    et = hierarchical_wiring_density(channel_bits, cluster_x, cluster_y)
    h = (hb.bits_per_tile_row_horizontal / hb_tile_mm) / (
        et.bits_per_tile_row_horizontal / et_tile_mm)
    v = (hb.bits_per_tile_col_vertical / hb_tile_mm) / (
        et.bits_per_tile_col_vertical / et_tile_mm)
    return WiringDensity(h, v)


def zero_load_diameter(cols: int, rows: int, ruche_factor: int) -> int:
    """Worst-case hop count corner-to-corner."""
    dx = cols - 1
    dy = rows - 1
    if ruche_factor > 1:
        q, r = divmod(dx, ruche_factor)
        dx = q + r
    return dx + dy


def cell_edge_channels(config, axis: str) -> int:
    """Directed physical channels crossing one inter-Cell boundary.

    ``axis="x"`` counts the horizontal links crossing the vertical
    boundary between two column-adjacent Cells, one direction: one mesh
    channel per grid row of the Cell (tiles plus the two cache strips),
    plus ``ruche_factor`` ruche channels per row when the Ruche network
    is on (a hop-``R`` link crosses any plane from ``R`` start columns).
    ``axis="y"`` counts the vertical links crossing the horizontal
    boundary between two row-adjacent Cells: one mesh channel per grid
    column (ruche links are horizontal only).

    This is the serialization capacity of the PDES contention model's
    per-Cell-edge channel; :meth:`repro.noc.topology.Topology.cell_edge_links`
    counts the same thing by walking the built link set, and the tests
    pin the two against each other.
    """
    cell = config.chip.cell
    if axis == "x":
        per_row = 1
        if config.features.ruche_network:
            per_row += config.timings.noc.ruche_factor
        return cell.rows * per_row
    if axis == "y":
        return cell.cols
    raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")


# ---------------------------------------------------------------------------
# Inter-Cell latency floor: the PDES lookahead.

def _hops(dx: int, dy: int, ruche: bool, factor: int) -> int:
    """Dimension-ordered hop count between nodes ``dx`` columns and
    ``dy`` rows apart (the arithmetic of :func:`repro.noc.routing.hop_count`,
    without needing a Topology)."""
    dx, dy = abs(dx), abs(dy)
    if ruche and factor > 1:
        q, r = divmod(dx, factor)
        dx = q + r
    return dx + dy


def min_intercell_hops(config) -> int:
    """Fewest network hops any cross-Cell (tile, cache-bank) pair is apart.

    Every cross-Cell packet travels tile -> foreign bank (requests, AMOs)
    or bank -> foreign tile (responses); tile-to-tile traffic does not
    exist (remote SPM access across Cells is rejected by the PDES
    channel).  Both directions of a pair have the same dimension-ordered
    hop count, so one scan over (tile, bank) pairs of the two adjacency
    directions covers all message kinds.  With the cache strips on the
    Cell's north/south edges this floor is 2 hops for any geometry:
    horizontally, the last tile column is 1 column + >=1 row from the
    neighbour's nearest bank; vertically, the south strip row is 2 rows
    above the next Cell's north strip.
    """
    chip = config.chip
    if chip.num_cells < 2:
        raise ValueError("min_intercell_hops needs a multi-Cell chip")
    ruche = config.features.ruche_network
    factor = config.timings.noc.ruche_factor
    pairs = []
    if chip.cells_x > 1:
        pairs.append(((0, 0), (1, 0)))
    if chip.cells_y > 1:
        pairs.append(((0, 0), (0, 1)))
    best = None
    for cell_a, cell_b in pairs:
        for tile in chip.cell.tile_coords():
            tx, ty = chip.to_global(cell_a, tile)
            for bank in chip.cell.bank_coords():
                bx, by = chip.to_global(cell_b, bank)
                hops = _hops(bx - tx, by - ty, ruche, factor)
                if best is None or hops < best:
                    best = hops
    return best


def intercell_lookahead(config) -> float:
    """Zero-load latency floor of any cross-Cell packet: the conservative
    PDES window.  No message emitted at simulated time ``t`` can arrive
    at another Cell before ``t + lookahead``, so shards may advance
    ``lookahead`` cycles past the global minimum next-event time without
    ever receiving a message from their past.  Reuses the zero-load
    decomposition (inject + hops * hop_cost + eject, single flit) that
    the audit layer validates per delivered packet.
    """
    noc = config.timings.noc
    hop_cost = noc.router_latency + noc.link_cycles_per_flit
    return (noc.inject_latency + min_intercell_hops(config) * hop_cost
            + noc.eject_latency)
