"""Barrier synchronization: the 1-bit HW tree network and a SW fallback.

HW barrier (paper Fig 4): each tile's two configuration registers define
a reduction tree over the 1-bit Ruche-topology network.  Signals converge
at a root tile, then a wake-up propagates back out.  Latency per join is
``(in-sweep + out-sweep)`` hops at one cycle per hop; with Ruche links of
hop distance 3, the remotest tile of a 16x8 group reaches the root in 8
cycles, matching the paper's example.

SW barrier: the conventional amoadd-counter-plus-spin scheme.  Arrivals
serialize at one cache bank; waiters learn of the release one polling
round-trip after the flag flips.  Latency therefore grows linearly in
group size, which is exactly the scalability gap Fig 4 plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..arch.geometry import Coord
from ..arch.params import BarrierTiming
from ..engine import Future, Simulator


def barrier_hops(src: Coord, root: Coord, ruche: bool, ruche_factor: int = 3) -> int:
    """Hop count on the 1-bit barrier network from ``src`` to ``root``."""
    dx = abs(src[0] - root[0])
    dy = abs(src[1] - root[1])
    if ruche:
        q, r = divmod(dx, ruche_factor)
        return q + r + dy
    return dx + dy


def tree_root(members: List[Coord]) -> Coord:
    """The configured root: the member closest to the group centroid."""
    if not members:
        raise ValueError("empty barrier group")
    cx = sum(m[0] for m in members) / len(members)
    cy = sum(m[1] for m in members) / len(members)
    return min(members, key=lambda m: (abs(m[0] - cx) + abs(m[1] - cy), m))


class HwBarrierGroup:
    """One configured barrier tree over a set of tiles.

    ``arrive`` returns a future that resolves when the wake-up signal
    reaches the arriving tile.  The group is reusable (epochs).
    """

    #: Timeline tracer hook (set by the tile-group partitioner).
    _trace = None
    _trace_track = 0
    #: Race-checker hook (set by the tile-group partitioner): a barrier
    #: epoch is a release/acquire edge over the whole group.
    _san = None

    def __init__(self, sim: Simulator, members: List[Coord],
                 timing: BarrierTiming, ruche: bool = True) -> None:
        if not members:
            raise ValueError("barrier group needs at least one member")
        self.sim = sim
        self.members = list(members)
        self.timing = timing
        self.ruche = ruche
        self.root = tree_root(self.members)
        self._hops: Dict[Coord, int] = {
            m: barrier_hops(m, self.root, ruche) for m in self.members
        }
        self._pending: Dict[Coord, Tuple[float, Future]] = {}
        self.epochs = 0
        self.last_latency: float = 0

    @property
    def size(self) -> int:
        return len(self.members)

    def max_hops(self) -> int:
        return max(self._hops.values())

    def arrive(self, node: Coord, time: float) -> Future:
        if self._san is not None:
            self._san.barrier_join(self, node, time)
        if node not in self._hops:
            raise ValueError(f"{node} is not a member of this barrier group")
        if node in self._pending:
            raise ValueError(f"{node} arrived twice in one epoch")
        fut = Future(self.sim)
        self._pending[node] = (time, fut)
        if len(self._pending) == len(self.members):
            self._release()
        return fut

    def _release(self) -> None:
        if self._san is not None:
            self._san.barrier_release(self)
        hop = self.timing.hop_latency
        root_time = max(t + self._hops[n] * hop for n, (t, _f) in self._pending.items())
        first_arrival = min(t for t, _f in self._pending.values())
        for node, (_t, fut) in self._pending.items():
            fut.resolve_at(root_time + self._hops[node] * hop, None)
        self.last_latency = (root_time + self.max_hops() * hop) - max(
            t for t, _f in self._pending.values()
        )
        del first_arrival
        if self._trace is not None:
            self._trace.instant(
                self._trace_track, "hw-release", root_time,
                {"size": len(self.members), "epoch": self.epochs})
        self._pending = {}
        self.epochs += 1


class SwBarrierGroup:
    """Counter-and-spin software barrier (the Fig 4 baseline).

    Model: each arrival's amoadd serializes at the counter's cache bank
    (``serialize_cycles`` apiece) after a one-way trip; the final arrival
    flips the release flag; each waiter observes it one polling interval
    plus a round-trip later.
    """

    #: Timeline tracer hook (set by the tile-group partitioner).
    _trace = None
    _trace_track = 0
    #: Race-checker hook: the SW counter-and-spin barrier is the same
    #: release/acquire edge as the HW tree, just slower.
    _san = None

    def __init__(self, sim: Simulator, members: List[Coord],
                 counter_node: Optional[Coord] = None,
                 serialize_cycles: int = 2, poll_interval: int = 16,
                 hop_latency: int = 2) -> None:
        if not members:
            raise ValueError("barrier group needs at least one member")
        self.sim = sim
        self.members = list(members)
        self.counter_node = counter_node or tree_root(self.members)
        self.serialize_cycles = serialize_cycles
        self.poll_interval = poll_interval
        self.hop_latency = hop_latency
        self._pending: Dict[Coord, Tuple[float, Future]] = {}
        self._bank_free: float = 0
        self.epochs = 0

    @property
    def size(self) -> int:
        return len(self.members)

    def _distance(self, node: Coord) -> int:
        return (abs(node[0] - self.counter_node[0])
                + abs(node[1] - self.counter_node[1]))

    def arrive(self, node: Coord, time: float) -> Future:
        if self._san is not None:
            self._san.barrier_join(self, node, time)
        if node not in self.members:
            raise ValueError(f"{node} is not a member of this barrier group")
        if node in self._pending:
            raise ValueError(f"{node} arrived twice in one epoch")
        fut = Future(self.sim)
        self._pending[node] = (time, fut)
        if len(self._pending) == len(self.members):
            self._release()
        return fut

    def _release(self) -> None:
        if self._san is not None:
            self._san.barrier_release(self)
        # Serialize the amoadds at the counter bank in arrival order.
        bank_free = self._bank_free
        flag_time = 0.0
        for node, (t, _fut) in sorted(self._pending.items(),
                                      key=lambda kv: (kv[1][0], kv[0])):
            reach = t + self._distance(node) * self.hop_latency
            start = max(reach, bank_free)
            bank_free = start + self.serialize_cycles
            flag_time = bank_free
        self._bank_free = bank_free
        if self._trace is not None:
            self._trace.instant(
                self._trace_track, "sw-release", flag_time,
                {"size": len(self.members), "epoch": self.epochs})
        for node, (_t, fut) in self._pending.items():
            rtt = 2 * self._distance(node) * self.hop_latency
            fut.resolve_at(flag_time + self.poll_interval / 2 + rtt, None)
        self._pending = {}
        self.epochs += 1


def analytic_hw_latency(width: int, height: int, ruche: bool,
                        timing: Optional[BarrierTiming] = None) -> float:
    """Closed-form HW barrier latency for a ``width x height`` tile group
    with simultaneous arrivals (used by the Fig 4 sweep)."""
    timing = timing or BarrierTiming()
    members = [(x, y) for y in range(height) for x in range(width)]
    root = tree_root(members)
    worst = max(barrier_hops(m, root, ruche) for m in members)
    return 2 * worst * timing.hop_latency


def analytic_sw_latency(width: int, height: int, serialize_cycles: int = 2,
                        poll_interval: int = 16, hop_latency: int = 2) -> float:
    """Closed-form SW barrier latency with simultaneous arrivals."""
    members = [(x, y) for y in range(height) for x in range(width)]
    root = tree_root(members)
    n = len(members)
    worst_dist = max(abs(m[0] - root[0]) + abs(m[1] - root[1]) for m in members)
    serialization = n * serialize_cycles
    return (worst_dist * hop_latency + serialization
            + poll_interval / 2 + 2 * worst_dist * hop_latency)
