"""The word-oriented global network: contention-aware packet timing.

Each of the two physical planes (requests, responses) is a
:class:`Network`.  A packet's delivery time is computed by walking its
dimension-ordered path once and reserving ``flits`` cycles on every link
against that link's ``free_at`` horizon.  This reproduces serialization,
head-of-line waiting and bisection saturation at O(hops) per packet --
the fidelity tier appropriate to an architectural (non-RTL) model.

Dimension-ordered paths are static per (src, dst) pair, so ``send``
memoizes them: the routing walk runs once per pair and every later
packet replays the cached tuple of :class:`~repro.noc.topology.Link`
objects.  Timing is unchanged -- the links are the same objects either
way.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..arch.geometry import ChipGeometry, Coord
from ..arch.params import NocTiming
from ..engine.stats import Counter
from .routing import hop_count, route
from .topology import Link, Topology


class DeliveryReport:
    """Timing of one packet's traversal."""

    __slots__ = ("arrival", "hops", "stall_cycles")

    def __init__(self, arrival: float, hops: int, stall_cycles: float) -> None:
        self.arrival = arrival
        self.hops = hops
        self.stall_cycles = stall_cycles

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeliveryReport):
            return NotImplemented
        return (self.arrival == other.arrival and self.hops == other.hops
                and self.stall_cycles == other.stall_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeliveryReport(arrival={self.arrival}, hops={self.hops}, "
                f"stall_cycles={self.stall_cycles})")


class Network:
    """One physical network plane."""

    def __init__(self, chip: ChipGeometry, timing: NocTiming, ruche: bool,
                 order: str, name: str = "net",
                 record_bin_width: Optional[float] = None) -> None:
        self.chip = chip
        self.timing = timing
        self.order = order
        self.name = name
        self.topology = Topology(chip, ruche=ruche,
                                 ruche_factor=timing.ruche_factor)
        self.counters = Counter()
        # Hot-path constants and the path memo (see module docstring).
        self._hop_cost = timing.router_latency + timing.link_cycles_per_flit
        self._inject = timing.inject_latency
        self._eject = timing.eject_latency
        self._routes: Dict[Tuple[Coord, Coord], Tuple[Link, ...]] = {}
        self._hops: Dict[Tuple[Coord, Coord], int] = {}
        if record_bin_width is not None:
            for link in self.topology.links():
                link.enable_series(record_bin_width)
        #: Timeline tracer hook (set by :func:`repro.trace.attach`):
        #: per-link-class utilization is sampled by the metrics registry;
        #: the per-packet hook below only flags congested deliveries.
        self._trace = None
        self._trace_track = 0
        self._trace_threshold = 0.0
        #: Invariant-checker hook (set by :func:`repro.audit.attach`):
        #: per-packet latency decomposition and hop-count lower bounds.
        self._audit = None

    def send(self, src: Coord, dst: Coord, flits: int, time: float) -> DeliveryReport:
        """Reserve the path for a packet injected at ``time``.

        Returns the cycle at which the last flit is ejected at ``dst``.
        Same-node delivery (e.g. a tile loading from a bank in its own
        column position) still pays inject + eject.
        """
        if flits <= 0:
            raise ValueError("packets carry at least one flit")
        path = self._routes.get((src, dst))
        if path is None:
            path = tuple(route(self.topology, src, dst, order=self.order))
            self._routes[(src, dst)] = path
        hop_cost = self._hop_cost
        stall_total = 0.0
        head = time + self._inject
        for link in path:
            start = link.free_at
            if start < head:
                start = head
            else:
                stall = start - head
                stall_total += stall
                link.stall_cycles += stall
            link.free_at = start + flits
            link.busy_cycles += flits
            link.packets += 1
            if link.series is not None:
                link.series.add_range(start, start + flits)
            head = start + hop_cost
        arrival = head + (flits - 1) + self._eject
        cv = self.counters.raw
        cv["packets"] += 1
        cv["flits"] += flits
        cv["hops"] += len(path)
        cv["stall_cycles"] += stall_total
        if self._trace is not None and stall_total >= self._trace_threshold:
            self._trace.instant(
                self._trace_track, "congested", time,
                {"src": tuple(src), "dst": tuple(dst),
                 "stall": stall_total, "hops": len(path)})
        report = DeliveryReport(arrival, len(path), stall_total)
        if self._audit is not None:
            self._audit.noc_send(self, src, dst, flits, time, report)
        return report

    def send_arrival(self, src: Coord, dst: Coord, flits: int,
                     time: float) -> float:
        """Hot-path variant of :meth:`send` returning only the arrival
        cycle.  Link-state updates and counters are identical; the
        :class:`DeliveryReport` allocation is skipped.  Falls back to
        :meth:`send` whenever an attached hook needs the full report.
        """
        if self._trace is not None or self._audit is not None:
            return self.send(src, dst, flits, time).arrival
        if flits <= 0:
            raise ValueError("packets carry at least one flit")
        path = self._routes.get((src, dst))
        if path is None:
            path = tuple(route(self.topology, src, dst, order=self.order))
            self._routes[(src, dst)] = path
        hop_cost = self._hop_cost
        stall_total = 0.0
        head = time + self._inject
        for link in path:
            start = link.free_at
            if start < head:
                start = head
            else:
                stall = start - head
                stall_total += stall
                link.stall_cycles += stall
            link.free_at = start + flits
            link.busy_cycles += flits
            link.packets += 1
            if link.series is not None:
                link.series.add_range(start, start + flits)
            head = start + hop_cost
        cv = self.counters.raw
        cv["packets"] += 1
        cv["flits"] += flits
        cv["hops"] += len(path)
        cv["stall_cycles"] += stall_total
        return head + (flits - 1) + self._eject

    def reserve_leg(self, src: Coord, dst: Coord, flits: int, time: float,
                    inside: "Callable[[Coord], bool]") -> float:
        """Reserve only part of the ``src -> dst`` path: the links whose
        both endpoints satisfy ``inside``.  Returns the total stall
        accumulated on the reserved links.

        This is the PDES shard's half of a cross-Cell walk: the shard
        owns (and shares with its Cell-local traffic) exactly the links
        inside its own Cell, while the boundary crossing itself is
        priced by the coordinator's edge ledger and foreign Cells' links
        by the shard that owns them.  The head advances through skipped
        links at zero-load cost, so reserved-link start times line up
        with where a full :meth:`send` walk would put them.
        """
        path = self._routes.get((src, dst))
        if path is None:
            path = tuple(route(self.topology, src, dst, order=self.order))
            self._routes[(src, dst)] = path
        hop_cost = self._hop_cost
        stall_total = 0.0
        head = time + self._inject
        for link in path:
            if not (inside(link.src) and inside(link.dst)):
                head += hop_cost
                continue
            start = link.free_at
            if start < head:
                start = head
            else:
                stall = start - head
                stall_total += stall
                link.stall_cycles += stall
            link.free_at = start + flits
            link.busy_cycles += flits
            link.packets += 1
            if link.series is not None:
                link.series.add_range(start, start + flits)
            head = start + hop_cost
        return stall_total

    def zero_load_latency(self, src: Coord, dst: Coord, flits: int = 1) -> float:
        """Latency with no contention (for tests and analytic checks)."""
        hops = len(route(self.topology, src, dst, order=self.order))
        return (self._inject + hops * self._hop_cost
                + (flits - 1) + self._eject)

    def conservative_latency(self, src: Coord, dst: Coord,
                             flits: int = 1) -> float:
        """Zero-load latency with *no state touched*: pure arithmetic on a
        memoized hop count.  Equal to :meth:`zero_load_latency` (dimension-
        ordered paths take exactly ``hop_count`` links), but safe to call
        from the PDES cross-Cell channel, where pricing a packet must not
        mutate link reservations -- shards never share link state, so any
        mutation here would make their histories diverge.
        """
        key = (src, dst)
        hops = self._hops.get(key)
        if hops is None:
            hops = hop_count(self.topology, src, dst)
            self._hops[key] = hops
        return (self._inject + hops * self._hop_cost
                + (flits - 1) + self._eject)

    def reset(self) -> None:
        self.topology.reset_counters()
        self.counters = Counter()
