"""The word-oriented global network: contention-aware packet timing.

Each of the two physical planes (requests, responses) is a
:class:`Network`.  A packet's delivery time is computed by walking its
dimension-ordered path once and reserving ``flits`` cycles on every link
against that link's ``free_at`` horizon.  This reproduces serialization,
head-of-line waiting and bisection saturation at O(hops) per packet --
the fidelity tier appropriate to an architectural (non-RTL) model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.geometry import ChipGeometry, Coord
from ..arch.params import NocTiming
from ..engine.stats import Counter
from .routing import route
from .topology import Topology


@dataclass
class DeliveryReport:
    """Timing of one packet's traversal."""

    arrival: float
    hops: int
    stall_cycles: float


class Network:
    """One physical network plane."""

    def __init__(self, chip: ChipGeometry, timing: NocTiming, ruche: bool,
                 order: str, name: str = "net",
                 record_bin_width: Optional[float] = None) -> None:
        self.chip = chip
        self.timing = timing
        self.order = order
        self.name = name
        self.topology = Topology(chip, ruche=ruche,
                                 ruche_factor=timing.ruche_factor)
        self.counters = Counter()
        if record_bin_width is not None:
            for link in self.topology.links():
                link.enable_series(record_bin_width)

    def send(self, src: Coord, dst: Coord, flits: int, time: float) -> DeliveryReport:
        """Reserve the path for a packet injected at ``time``.

        Returns the cycle at which the last flit is ejected at ``dst``.
        Same-node delivery (e.g. a tile loading from a bank in its own
        column position) still pays inject + eject.
        """
        if flits <= 0:
            raise ValueError("packets carry at least one flit")
        hop_cost = self.timing.router_latency + self.timing.link_cycles_per_flit
        stall_total = 0.0
        path = route(self.topology, src, dst, order=self.order)
        head = time + self.timing.inject_latency
        for link in path:
            earliest = head
            start = max(earliest, link.free_at)
            stall = start - earliest
            stall_total += stall
            link.stall_cycles += stall
            link.free_at = start + flits
            link.busy_cycles += flits
            link.packets += 1
            if link.series is not None:
                link.series.add_range(start, start + flits)
            head = start + hop_cost
        arrival = head + (flits - 1) + self.timing.eject_latency
        self.counters.add("packets")
        self.counters.add("flits", flits)
        self.counters.add("hops", len(path))
        self.counters.add("stall_cycles", stall_total)
        return DeliveryReport(arrival=arrival, hops=len(path), stall_cycles=stall_total)

    def zero_load_latency(self, src: Coord, dst: Coord, flits: int = 1) -> float:
        """Latency with no contention (for tests and analytic checks)."""
        hop_cost = self.timing.router_latency + self.timing.link_cycles_per_flit
        hops = len(route(self.topology, src, dst, order=self.order))
        return (self.timing.inject_latency + hops * hop_cost
                + (flits - 1) + self.timing.eject_latency)

    def reset(self) -> None:
        self.topology.reset_counters()
        self.counters = Counter()
