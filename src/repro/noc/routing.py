"""Dimension-ordered routing over mesh / half-Ruche topologies.

The paper routes requests X-then-Y and responses Y-then-X (best for
throughput given cache strips on the Cell's north/south edges).  In the
X phase, Ruche links of hop distance 3 are taken greedily while at least
3 columns remain; the remainder travels on mesh links.
"""

from __future__ import annotations

from typing import List

from ..arch.geometry import Coord
from .topology import Link, Topology


def _x_steps(x: int, tx: int, topo: Topology) -> List[int]:
    """Sequence of x coordinates visited between ``x`` and ``tx``."""
    steps = [x]
    factor = topo.ruche_factor if topo.ruche else 1
    while x != tx:
        dx = tx - x
        if topo.ruche and abs(dx) >= factor:
            x += factor if dx > 0 else -factor
        else:
            x += 1 if dx > 0 else -1
        steps.append(x)
    return steps


def route(topo: Topology, src: Coord, dst: Coord, order: str = "xy") -> List[Link]:
    """Full link path from ``src`` to ``dst`` under dimension order."""
    if order not in ("xy", "yx"):
        raise ValueError(f"order must be 'xy' or 'yx', got {order!r}")
    links: List[Link] = []
    x, y = src
    tx, ty = dst

    def walk_x() -> None:
        nonlocal x
        xs = _x_steps(x, tx, topo)
        for a, b in zip(xs, xs[1:]):
            links.append(topo.link((a, y), (b, y)))
        x = tx

    def walk_y() -> None:
        nonlocal y
        step = 1 if ty > y else -1
        while y != ty:
            links.append(topo.link((x, y), (x, y + step)))
            y += step

    if order == "xy":
        walk_x()
        walk_y()
    else:
        walk_y()
        walk_x()
    return links


def hop_count(topo: Topology, src: Coord, dst: Coord) -> int:
    """Zero-load hop count (ruche-aware), without building Link objects."""
    dx = abs(dst[0] - src[0])
    dy = abs(dst[1] - src[1])
    if topo.ruche:
        q, r = divmod(dx, topo.ruche_factor)
        return q + r + dy
    return dx + dy
