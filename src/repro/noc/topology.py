"""Network topology: 2-D mesh plus optional half-Ruche horizontal links.

Every node of the global grid (tiles and cache banks alike -- the network
is homogeneous, per the paper) gets bidirectional mesh links to its four
neighbours.  When the Ruche network is enabled, every node additionally
gets horizontal links of hop distance ``RUCHE_FACTOR`` (3): these are the
long-range channels that pass over intermediate tiles and triple the
horizontal cut width, for the paper's quoted 4x bisection bandwidth
(3 ruche + 1 mesh channel per row and direction).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..arch.geometry import ChipGeometry, Coord
from ..arch.params import RUCHE_FACTOR
from ..engine.stats import BinnedSeries


class Link:
    """One directed channel with a reservation horizon and counters."""

    __slots__ = ("src", "dst", "ruche", "free_at", "busy_cycles",
                 "stall_cycles", "packets", "series")

    def __init__(self, src: Coord, dst: Coord, ruche: bool = False) -> None:
        self.src = src
        self.dst = dst
        self.ruche = ruche
        self.free_at: float = 0
        self.busy_cycles: float = 0
        self.stall_cycles: float = 0
        self.packets: int = 0
        self.series: Optional[BinnedSeries] = None

    @property
    def horizontal(self) -> bool:
        return self.src[1] == self.dst[1]

    def span(self) -> int:
        return abs(self.dst[0] - self.src[0]) + abs(self.dst[1] - self.src[1])

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def enable_series(self, bin_width: float) -> None:
        self.series = BinnedSeries(bin_width)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "ruche" if self.ruche else "mesh"
        return f"Link({self.src}->{self.dst}, {kind})"


class Topology:
    """All links of one physical network (request or response plane)."""

    def __init__(self, chip: ChipGeometry, ruche: bool,
                 ruche_factor: int = RUCHE_FACTOR) -> None:
        self.chip = chip
        self.ruche = ruche
        self.ruche_factor = ruche_factor
        self._links: Dict[Tuple[Coord, Coord], Link] = {}
        self._build()

    def _build(self) -> None:
        cols, rows = self.chip.grid_cols, self.chip.grid_rows
        for y in range(rows):
            for x in range(cols):
                src = (x, y)
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    dst = (x + dx, y + dy)
                    if 0 <= dst[0] < cols and 0 <= dst[1] < rows:
                        self._links[(src, dst)] = Link(src, dst, ruche=False)
                if self.ruche:
                    for dx in (self.ruche_factor, -self.ruche_factor):
                        dst = (x + dx, y)
                        if 0 <= dst[0] < cols:
                            self._links[(src, dst)] = Link(src, dst, ruche=True)

    def link(self, src: Coord, dst: Coord) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError as exc:
            raise KeyError(f"no link {src}->{dst}") from exc

    def has_link(self, src: Coord, dst: Coord) -> bool:
        return (src, dst) in self._links

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def num_links(self) -> int:
        return len(self._links)

    def cut_links_x(self, plane_x: float) -> List[Link]:
        """Horizontal links crossing the vertical plane ``x = plane_x``.

        The per-row cut width of this list *is* the bisection channel
        count: 1 per direction for mesh, 1 + ruche_factor with Ruche.
        """
        out = []
        for link in self._links.values():
            if not link.horizontal:
                continue
            lo, hi = sorted((link.src[0], link.dst[0]))
            if lo < plane_x < hi:
                out.append(link)
        return out

    def cut_links_y(self, plane_y: float) -> List[Link]:
        """Vertical links crossing the horizontal plane ``y = plane_y``."""
        out = []
        for link in self._links.values():
            if link.horizontal:
                continue
            lo, hi = sorted((link.src[1], link.dst[1]))
            if lo < plane_y < hi:
                out.append(link)
        return out

    def cell_edge_links(self, chip: ChipGeometry, src_cell: Coord,
                        dst_cell: Coord) -> List[Link]:
        """Directed links crossing from Cell ``src_cell`` into the
        adjacent Cell ``dst_cell``: every link whose endpoints straddle
        the shared boundary in that direction, restricted to the grid
        rows (columns) the two Cells span.  This is the built-links
        ground truth for :func:`repro.noc.analysis.cell_edge_channels`.
        """
        sx, sy = src_cell
        dx, dy = dst_cell
        if abs(sx - dx) + abs(sy - dy) != 1:
            raise ValueError(
                f"cells {src_cell} and {dst_cell} are not adjacent")
        ox, oy = chip.cell_origin(dst_cell if dx > sx or dy > sy
                                  else src_cell)
        out = []
        if sy == dy:  # vertical boundary, horizontal links
            plane = ox - 0.5 if dx > sx else \
                chip.cell_origin(src_cell)[0] - 0.5
            lo, hi = oy, oy + chip.cell.rows
            forward = dx > sx
            for link in self._links.values():
                if not link.horizontal or not lo <= link.src[1] < hi:
                    continue
                a, b = link.src[0], link.dst[0]
                if (b > a) != forward:
                    continue
                if min(a, b) < plane < max(a, b):
                    out.append(link)
        else:  # horizontal boundary, vertical links
            plane = oy - 0.5 if dy > sy else \
                chip.cell_origin(src_cell)[1] - 0.5
            lo, hi = ox, ox + chip.cell.cols
            forward = dy > sy
            for link in self._links.values():
                if link.horizontal or not lo <= link.src[0] < hi:
                    continue
                a, b = link.src[1], link.dst[1]
                if (b > a) != forward:
                    continue
                if min(a, b) < plane < max(a, b):
                    out.append(link)
        return out

    def reset_counters(self) -> None:
        for link in self._links.values():
            link.free_at = 0
            link.busy_cycles = 0
            link.stall_cycles = 0
            link.packets = 0
