"""Wormhole refill/evict channels along each cache-bank strip.

Cache banks do not use the global word network for DRAM traffic; each
strip of banks has dedicated 1-D wormhole flow-controlled channels to the
memory controller, with *skipped* channel pairs that halve the effective
distance for banks in the middle of the strip (paper Section III-A).

The model: a strip owns ``num_channels`` parallel channels; a line
transfer picks the earliest-free one, pays a distance-dependent transit
latency plus the burst serialization.
"""

from __future__ import annotations

from typing import List, Tuple

from ..engine.stats import Interval


class WormholeStrip:
    """Refill/evict channels for one cache-bank strip."""

    def __init__(self, num_banks: int, num_channels: int = 2,
                 channel_bytes_per_cycle: int = 8, skip_distance: int = 2,
                 base_latency: int = 2) -> None:
        if num_banks <= 0 or num_channels <= 0:
            raise ValueError("strip needs banks and channels")
        self.num_banks = num_banks
        self.num_channels = num_channels
        self.channel_bytes_per_cycle = channel_bytes_per_cycle
        self.skip_distance = skip_distance
        self.base_latency = base_latency
        self._channels: List[Interval] = [Interval() for _ in range(num_channels)]
        self.transfers = 0
        self.bytes_moved = 0
        #: Timeline tracer hook (set by :func:`repro.trace.attach`):
        #: one track per channel, so reserved bursts never overlap.
        self._trace = None
        self._trace_tracks: Tuple[int, ...] = ()
        #: Invariant-checker hook (set by :func:`repro.audit.attach`):
        #: per-channel burst serialization and transit-latency floors.
        self._audit = None

    def _transit_latency(self, bank_x: int) -> int:
        """Hops to the controller at the strip edge; skip channels let the
        head flit jump ``skip_distance`` banks per cycle."""
        distance = min(bank_x, self.num_banks - 1 - bank_x)
        return self.base_latency + -(-distance // self.skip_distance)

    def transfer(self, bank_x: int, nbytes: int, time: float) -> Tuple[float, float]:
        """Move ``nbytes`` between bank ``bank_x`` and the controller.

        Returns ``(start, done)``: the channel occupancy window.  ``done``
        is when the tail flit clears the strip.
        """
        if not 0 <= bank_x < self.num_banks:
            raise ValueError(f"bank {bank_x} outside strip of {self.num_banks}")
        if nbytes <= 0:
            raise ValueError("transfer needs a positive byte count")
        burst = -(-nbytes // self.channel_bytes_per_cycle)
        # Earliest-free channel, first wins ties (hot path: no key lambda).
        channels = self._channels
        channel = channels[0]
        for cand in channels:
            if cand.free_at < channel.free_at:
                channel = cand
        start = channel.reserve(time, burst)
        done = start + burst + self._transit_latency(bank_x)
        self.transfers += 1
        self.bytes_moved += nbytes
        if self._trace is not None:
            self._trace.complete(
                self._trace_tracks[channels.index(channel)], "burst",
                start, burst, {"bank": bank_x, "bytes": nbytes})
        if self._audit is not None:
            self._audit.strip_transfer(
                self, channels.index(channel), time, start, burst, done,
                bank_x)
        return start, done

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        busy = sum(c.busy_cycles for c in self._channels)
        return min(1.0, busy / (elapsed * self.num_channels))
