"""repro.orch: the parallel sweep orchestrator.

The paper's evaluation is a grid of independent simulations (kernels x
feature rungs x topologies x machine scales).  This package turns that
grid into a first-class subsystem:

* :mod:`job` -- the declarative :class:`Job` spec each experiment
  harness enumerates, plus the worker-side executor;
* :mod:`fingerprint` -- a content hash of the simulator's source, so
  cached results are invalidated when the model changes;
* :mod:`cache` -- the content-addressed result store under
  ``.repro-cache/`` (JSON artifacts keyed by job spec + arch config +
  code fingerprint);
* :mod:`journal` -- the JSONL run journal (per-job wall time, cycles,
  worker id, retries, outcome);
* :mod:`graph` -- sweeps (jobs + a pure reduce step) and the deduplicated
  execution plan across several sweeps;
* :mod:`_pool` -- the multiprocessing scheduler: worker pool, per-job
  timeout, bounded retry, Ctrl-C cancellation, progress/ETA
  (``repro.orch.pool`` remains as a deprecated import shim; the
  long-lived service front end over this pool is :mod:`repro.serve`).
"""

from .cache import ResultStore, cache_key, default_cache_dir
from .fingerprint import code_fingerprint
from .graph import Plan, Sweep, build_plan, reduce_all
from .job import Job, execute, jsonable
from .journal import RunJournal, read_journal
from ._pool import (
    WORKER_BUDGET_ENV,
    JobOutcome,
    collect_payloads,
    execute_serial,
    run_jobs,
)

__all__ = [
    "Job",
    "JobOutcome",
    "WORKER_BUDGET_ENV",
    "Plan",
    "ResultStore",
    "RunJournal",
    "Sweep",
    "build_plan",
    "cache_key",
    "code_fingerprint",
    "collect_payloads",
    "default_cache_dir",
    "execute",
    "execute_serial",
    "jsonable",
    "read_journal",
    "reduce_all",
    "run_jobs",
]
