"""The scheduler: a multiprocessing worker pool for job sweeps.

Workers are plain ``multiprocessing`` processes, each connected to the
scheduler by its own duplex pipe, so the scheduler always knows which
job every worker holds.  That makes the hard cases cheap:

* **per-job timeout** -- a worker past its deadline is terminated and a
  fresh one spawned; the job is retried or marked ``timeout``;
* **bounded retry** -- a failing/crashing job is re-queued until its
  attempt budget (``Job.retries`` + 1) is spent;
* **graceful Ctrl-C** -- workers ignore SIGINT; the scheduler catches
  the interrupt, terminates the pool, marks unfinished jobs
  ``cancelled`` and still returns (and journals) every outcome;
* **progress/ETA** -- every completion is reported with a running ETA
  estimated from the mean computed-job wall time.

``workers <= 0`` selects in-process serial execution with identical
cache/journal semantics (timeouts need a process boundary and are not
enforced there).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Mapping, Optional

from .cache import ResultStore, cache_key
from .fingerprint import code_fingerprint
from .job import Job, execute
from .journal import RunJournal

#: Terminal job states.
OK, CACHED, FAILED, TIMEOUT, CANCELLED = (
    "ok", "cached", "failed", "timeout", "cancelled")

#: Process budget exported to every job's environment: how many worker
#: processes the job itself may spawn (``Job.procs``, the slot grant the
#: scheduler charged for it).  ``repro.pdes.resolve_workers`` clamps
#: shard-worker requests to it, so a multi-Cell job inside a pool never
#: nests a second full-width pool on the same host.
WORKER_BUDGET_ENV = "REPRO_WORKER_BUDGET"


def _job_cost(job: Job, workers: int) -> int:
    """Scheduler slots a job occupies (its process budget, capped)."""
    return min(max(job.procs, 1), max(workers, 1))

ProgressFn = Callable[["JobOutcome", int, int, Optional[float]], None]


@dataclass
class JobOutcome:
    """What happened to one job of a sweep."""

    job: Job
    key: str
    status: str
    payload: Optional[Any] = None
    error: Optional[str] = None
    wall_s: float = 0.0
    worker: Optional[int] = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.status in (OK, CACHED)


def execute_serial(jobs: List[Job]) -> Dict[str, Any]:
    """Run jobs in-process with no cache; returns ``{job.key: payload}``.

    This is what every experiment's ``run()`` uses, so the figure
    harnesses stay importable, debuggable functions while sharing the
    exact execution path (:func:`repro.orch.job.execute`) with the pool.
    """
    return {job.key: execute(job) for job in jobs}


def run_jobs(jobs: List[Job], *, workers: int = 1,
             store: Optional[ResultStore] = None,
             fingerprint: Optional[str] = None,
             keys: Optional[List[str]] = None,
             journal: Optional[RunJournal] = None,
             default_timeout: Optional[float] = None,
             use_cache: bool = True,
             progress: Optional[ProgressFn] = None) -> List[JobOutcome]:
    """Execute jobs through the cache + pool; outcomes align with ``jobs``."""
    fingerprint = fingerprint or code_fingerprint()
    keys = list(keys) if keys is not None else [
        cache_key(job, fingerprint) for job in jobs]
    if len(keys) != len(jobs):
        raise ValueError("keys must align with jobs")
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    tracker = _Progress(progress, total=len(jobs))

    def settle(idx: int, outcome: JobOutcome) -> None:
        outcomes[idx] = outcome
        if journal is not None:
            journal.write_job(
                experiment=outcome.job.experiment, key=outcome.job.key,
                cache_key=outcome.key, outcome=outcome.status,
                wall_s=round(outcome.wall_s, 6), worker=outcome.worker,
                attempts=outcome.attempts, error=outcome.error,
                cycles=_cycles_of(outcome.payload))
        if outcome.status == OK and store is not None:
            store.put(outcome.key, outcome.job, outcome.payload,
                      meta={"wall_s": outcome.wall_s,
                            "fingerprint": fingerprint,
                            "attempts": outcome.attempts})
        tracker.report(outcome)

    misses: List[int] = []
    for idx, (job, key) in enumerate(zip(jobs, keys)):
        record = store.get(key) if (use_cache and store is not None) else None
        if record is not None:
            settle(idx, JobOutcome(job, key, CACHED,
                                   payload=record["payload"]))
        else:
            misses.append(idx)
    if misses:
        if workers <= 0:
            _run_inprocess(jobs, keys, misses, settle)
        else:
            _run_pool(jobs, keys, misses, settle, workers, default_timeout)
    # Anything never settled (defensive: should only happen on interrupt
    # races) counts as cancelled rather than crashing the reduce step.
    return [o if o is not None else JobOutcome(jobs[i], keys[i], CANCELLED)
            for i, o in enumerate(outcomes)]


def collect_payloads(outcomes: List[JobOutcome]) -> Dict[str, Any]:
    """``{cache_key: payload}`` with ``None`` for unfinished jobs."""
    return {o.key: (o.payload if o.ok else None) for o in outcomes}


def _cycles_of(payload: Any) -> Optional[float]:
    if isinstance(payload, Mapping) and isinstance(
            payload.get("cycles"), (int, float)):
        return payload["cycles"]
    return None


class _Progress:
    def __init__(self, fn: Optional[ProgressFn], total: int) -> None:
        self.fn = fn
        self.total = total
        self.done = 0
        self.computed_wall = 0.0
        self.computed = 0

    def report(self, outcome: JobOutcome) -> None:
        self.done += 1
        if outcome.status == OK:
            self.computed += 1
            self.computed_wall += outcome.wall_s
        if self.fn is not None:
            eta = None
            if self.computed:
                mean = self.computed_wall / self.computed
                eta = mean * (self.total - self.done)
            self.fn(outcome, self.done, self.total, eta)


def _run_inprocess(jobs: List[Job], keys: List[str], misses: List[int],
                   settle: Callable[[int, JobOutcome], None]) -> None:
    queue = deque(misses)
    attempts = {idx: 0 for idx in misses}
    current: Optional[int] = None
    try:
        while queue:
            idx = current = queue.popleft()
            attempts[idx] += 1
            t0 = time.perf_counter()
            previous = os.environ.get(WORKER_BUDGET_ENV)
            os.environ[WORKER_BUDGET_ENV] = str(max(jobs[idx].procs, 1))
            try:
                payload = execute(jobs[idx])
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 -- retried/reported
                wall = time.perf_counter() - t0
                if attempts[idx] <= jobs[idx].retries:
                    queue.append(idx)
                else:
                    settle(idx, JobOutcome(
                        jobs[idx], keys[idx], FAILED,
                        error=f"{type(exc).__name__}: {exc}",
                        wall_s=wall, attempts=attempts[idx]))
            else:
                settle(idx, JobOutcome(
                    jobs[idx], keys[idx], OK, payload=payload,
                    wall_s=time.perf_counter() - t0,
                    attempts=attempts[idx]))
            finally:
                if previous is None:
                    os.environ.pop(WORKER_BUDGET_ENV, None)
                else:
                    os.environ[WORKER_BUDGET_ENV] = previous
            current = None
    except KeyboardInterrupt:
        cancelled = set(queue)
        if current is not None:
            cancelled.add(current)
        for idx in sorted(cancelled):
            settle(idx, JobOutcome(jobs[idx], keys[idx], CANCELLED,
                                   attempts=attempts[idx]))


# ---------------------------------------------------------------------------
# The process pool proper.

def _worker_main(conn: connection.Connection, worker_id: int) -> None:
    """Child loop: receive (idx, job), execute, send the result back."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns Ctrl-C
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        idx, job = msg
        # The job's slot grant, visible to anything it spawns (nested
        # PDES shard pools size themselves from this).
        os.environ[WORKER_BUDGET_ENV] = str(max(job.procs, 1))
        t0 = time.perf_counter()
        try:
            payload = execute(job)
        except BaseException as exc:  # noqa: BLE001 -- serialized to parent
            conn.send((idx, FAILED, f"{type(exc).__name__}: {exc}",
                       time.perf_counter() - t0, worker_id))
        else:
            conn.send((idx, OK, payload,
                       time.perf_counter() - t0, worker_id))
    conn.close()


class _Worker:
    __slots__ = ("proc", "conn", "task", "deadline", "wid")

    def __init__(self, ctx: Any, wid: int) -> None:
        parent, child = ctx.Pipe(duplex=True)
        # Non-daemonic on purpose: a daemonic process may not fork
        # children, which would bar multi-Cell PDES jobs (procs > 1)
        # from spawning their shard workers.  Cleanup still converges:
        # the worker loop exits on pipe EOF, so workers never outlive a
        # parent that died without the explicit shutdown handshake.
        self.proc = ctx.Process(target=_worker_main, args=(child, wid),
                                daemon=False)
        self.proc.start()
        child.close()  # parent keeps only its end
        self.conn = parent
        self.task: Optional[int] = None
        self.deadline: Optional[float] = None
        self.wid = wid

    def assign(self, idx: int, job: Job,
               default_timeout: Optional[float]) -> None:
        self.task = idx
        limit = job.timeout_s if job.timeout_s is not None else default_timeout
        self.deadline = (time.monotonic() + limit) if limit else None
        self.conn.send((idx, job))

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)


def _context() -> Any:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _run_pool(jobs: List[Job], keys: List[str], misses: List[int],
              settle: Callable[[int, JobOutcome], None], workers: int,
              default_timeout: Optional[float]) -> None:
    ctx = _context()
    queue = deque(misses)
    attempts = {idx: 0 for idx in misses}
    unsettled = set(misses)
    pool = [_Worker(ctx, wid) for wid in range(min(workers, len(misses)))]
    next_wid = len(pool)
    idle = list(pool)
    # Slot ledger: a job holding `procs` worker processes of its own
    # (nested PDES shard pools) is charged that many scheduler slots, so
    # total host processes stay bounded by `workers` even when multi-Cell
    # jobs mix with ordinary ones.  A fully idle pool always admits the
    # head job (its cost is capped at `workers`), so nothing starves.
    held: Dict[int, int] = {}  # worker id -> slots charged

    def finish(idx: int, status: str, payload: Any, error: Optional[str],
               wall: float, wid: Optional[int]) -> None:
        unsettled.discard(idx)
        settle(idx, JobOutcome(jobs[idx], keys[idx], status, payload=payload,
                               error=error, wall_s=wall, worker=wid,
                               attempts=attempts[idx]))

    def retry_or(idx: int, status: str, error: str, wall: float,
                 wid: Optional[int]) -> None:
        if attempts[idx] <= jobs[idx].retries:
            queue.append(idx)
        else:
            finish(idx, status, None, error, wall, wid)

    try:
        while queue or any(w.task is not None for w in pool):
            while queue and idle:
                cost = _job_cost(jobs[queue[0]], workers)
                in_use = sum(held.values())
                if in_use and in_use + cost > workers:
                    break  # wait for slots to free before admitting
                worker = idle.pop()
                idx = queue.popleft()
                attempts[idx] += 1
                held[worker.wid] = cost
                worker.assign(idx, jobs[idx], default_timeout)
            busy = [w for w in pool if w.task is not None]
            if not busy:
                continue
            now = time.monotonic()
            deadlines = [w.deadline for w in busy if w.deadline is not None]
            wait_s = max(0.0, min(deadlines) - now) if deadlines else None
            ready = connection.wait([w.conn for w in busy], timeout=wait_s)
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                idx = worker.task
                worker.task = worker.deadline = None
                held.pop(worker.wid, None)
                try:
                    _idx, status, result, wall, wid = conn.recv()
                except (EOFError, OSError):  # the worker crashed outright
                    worker.kill()
                    pool.remove(worker)
                    replacement = _Worker(ctx, next_wid)
                    next_wid += 1
                    pool.append(replacement)
                    idle.append(replacement)
                    retry_or(idx, FAILED, "worker process died", 0.0,
                             worker.wid)
                    continue
                idle.append(worker)
                if status == OK:
                    finish(idx, OK, result, None, wall, wid)
                else:
                    retry_or(idx, FAILED, result, wall, wid)
            now = time.monotonic()
            for worker in list(pool):
                if (worker.task is not None and worker.deadline is not None
                        and now >= worker.deadline):
                    idx = worker.task
                    held.pop(worker.wid, None)
                    worker.kill()
                    pool.remove(worker)
                    if worker in idle:
                        idle.remove(worker)
                    replacement = _Worker(ctx, next_wid)
                    next_wid += 1
                    pool.append(replacement)
                    idle.append(replacement)
                    limit = (jobs[idx].timeout_s
                             if jobs[idx].timeout_s is not None
                             else default_timeout)
                    retry_or(idx, TIMEOUT, f"timed out after {limit:g}s",
                             limit or 0.0, worker.wid)
    except KeyboardInterrupt:
        for idx in sorted(unsettled):
            finish(idx, CANCELLED, None, "interrupted", 0.0, None)
    finally:
        for worker in pool:
            if worker.task is None:
                try:
                    worker.conn.send(None)  # polite shutdown
                except (OSError, BrokenPipeError):
                    pass
            worker.kill()
