"""Content-addressed result store under ``.repro-cache/``.

Each artifact is one JSON file named by the sha256 of the job spec
(run-function path + params + serialized machine config + seed) plus the
code fingerprint.  Identical sweeps are therefore pure cache hits, a
changed arch config invalidates exactly the jobs that use it, and a
changed simulator invalidates everything -- the three rules
``docs/MODEL.md`` documents.

The store location is resolved in exactly one place,
:func:`default_cache_dir`: the ``REPRO_CACHE_DIR`` environment variable
when set, else ``.repro-cache``.  Every consumer (the sweep CLI, the
serve daemon, ad-hoc :class:`ResultStore` construction) goes through it,
so a client and the server it talks to agree on one store.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from .job import Job, canonical_json

DEFAULT_ROOT = ".repro-cache"

#: Environment override for the store location, honored by every
#: ``--cache-dir`` default and by the serve daemon.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bumped when the artifact layout changes incompatibly.
STORE_FORMAT = 1


def default_cache_dir() -> str:
    """The store root: ``$REPRO_CACHE_DIR`` when set, else ``.repro-cache``."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_ROOT


def cache_key(job: Job, fingerprint: str) -> str:
    """Stable content address of one job's result."""
    spec = dict(job.spec())
    spec["fingerprint"] = fingerprint
    return hashlib.sha256(canonical_json(spec).encode()).hexdigest()


class ResultStore:
    """A directory of ``<aa>/<rest-of-key>.json`` result artifacts."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:] + ".json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record, or ``None`` on miss/corruption.

        A truncated or hand-edited artifact is treated as a miss (and
        removed) rather than an error: the sweep can always recompute.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        if record.get("format") != STORE_FORMAT:
            return None
        return record

    def put(self, key: str, job: Job, payload: Any,
            meta: Optional[Dict[str, Any]] = None) -> str:
        """Write one artifact atomically; returns its path."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {
            "format": STORE_FORMAT,
            "key": key,
            "job": {"experiment": job.experiment, "key": job.key,
                    **job.spec()},
            "meta": dict(meta or {}),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)  # atomic: readers never see a torn file
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return path

    def stats(self) -> Dict[str, int]:
        """Artifact count and total bytes (for ``repro sweep`` reporting)."""
        count = size = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fname in filenames:
                if fname.endswith(".json"):
                    count += 1
                    try:
                        size += os.path.getsize(os.path.join(dirpath, fname))
                    except OSError:
                        pass
        return {"artifacts": count, "bytes": size}
