"""Code fingerprint: which simulator produced a cached result.

The cache key of every job includes a hash of the model's source tree,
so editing the simulator invalidates stale results automatically --
without it a ``.repro-cache/`` left over from an older checkout would
silently serve wrong numbers.

Presentation-only modules are excluded (see ``_EXCLUDED``): changing the
orchestrator itself, the CLI, or report formatting cannot change what a
simulation computes, and excluding them keeps a warm cache warm across
harness-side work.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from typing import Iterator, Tuple

#: Top-level repro submodules whose source does not affect simulated
#: results. Everything else under ``repro`` is fingerprinted.
_EXCLUDED = ("orch", "cli.py", "__main__.py", "profile", "serve")

_DIGEST_CHARS = 16  # 64 bits: ample for "did the code change" detection


def _package_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _source_files(root: str) -> Iterator[Tuple[str, str]]:
    """Yield (relative path, absolute path) of fingerprinted sources."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            abspath = os.path.join(dirpath, fname)
            rel = os.path.relpath(abspath, root)
            top = rel.replace(os.sep, "/").split("/")[0]
            if top in _EXCLUDED:
                continue
            yield rel.replace(os.sep, "/"), abspath


@lru_cache(maxsize=None)
def code_fingerprint(root: str = None) -> str:
    """Hex digest over the simulator's source files (path + content).

    ``root`` defaults to the installed ``repro`` package directory; it
    is overridable so tests can fingerprint synthetic trees.
    """
    root = root or _package_root()
    digest = hashlib.sha256()
    for rel, abspath in _source_files(root):
        digest.update(rel.encode())
        digest.update(b"\0")
        with open(abspath, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    return digest.hexdigest()[:_DIGEST_CHARS]
