"""Sweeps and the deduplicated execution plan.

A :class:`Sweep` is one experiment's slice of the evaluation grid: a
list of :class:`Job` specs plus a *pure* reduce step that assembles the
figure/table from the per-job payloads.  :func:`build_plan` merges
several sweeps into one plan, deduplicating jobs whose cache keys
coincide (e.g. two figures asking for the same kernel on the same
machine), which is the job graph the scheduler actually executes:

    job ... job        (independent leaves, run by the worker pool)
      \\  |  /
     reduce(sweep)     (pure, in the parent process)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from .cache import cache_key
from .job import Job


@dataclass
class Sweep:
    """One experiment as a fan-out of jobs plus a pure reduce."""

    name: str
    jobs: List[Job]
    reduce: Callable[[Mapping[str, Any]], Any]

    def __post_init__(self) -> None:
        keys = [job.key for job in self.jobs]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(
                f"sweep {self.name!r} has duplicate job keys: {dupes}")


@dataclass
class Plan:
    """The union of several sweeps with shared jobs deduplicated."""

    sweeps: List[Sweep]
    unique_jobs: List[Job] = field(default_factory=list)
    #: cache key of every (sweep, job), including deduplicated ones.
    key_of: Dict[int, str] = field(default_factory=dict)  # id(job) -> key

    @property
    def total_jobs(self) -> int:
        return sum(len(s.jobs) for s in self.sweeps)

    def payloads_for(self, sweep: Sweep,
                     by_key: Mapping[str, Any]) -> Dict[str, Any]:
        """This sweep's ``{job.key: payload}`` view of the run results."""
        return {job.key: by_key[self.key_of[id(job)]] for job in sweep.jobs}


def build_plan(sweeps: List[Sweep], fingerprint: str) -> Plan:
    """Merge sweeps, dropping jobs whose cache key is already planned."""
    plan = Plan(sweeps=list(sweeps))
    seen: Dict[str, Job] = {}
    for sweep in plan.sweeps:
        for job in sweep.jobs:
            key = cache_key(job, fingerprint)
            plan.key_of[id(job)] = key
            if key not in seen:
                seen[key] = job
                plan.unique_jobs.append(job)
    return plan


def reduce_all(plan: Plan, by_key: Mapping[str, Any],
               on_error: Optional[Callable[[Sweep, Exception], None]] = None
               ) -> Dict[str, Any]:
    """Run every sweep's reduce over the collected payloads.

    A sweep whose jobs are incomplete (some payload is ``None``) or
    whose reduce raises is reported through ``on_error`` and omitted
    from the result -- one broken figure must not sink the others.
    """
    out: Dict[str, Any] = {}
    for sweep in plan.sweeps:
        try:
            payloads = plan.payloads_for(sweep, by_key)
            missing = [k for k, v in payloads.items() if v is None]
            if missing:
                raise RuntimeError(
                    f"{len(missing)} job(s) did not complete: "
                    + ", ".join(missing[:5]))
            out[sweep.name] = sweep.reduce(payloads)
        except Exception as exc:  # noqa: BLE001 -- isolate per sweep
            if on_error is None:
                raise
            on_error(sweep, exc)
    return out
