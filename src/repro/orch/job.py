"""The declarative job model.

A :class:`Job` is one simulation of the evaluation grid, described by
data only: the dotted path of a worker-side run function, JSON-able
parameters, and (optionally) the serialized machine configuration it
runs on.  Jobs are what the scheduler distributes, what the cache keys,
and what the journal records -- so everything in a spec must survive a
round-trip through JSON unchanged.

The run function contract::

    def my_job(params: dict, config: Optional[MachineConfig]) -> dict:
        ...  # run the simulation, return a JSON-able payload

``config`` arrives deserialized (via :mod:`repro.arch.serialize`) when
the spec carries one, else ``None``.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np


def jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into plain JSON-able python data.

    Numpy scalars become python scalars, arrays become lists, tuples
    become lists, dict keys become strings.  Anything else that json
    cannot represent raises ``TypeError`` -- better to fail at spec
    construction than at cache-write time.
    """
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    raise TypeError(f"not JSON-able: {value!r} ({type(value).__name__})")


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(jsonable(value), sort_keys=True,
                      separators=(",", ":"))


@dataclass(frozen=True)
class Job:
    """One unit of the evaluation grid, described declaratively.

    ``experiment``/``key`` identify the job to humans (and to the reduce
    step); ``fn``/``params``/``config``/``seed`` identify it to the
    cache.  ``key`` must be unique within its experiment's job list.
    """

    experiment: str
    key: str
    fn: str  # dotted "package.module:function" path of the run function
    params: Dict[str, Any] = field(default_factory=dict)
    config: Optional[Dict[str, Any]] = None  # arch.serialize.to_dict output
    seed: int = 0
    timeout_s: Optional[float] = None  # per-job wall-clock limit
    retries: int = 1  # attempts after the first failure/timeout
    #: Worker processes the job itself spawns (a multi-Cell PDES job
    #: sets this to its shard-worker count).  The pool charges the job
    #: that many scheduler slots so nested pools never oversubscribe the
    #: host, and exports the grant as ``REPRO_WORKER_BUDGET`` in the
    #: worker's environment (:func:`repro.pdes.resolve_workers` obeys
    #: it).  Scheduling metadata only -- excluded from :meth:`spec`, so
    #: cache identity is untouched.
    procs: int = 1

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"fn must be a 'module:function' path, got {self.fn!r}")
        # Normalize params/config to plain data now so equal jobs are
        # equal specs and the cache key never sees numpy leftovers.
        object.__setattr__(self, "params", jsonable(self.params))
        if self.config is not None:
            object.__setattr__(self, "config", jsonable(self.config))

    def spec(self) -> Dict[str, Any]:
        """The identity of this job's *result* (what the cache hashes).

        ``experiment`` and ``key`` are presentation, not identity: two
        sweeps asking for the same simulation share one cache entry.
        """
        return {
            "fn": self.fn,
            "params": self.params,
            "config": self.config,
            "seed": self.seed,
        }

    @property
    def name(self) -> str:
        return f"{self.experiment}/{self.key}"

    def to_wire(self) -> Dict[str, Any]:
        """The JSON form a :class:`repro.Client` submits to the daemon.

        Everything, not just :meth:`spec`: the server journals
        ``experiment``/``key`` for humans and honors ``timeout_s``/
        ``retries``/``procs`` as scheduling hints.
        """
        return {
            "experiment": self.experiment,
            "key": self.key,
            "fn": self.fn,
            "params": self.params,
            "config": self.config,
            "seed": self.seed,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "procs": self.procs,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Job":
        """Rebuild a job from :meth:`to_wire` output (unknown keys are
        rejected: a typo'd field silently dropped would corrupt cache
        identity)."""
        known = {"experiment", "key", "fn", "params", "config", "seed",
                 "timeout_s", "retries", "procs"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown job fields: {sorted(extra)}")
        missing = {"experiment", "key", "fn"} - set(data)
        if missing:
            raise ValueError(f"job missing fields: {sorted(missing)}")
        return cls(
            experiment=str(data["experiment"]),
            key=str(data["key"]),
            fn=str(data["fn"]),
            params=dict(data.get("params") or {}),
            config=data.get("config"),
            seed=int(data.get("seed", 0)),
            timeout_s=data.get("timeout_s"),
            retries=int(data.get("retries", 1)),
            procs=int(data.get("procs", 1)),
        )


def resolve(path: str) -> Callable[..., Any]:
    """Import the run function named by a ``module:function`` path."""
    module_name, _, fn_name = path.partition(":")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, fn_name)
    except AttributeError as exc:
        raise ImportError(f"no function {fn_name!r} in {module_name}") from exc


def execute(job: Job) -> Dict[str, Any]:
    """Run one job in this process and return its JSON-able payload.

    This is the single entry point workers use; keeping it trivial makes
    in-process and pooled execution bit-identical (the determinism
    regression test pins exactly that).
    """
    from ..arch import serialize

    fn = resolve(job.fn)
    config = serialize.from_dict(job.config) if job.config is not None else None
    payload = fn(dict(job.params), config)
    return jsonable(payload)
