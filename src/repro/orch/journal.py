"""The JSONL run journal.

One line per event, appended as the sweep runs, so a killed run still
leaves a usable record.  The first line is a ``header`` carrying
provenance (package version, code fingerprint, argv, job count); every
job completion -- cached, computed, failed, timed out, or cancelled --
adds a ``job`` line with wall time, cycles (when the payload reports
them), worker id, and retry count.  ``repro journal <path>`` renders a
post-hoc summary.
"""

from __future__ import annotations

import datetime
import json
import sys
from typing import Any, Dict, IO, Iterator, List, Optional


class RunJournal:
    """Append-only JSONL writer; ``path=None`` journals nowhere.

    ``append=True`` keeps whatever the file already holds -- the serve
    daemon uses it so a journal survives daemon restarts and the
    recovery pass can read what the previous run left behind.
    """

    def __init__(self, path: Optional[str], *, append: bool = False) -> None:
        self.path = path
        mode = "a" if append else "w"
        self._fh: Optional[IO[str]] = open(path, mode) if path else None

    def write_header(self, **fields: Any) -> None:
        self._write({
            "event": "header",
            "started": _utcnow(),
            **fields,
        })

    def write_job(self, **fields: Any) -> None:
        self._write({"event": "job", **fields})

    def write_event(self, event: str, **fields: Any) -> None:
        """One record of any event type (the serve daemon's intake:
        client registrations, submissions, dedup hits, quota denials)."""
        self._write({"event": event, **fields})

    def write_footer(self, **fields: Any) -> None:
        self._write({"event": "footer", "finished": _utcnow(), **fields})

    def _write(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        json.dump(record, self._fh, sort_keys=True)
        self._fh.write("\n")
        self._fh.flush()  # one line per event survives a kill -9

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")


def read_journal(path: str) -> List[Dict[str, Any]]:
    """All records of a journal file; tolerant of a torn last line."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                print(f"journal: skipping torn line in {path}",
                      file=sys.stderr)
    return records


def iter_jobs(records: Iterator[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
    for rec in records:
        if rec.get("event") == "job":
            yield rec
