"""Deprecated import path: the pool moved behind the scheduler layer.

The implementation lives in :mod:`repro.orch._pool`; the supported ways
to reach it are the :mod:`repro.orch` package exports (``run_jobs``,
``execute_serial``, ...) for in-process sweeps and the
:mod:`repro.serve` scheduler daemon + :class:`repro.Client` for the
shared service.  Importing names through ``repro.orch.pool`` keeps
working but emits a :class:`DeprecationWarning` (see the migration
table in ``docs/API.md``).
"""

from __future__ import annotations

import warnings

from . import _pool


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    try:
        value = getattr(_pool, name)
    except AttributeError:
        raise AttributeError(
            f"module 'repro.orch.pool' has no attribute {name!r}") from None
    # stacklevel=2 lands on the caller's import/attribute-access line
    # (the warnings machinery skips importlib frames), matching the
    # repro.runtime.host shim contract.
    warnings.warn(
        f"importing {name} from repro.orch.pool is deprecated; import it "
        "from repro.orch, or use the repro.serve scheduler for shared "
        "sweeps (see docs/API.md for the migration table)",
        DeprecationWarning, stacklevel=2)
    return value


def __dir__():
    return sorted(set(dir(_pool)))
