"""repro.pdes -- parallel multi-Cell simulation, conservatively synced.

The monolithic machine simulates every Cell in one event queue; this
package shards the chip one-Cell-per-shard and runs the shards in
parallel worker processes, synchronized by conservative time windows
whose lookahead is the inter-Cell NoC latency floor.  The layering:

* :mod:`~repro.pdes.channel` -- the typed cross-Cell message fabric
  (the only coupling between shards);
* :mod:`~repro.pdes.shard` -- one Cell's machine + window stepper,
  built from a picklable :class:`ShardSpec`;
* :mod:`~repro.pdes.coordinator` -- the window-barrier loop and the
  serial/forked transports (:func:`run_cells` is the entry point);
* :mod:`~repro.pdes.worker` -- the shard worker process;
* :mod:`~repro.pdes.fixture` -- cross-Cell traffic kernels for tests
  and smoke benches.

The determinism contract: ``run_cells(..., workers=1)`` and
``workers=N`` execute the *same* windowed algorithm over the same
deterministically-ordered message stream, so their results -- cycles,
counters, event counts, functional memory -- are bit-identical
(``CellsResult.fingerprint()`` collapses that to one hash).

Front ends: ``Session(config, cells=(X, Y))`` and ``repro cells`` on
the command line.
"""

from ..noc.analysis import intercell_lookahead, min_intercell_hops
from .channel import (
    CellAmo,
    CellRequest,
    CellResponse,
    PdesError,
    ShardChannel,
    sort_key,
)
from .coordinator import (
    WORKER_BUDGET_ENV,
    CellsResult,
    resolve_workers,
    run_cells,
)
from .shard import CellShard, LaunchSpec, ShardSpec, StepReport, resolve_kernel

__all__ = [
    "CellAmo",
    "CellRequest",
    "CellResponse",
    "CellShard",
    "CellsResult",
    "LaunchSpec",
    "PdesError",
    "ShardChannel",
    "ShardSpec",
    "StepReport",
    "WORKER_BUDGET_ENV",
    "intercell_lookahead",
    "min_intercell_hops",
    "resolve_kernel",
    "resolve_workers",
    "run_cells",
    "sort_key",
]
