"""Typed cross-Cell channels: the only traffic between PDES shards.

Every remote operation a tile issues funnels through
:meth:`~repro.runtime.memsys.MemorySystem.remote_request` /
``remote_amo``; when the translated destination lies in a Cell the shard
does not own, the installed :class:`ShardChannel` turns it into one of
three picklable message types instead of touching the local fabric:

* :class:`CellRequest` -- a remote load/store heading to a foreign bank;
* :class:`CellAmo` -- a remote atomic (functional execution happens at
  the *owning* shard, in its ingress event order -- the serialization
  point, exactly as in the monolithic machine);
* :class:`CellResponse` -- the answer routed back to the requester.

Cross-Cell packets are priced in two deterministic parts.  The channel
charges the zero-load latency of the real request/response networks
(:meth:`Network.conservative_latency` -- pure arithmetic, no link-state
mutation, so shard histories can never diverge through pricing).  The
coordinator then adds inter-Cell boundary contention on top: every
message carries its flit count and endpoint nodes, and
:class:`repro.pdes.contention.EdgeContention` replays the global message
stream against per-boundary-lane occupancy ledgers, so a congested Cell
edge stalls packets exactly as the monolithic link reservations would.
Contention only ever *adds* latency, which keeps the zero-load floor
over all cross-Cell pairs -- the conservative window's lookahead
(:func:`repro.noc.analysis.intercell_lookahead`) -- a valid bound.
Intra-Cell traffic keeps full per-link contention timing as before.

Determinism: every message carries ``(src_cell, seq)``; the coordinator
delivers each window's messages sorted by ``(arrival, src_cell, seq)``
(:func:`sort_key`), and ingress events are scheduled in that order, so
the receiving shard's event sequence -- and hence every cycle count --
is a pure function of the message *set*, not of worker count or pipe
timing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..arch.geometry import Coord
from ..engine import Future
from ..pgas.translate import Destination, TargetKind


class PdesError(RuntimeError):
    """A PDES-mode constraint was violated."""


class CellRequest:
    """A remote load/store crossing a Cell boundary."""

    __slots__ = ("seq", "req_id", "src_cell", "dst_cell", "src_node",
                 "dest", "is_write", "words", "flits", "resp_flits",
                 "arrival")

    #: Physical plane this packet rides (the chip has separate request
    #: and response networks, so contention lanes never mix them).
    plane = "req"

    def __init__(self, seq: int, req_id: int, src_cell: Coord,
                 dst_cell: Coord, src_node: Coord, dest: Destination,
                 is_write: bool, words: int, flits: int, resp_flits: int,
                 arrival: float) -> None:
        self.seq = seq
        self.req_id = req_id
        self.src_cell = src_cell
        self.dst_cell = dst_cell
        self.src_node = src_node
        self.dest = dest
        self.is_write = is_write
        self.words = words
        self.flits = flits
        self.resp_flits = resp_flits
        self.arrival = arrival

    @property
    def dst_node(self) -> Coord:
        return self.dest.node

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        op = "store" if self.is_write else "load"
        return (f"CellRequest({op} {self.src_cell}->{self.dst_cell} "
                f"t={self.arrival} seq={self.seq})")


class CellAmo:
    """A remote atomic crossing a Cell boundary."""

    __slots__ = ("seq", "req_id", "src_cell", "dst_cell", "src_node",
                 "dest", "kind", "value", "arrival")

    #: AMO packets are a single flit on the request plane.
    flits = 1
    plane = "req"

    def __init__(self, seq: int, req_id: int, src_cell: Coord,
                 dst_cell: Coord, src_node: Coord, dest: Destination,
                 kind: str, value: int, arrival: float) -> None:
        self.seq = seq
        self.req_id = req_id
        self.src_cell = src_cell
        self.dst_cell = dst_cell
        self.src_node = src_node
        self.dest = dest
        self.kind = kind
        self.value = value
        self.arrival = arrival

    @property
    def dst_node(self) -> Coord:
        return self.dest.node

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CellAmo({self.kind} {self.src_cell}->{self.dst_cell} "
                f"t={self.arrival} seq={self.seq})")


class CellResponse:
    """The reply to a :class:`CellRequest`/:class:`CellAmo`.

    ``payload`` is ``None`` for plain loads/stores (the requester's
    future resolves with the arrival cycle, matching the monolithic
    contract) and the AMO's old value otherwise (resolving with
    ``(arrival, old)``).
    """

    __slots__ = ("seq", "req_id", "src_cell", "dst_cell", "src_node",
                 "dst_node", "flits", "arrival", "payload")

    plane = "resp"

    def __init__(self, seq: int, req_id: int, src_cell: Coord,
                 dst_cell: Coord, src_node: Coord, dst_node: Coord,
                 flits: int, arrival: float,
                 payload: Optional[int]) -> None:
        self.seq = seq
        self.req_id = req_id
        self.src_cell = src_cell
        self.dst_cell = dst_cell
        self.src_node = src_node
        self.dst_node = dst_node
        self.flits = flits
        self.arrival = arrival
        self.payload = payload

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CellResponse({self.src_cell}->{self.dst_cell} "
                f"t={self.arrival} seq={self.seq})")


def sort_key(msg: Any) -> Tuple[float, Coord, int]:
    """The deterministic delivery order: arrival time, then source Cell,
    then per-source sequence number."""
    return (msg.arrival, msg.src_cell, msg.seq)


class ShardChannel:
    """One shard's endpoint of the cross-Cell fabric.

    Installed on the shard machine's memory system as ``xchannel``;
    collects outbound messages per window (the coordinator drains them
    at the barrier) and turns inbound messages into simulator events.
    """

    def __init__(self, machine: Any, cell_xy: Coord) -> None:
        if machine.owned_cells is None:
            raise PdesError("ShardChannel needs a sharded machine "
                            "(Machine(owned_cells=...))")
        self.machine = machine
        self.cell_xy = cell_xy
        self.sim = machine.sim
        self.memsys = machine.memsys
        self._req_net = machine.memsys.req_net
        self._resp_net = machine.memsys.resp_net
        self.outbox: List[Any] = []
        self.pending: Dict[int, Future] = {}
        #: Set by the shard when every launch declared ``remote=False``:
        #: initiating a cross-Cell request then raises, which is what
        #: lets the coordinator trust the declaration and free-run.
        self.local_only = False
        #: Contention pricing for the *intra-Cell legs* of cross-Cell
        #: paths (set from ``ShardSpec.contention``): the stretch of a
        #: packet's route inside this Cell is walked on this shard's own
        #: network planes with real link reservation, so cross-Cell and
        #: Cell-local traffic stall each other exactly as the monolithic
        #: machine's shared links do.  Only the queueing component is
        #: added on top of the zero-load cross-Cell price, so the priced
        #: arrival never drops below the lookahead floor.
        self.contention = True
        chip = machine.config.chip
        ox, oy = chip.cell_origin(cell_xy)
        self._box = (ox, oy, chip.cell.cols, chip.cell.rows)
        self._next_req = 0
        self._next_seq = 0
        #: Totals for the sync report.
        self.sent = 0
        self.received = 0
        #: Cross-shard sanitizer ingress state (only populated when a
        #: sanitizer is attached): the Cell-DRAM word keys foreign
        #: shards touched here, and the serialization log of served
        #: foreign AMOs -- the offline stitcher's ground truth for the
        #: owner-side AMO order.
        self.inbound_words: set = set()
        self.served_amos: List[Tuple[float, Coord, int, str]] = []
        machine.memsys.xchannel = self

    # -- source side (called from memsys on the remote-op path) ------------

    def request(self, node: Coord, dest: Destination, is_write: bool,
                words: int, req_flits: int, resp_flits: int,
                time: float) -> Future:
        if self.local_only:
            raise PdesError(
                f"tile {node} in cell {self.cell_xy} issued a cross-Cell "
                f"access to cell {dest.cell_xy}, but every launch on this "
                "shard was declared remote=False (Cell-local)")
        if dest.kind is TargetKind.SPM:
            raise PdesError(
                f"cross-Cell Group-SPM access (tile {node} -> {dest.node} "
                f"in cell {dest.cell_xy}) is not supported in PDES mode; "
                "stage through Group-DRAM instead")
        done = Future(self.sim)
        req_id = self._next_req
        self._next_req = req_id + 1
        self.pending[req_id] = done
        arrival = (time
                   + self._leg(self._req_net, node, dest.node, req_flits,
                               time)
                   + self._req_net.conservative_latency(
                       node, dest.node, req_flits))
        self.outbox.append(CellRequest(
            self._bump(), req_id, self.cell_xy, dest.cell_xy, node, dest,
            is_write, words, req_flits, resp_flits, arrival))
        return done

    def amo(self, node: Coord, dest: Destination, kind: str, value: int,
            time: float) -> Future:
        if self.local_only:
            raise PdesError(
                f"tile {node} in cell {self.cell_xy} issued a cross-Cell "
                f"atomic to cell {dest.cell_xy}, but every launch on this "
                "shard was declared remote=False (Cell-local)")
        done = Future(self.sim)
        req_id = self._next_req
        self._next_req = req_id + 1
        self.pending[req_id] = done
        arrival = (time
                   + self._leg(self._req_net, node, dest.node, 1, time)
                   + self._req_net.conservative_latency(node, dest.node, 1))
        seq = self._bump()
        san = self.memsys._san
        if san is not None:
            # Issuing-side record for the cross-shard stitcher: the
            # owner-side serialization hook cannot run here (it has no
            # vector clock for this tile), so the issuer snapshots its
            # clock and the coordinator's offline pass does the rest.
            san.xshard_amo_out(node, dest, kind, seq, time)
        self.outbox.append(CellAmo(
            seq, req_id, self.cell_xy, dest.cell_xy, node, dest,
            kind, value, arrival))
        return done

    def _bump(self) -> int:
        seq = self._next_seq
        self._next_seq = seq + 1
        self.sent += 1
        return seq

    # -- intra-Cell legs of cross-Cell paths ---------------------------------

    def _inside(self, node: Coord) -> bool:
        ox, oy, cols, rows = self._box
        return ox <= node[0] < ox + cols and oy <= node[1] < oy + rows

    def _leg(self, net: Any, src: Coord, dst: Coord, flits: int,
             inject: float) -> float:
        """Queueing delay of this Cell's leg of a cross-Cell path.

        Walks the *true* dimension-ordered ``src -> dst`` route on this
        shard's own plane, reserving exactly the links whose endpoints
        both lie inside this Cell (``Network.reserve_leg``) -- the leg
        really occupies the local fabric, so cross-Cell and Cell-local
        traffic stall each other as the monolithic machine's shared
        links do.  ``inject`` is the cycle the packet (conceptually)
        entered the network at ``src``; for inbound legs the caller
        rewinds the arrival by the zero-load floor so reserved-link
        start times line up with a full monolithic walk.  The returned
        stall is ``>= 0``, so adding it on top of the zero-load price
        keeps every cross-Cell arrival at or above the lookahead bound.
        """
        if not self.contention:
            return 0.0
        return net.reserve_leg(src, dst, flits, inject, self._inside)

    # -- destination side (window ingress) ----------------------------------

    def ingest(self, messages: List[Any]) -> None:
        """Schedule every inbound message's effect at its arrival cycle.

        Called at the window barrier, before :meth:`Simulator.run`; the
        conservative window guarantees ``arrival >= now`` for every
        message.  ``messages`` must already be in deterministic delivery
        order (the coordinator sorts globally) -- the schedule order
        fixes the tie-break among same-cycle ingresses.
        """
        schedule_at = self.sim.schedule_at
        for msg in messages:
            self.received += 1
            cls = msg.__class__
            if cls is CellResponse:
                schedule_at(msg.arrival, self._on_response, msg)
            elif cls is CellRequest:
                schedule_at(msg.arrival, self._on_request, msg)
            elif cls is CellAmo:
                schedule_at(msg.arrival, self._on_amo, msg)
            else:
                raise PdesError(f"unknown cross-Cell message {msg!r}")

    def _on_request(self, msg: CellRequest) -> None:
        if self.memsys._san is not None:
            cx, cy = msg.dest.cell_xy
            base = msg.dest.mem_addr >> 2
            for w in range(msg.words):
                self.inbound_words.add((cx, cy, base + w))
        now = self.sim._now
        # Rewind by the zero-load floor: the leg walk then replays the
        # packet from its (conceptual) inject cycle at the source.
        now += self._leg(
            self._req_net, msg.src_node, msg.dest.node, msg.flits,
            now - self._req_net.conservative_latency(
                msg.src_node, msg.dest.node, msg.flits))
        ready = self.memsys.serve_remote(msg.dest, msg.is_write,
                                         now, msg.words)
        if ready.__class__ is Future:
            ready.add_callback(lambda _v, m=msg: self._reply(m, None))
        else:
            self.sim._post(ready, self._reply_args, (msg, None))

    def _on_amo(self, msg: CellAmo) -> None:
        if self.memsys._san is not None:
            cx, cy = msg.dest.cell_xy
            self.inbound_words.add((cx, cy, msg.dest.mem_addr >> 2))
            self.served_amos.append(
                (self.sim._now, msg.src_cell, msg.seq, msg.kind))
        now = self.sim._now
        now += self._leg(
            self._req_net, msg.src_node, msg.dest.node, msg.flits,
            now - self._req_net.conservative_latency(
                msg.src_node, msg.dest.node, msg.flits))
        ready, old = self.memsys.serve_remote_amo(
            msg.dest, msg.src_node, msg.kind, msg.value, now)
        if ready.__class__ is Future:
            ready.add_callback(lambda _v, m=msg, o=old: self._reply(m, o))
        else:
            self.sim._post(ready, self._reply_args, (msg, old))

    def _reply(self, msg: Any, payload: Optional[int]) -> None:
        """Emit the response at the bank's ready cycle (== now)."""
        resp_flits = msg.resp_flits if msg.__class__ is CellRequest else 1
        now = self.sim._now
        arrival = (now
                   + self._leg(self._resp_net, msg.dest.node, msg.src_node,
                               resp_flits, now)
                   + self._resp_net.conservative_latency(
                       msg.dest.node, msg.src_node, resp_flits))
        self.outbox.append(CellResponse(
            self._bump(), msg.req_id, self.cell_xy, msg.src_cell,
            msg.dest.node, msg.src_node, resp_flits, arrival, payload))

    def _reply_args(self, args: Tuple[Any, Optional[int]]) -> None:
        self._reply(*args)

    def _on_response(self, msg: CellResponse) -> None:
        done = self.pending.pop(msg.req_id)
        if msg.payload is None:
            done.resolve(msg.arrival)
        else:
            done.resolve((msg.arrival, msg.payload))

    # -- barrier drain -------------------------------------------------------

    def drain(self) -> List[Any]:
        out = self.outbox
        self.outbox = []
        return out
