"""Typed cross-Cell channels: the only traffic between PDES shards.

Every remote operation a tile issues funnels through
:meth:`~repro.runtime.memsys.MemorySystem.remote_request` /
``remote_amo``; when the translated destination lies in a Cell the shard
does not own, the installed :class:`ShardChannel` turns it into one of
three picklable message types instead of touching the local fabric:

* :class:`CellRequest` -- a remote load/store heading to a foreign bank;
* :class:`CellAmo` -- a remote atomic (functional execution happens at
  the *owning* shard, in its ingress event order -- the serialization
  point, exactly as in the monolithic machine);
* :class:`CellResponse` -- the answer routed back to the requester.

Cross-Cell packets are priced at the zero-load latency of the real
request/response networks (:meth:`Network.conservative_latency` -- pure
arithmetic, no link-state mutation, so shard histories can never diverge
through pricing).  Inter-Cell link contention is therefore *not*
modelled in PDES mode; intra-Cell traffic keeps full contention timing.
The zero-load floor over all cross-Cell pairs is the conservative
window's lookahead (:func:`repro.noc.analysis.intercell_lookahead`).

Determinism: every message carries ``(src_cell, seq)``; the coordinator
delivers each window's messages sorted by ``(arrival, src_cell, seq)``
(:func:`sort_key`), and ingress events are scheduled in that order, so
the receiving shard's event sequence -- and hence every cycle count --
is a pure function of the message *set*, not of worker count or pipe
timing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..arch.geometry import Coord
from ..engine import Future
from ..pgas.translate import Destination, TargetKind


class PdesError(RuntimeError):
    """A PDES-mode constraint was violated."""


class CellRequest:
    """A remote load/store crossing a Cell boundary."""

    __slots__ = ("seq", "req_id", "src_cell", "dst_cell", "src_node",
                 "dest", "is_write", "words", "resp_flits", "arrival")

    def __init__(self, seq: int, req_id: int, src_cell: Coord,
                 dst_cell: Coord, src_node: Coord, dest: Destination,
                 is_write: bool, words: int, resp_flits: int,
                 arrival: float) -> None:
        self.seq = seq
        self.req_id = req_id
        self.src_cell = src_cell
        self.dst_cell = dst_cell
        self.src_node = src_node
        self.dest = dest
        self.is_write = is_write
        self.words = words
        self.resp_flits = resp_flits
        self.arrival = arrival

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        op = "store" if self.is_write else "load"
        return (f"CellRequest({op} {self.src_cell}->{self.dst_cell} "
                f"t={self.arrival} seq={self.seq})")


class CellAmo:
    """A remote atomic crossing a Cell boundary."""

    __slots__ = ("seq", "req_id", "src_cell", "dst_cell", "src_node",
                 "dest", "kind", "value", "arrival")

    def __init__(self, seq: int, req_id: int, src_cell: Coord,
                 dst_cell: Coord, src_node: Coord, dest: Destination,
                 kind: str, value: int, arrival: float) -> None:
        self.seq = seq
        self.req_id = req_id
        self.src_cell = src_cell
        self.dst_cell = dst_cell
        self.src_node = src_node
        self.dest = dest
        self.kind = kind
        self.value = value
        self.arrival = arrival

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CellAmo({self.kind} {self.src_cell}->{self.dst_cell} "
                f"t={self.arrival} seq={self.seq})")


class CellResponse:
    """The reply to a :class:`CellRequest`/:class:`CellAmo`.

    ``payload`` is ``None`` for plain loads/stores (the requester's
    future resolves with the arrival cycle, matching the monolithic
    contract) and the AMO's old value otherwise (resolving with
    ``(arrival, old)``).
    """

    __slots__ = ("seq", "req_id", "src_cell", "dst_cell", "arrival",
                 "payload")

    def __init__(self, seq: int, req_id: int, src_cell: Coord,
                 dst_cell: Coord, arrival: float,
                 payload: Optional[int]) -> None:
        self.seq = seq
        self.req_id = req_id
        self.src_cell = src_cell
        self.dst_cell = dst_cell
        self.arrival = arrival
        self.payload = payload

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CellResponse({self.src_cell}->{self.dst_cell} "
                f"t={self.arrival} seq={self.seq})")


def sort_key(msg: Any) -> Tuple[float, Coord, int]:
    """The deterministic delivery order: arrival time, then source Cell,
    then per-source sequence number."""
    return (msg.arrival, msg.src_cell, msg.seq)


class ShardChannel:
    """One shard's endpoint of the cross-Cell fabric.

    Installed on the shard machine's memory system as ``xchannel``;
    collects outbound messages per window (the coordinator drains them
    at the barrier) and turns inbound messages into simulator events.
    """

    def __init__(self, machine: Any, cell_xy: Coord) -> None:
        if machine.owned_cells is None:
            raise PdesError("ShardChannel needs a sharded machine "
                            "(Machine(owned_cells=...))")
        self.machine = machine
        self.cell_xy = cell_xy
        self.sim = machine.sim
        self.memsys = machine.memsys
        self._req_net = machine.memsys.req_net
        self._resp_net = machine.memsys.resp_net
        self.outbox: List[Any] = []
        self.pending: Dict[int, Future] = {}
        #: Set by the shard when every launch declared ``remote=False``:
        #: initiating a cross-Cell request then raises, which is what
        #: lets the coordinator trust the declaration and free-run.
        self.local_only = False
        self._next_req = 0
        self._next_seq = 0
        #: Totals for the sync report.
        self.sent = 0
        self.received = 0
        machine.memsys.xchannel = self

    # -- source side (called from memsys on the remote-op path) ------------

    def request(self, node: Coord, dest: Destination, is_write: bool,
                words: int, req_flits: int, resp_flits: int,
                time: float) -> Future:
        if self.local_only:
            raise PdesError(
                f"tile {node} in cell {self.cell_xy} issued a cross-Cell "
                f"access to cell {dest.cell_xy}, but every launch on this "
                "shard was declared remote=False (Cell-local)")
        if dest.kind is TargetKind.SPM:
            raise PdesError(
                f"cross-Cell Group-SPM access (tile {node} -> {dest.node} "
                f"in cell {dest.cell_xy}) is not supported in PDES mode; "
                "stage through Group-DRAM instead")
        done = Future(self.sim)
        req_id = self._next_req
        self._next_req = req_id + 1
        self.pending[req_id] = done
        arrival = time + self._req_net.conservative_latency(
            node, dest.node, req_flits)
        self.outbox.append(CellRequest(
            self._bump(), req_id, self.cell_xy, dest.cell_xy, node, dest,
            is_write, words, resp_flits, arrival))
        return done

    def amo(self, node: Coord, dest: Destination, kind: str, value: int,
            time: float) -> Future:
        if self.local_only:
            raise PdesError(
                f"tile {node} in cell {self.cell_xy} issued a cross-Cell "
                f"atomic to cell {dest.cell_xy}, but every launch on this "
                "shard was declared remote=False (Cell-local)")
        done = Future(self.sim)
        req_id = self._next_req
        self._next_req = req_id + 1
        self.pending[req_id] = done
        arrival = time + self._req_net.conservative_latency(
            node, dest.node, 1)
        self.outbox.append(CellAmo(
            self._bump(), req_id, self.cell_xy, dest.cell_xy, node, dest,
            kind, value, arrival))
        return done

    def _bump(self) -> int:
        seq = self._next_seq
        self._next_seq = seq + 1
        self.sent += 1
        return seq

    # -- destination side (window ingress) ----------------------------------

    def ingest(self, messages: List[Any]) -> None:
        """Schedule every inbound message's effect at its arrival cycle.

        Called at the window barrier, before :meth:`Simulator.run`; the
        conservative window guarantees ``arrival >= now`` for every
        message.  ``messages`` must already be in deterministic delivery
        order (the coordinator sorts globally) -- the schedule order
        fixes the tie-break among same-cycle ingresses.
        """
        schedule_at = self.sim.schedule_at
        for msg in messages:
            self.received += 1
            cls = msg.__class__
            if cls is CellResponse:
                schedule_at(msg.arrival, self._on_response, msg)
            elif cls is CellRequest:
                schedule_at(msg.arrival, self._on_request, msg)
            elif cls is CellAmo:
                schedule_at(msg.arrival, self._on_amo, msg)
            else:
                raise PdesError(f"unknown cross-Cell message {msg!r}")

    def _on_request(self, msg: CellRequest) -> None:
        ready = self.memsys.serve_remote(msg.dest, msg.is_write,
                                         self.sim._now, msg.words)
        if ready.__class__ is Future:
            ready.add_callback(lambda _v, m=msg: self._reply(m, None))
        else:
            self.sim._post(ready, self._reply_args, (msg, None))

    def _on_amo(self, msg: CellAmo) -> None:
        ready, old = self.memsys.serve_remote_amo(
            msg.dest, msg.src_node, msg.kind, msg.value, self.sim._now)
        if ready.__class__ is Future:
            ready.add_callback(lambda _v, m=msg, o=old: self._reply(m, o))
        else:
            self.sim._post(ready, self._reply_args, (msg, old))

    def _reply(self, msg: Any, payload: Optional[int]) -> None:
        """Emit the response at the bank's ready cycle (== now)."""
        resp_flits = msg.resp_flits if msg.__class__ is CellRequest else 1
        arrival = self.sim._now + self._resp_net.conservative_latency(
            msg.dest.node, msg.src_node, resp_flits)
        self.outbox.append(CellResponse(
            self._bump(), msg.req_id, self.cell_xy, msg.src_cell, arrival,
            payload))

    def _reply_args(self, args: Tuple[Any, Optional[int]]) -> None:
        self._reply(*args)

    def _on_response(self, msg: CellResponse) -> None:
        done = self.pending.pop(msg.req_id)
        if msg.payload is None:
            done.resolve(msg.arrival)
        else:
            done.resolve((msg.arrival, msg.payload))

    # -- barrier drain -------------------------------------------------------

    def drain(self) -> List[Any]:
        out = self.outbox
        self.outbox = []
        return out
