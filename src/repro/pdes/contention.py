"""Deterministic inter-Cell link contention for PDES mode.

The monolithic machine prices every packet by reserving ``flits`` cycles
on each link of its dimension-ordered path (:class:`repro.noc.network.Network`).
PDES shards cannot share that link state -- mutating it from two shards
would make their histories diverge -- so cross-Cell packets used to be
priced at the zero-load floor, systematically under-charging cross-Cell
traffic.  This module closes the gap without sharing anything live: the
*coordinator* (the only place every message is visible) replays each
boundary crossing against a deterministic occupancy ledger.

Model
-----
Every directed inter-Cell boundary is a bundle of serializing lanes, one
per grid row (vertical boundaries) or grid column (horizontal
boundaries) -- exactly the physical channels
:meth:`repro.noc.topology.Topology.cell_edge_links` counts.  A packet
crosses a vertical boundary in its X phase at its source row, and a
horizontal boundary in its Y phase at its destination column (the
dimension-ordered route), so the lane each crossing uses is a pure
function of the message.  A crossing reserves ``flits / channels``
cycles on its lane (``channels`` = mesh + ruche links sharing the lane,
:func:`repro.noc.analysis.cell_edge_channels` per row/column); if the
lane is busy the packet stalls until it frees, and the stall is added to
the message's arrival.

Determinism and lookahead safety
--------------------------------
Pricing is pure arithmetic over the message stream in global
``(arrival, src_cell, seq)`` order -- the coordinator feeds the stream
in exactly that order regardless of worker count or window size (see
``run_cells``'s release pool), so shard histories cannot diverge and
1-vs-N-worker fingerprints stay bit-identical.  Contention only *adds*
latency: the priced arrival is ``>=`` the zero-load arrival, so
``intercell_lookahead`` remains a valid conservative bound and the
window protocol (and its free-run shortcut) survive unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from ..arch.config import MachineConfig


class EdgeContention:
    """The per-boundary-lane occupancy ledger (coordinator-owned)."""

    def __init__(self, config: MachineConfig) -> None:
        chip = config.chip
        self._cell_cols = chip.cell.cols
        self._cell_rows = chip.cell.rows
        per_row = 1
        if config.features.ruche_network:
            per_row += config.timings.noc.ruche_factor
        #: Channels sharing one horizontal lane (mesh + ruche per row).
        self.x_channels = per_row
        #: Channels sharing one vertical lane (mesh only).
        self.y_channels = 1
        #: lane key -> cycle at which the lane frees.
        self._free: Dict[Tuple, float] = {}
        #: directed cell-edge "sx,sy->dx,dy" -> counters.
        self._stats: Dict[str, Dict[str, float]] = {}
        self.packets = 0
        self.stalled_packets = 0
        self.stall_cycles = 0.0

    # -- the route: which lanes does this message's path cross? -------------

    def _crossings(self, msg: Any) -> Iterable[Tuple[Tuple, int, str]]:
        """Yield ``(lane_key, channels, edge_label)`` per boundary crossed,
        in path order (X phase then Y phase, dimension-ordered).  The
        lane key includes the physical plane (``msg.plane``): requests
        and responses ride separate networks on the chip and must never
        contend with each other."""
        plane = msg.plane
        (scx, scy) = msg.src_cell
        (dcx, dcy) = msg.dst_cell
        src = msg.src_node
        dst = msg.dst_node
        row = src[1]  # X phase runs at the source row
        band = scy
        step = 1 if dcx > scx else -1
        for c in range(scx, dcx, step):
            boundary = min(c, c + step)
            yield ((plane, "x", boundary, row, step), self.x_channels,
                   f"{c},{band}->{c + step},{band}")
        col = dst[0]  # Y phase runs at the destination column
        step = 1 if dcy > scy else -1
        for r in range(scy, dcy, step):
            boundary = min(r, r + step)
            yield ((plane, "y", boundary, col, step), self.y_channels,
                   f"{dcx},{r}->{dcx},{r + step}")

    # -- pricing -------------------------------------------------------------

    def price(self, messages: List[Any]) -> None:
        """Replay ``messages`` (pre-sorted in the global deterministic
        order) through the ledger, adding each crossing's stall to the
        message's arrival in place."""
        free = self._free
        stats = self._stats
        for msg in messages:
            self.packets += 1
            flits = msg.flits
            t = msg.arrival
            stalled = 0.0
            for key, channels, edge in self._crossings(msg):
                occupancy = flits / channels
                rec = stats.get(edge)
                if rec is None:
                    rec = stats[edge] = {"packets": 0, "flits": 0,
                                         "stall_cycles": 0.0}
                rec["packets"] += 1
                rec["flits"] += flits
                at = free.get(key, 0.0)
                if at > t:
                    rec["stall_cycles"] += at - t
                    stalled += at - t
                    t = at
                free[key] = t + occupancy
            if stalled > 0.0:
                self.stalled_packets += 1
                self.stall_cycles += stalled
                msg.arrival = t

    def summary(self) -> Dict[str, Any]:
        """JSON-able stats: deterministic, so safe to fingerprint."""
        return {
            "packets": self.packets,
            "stalled_packets": self.stalled_packets,
            "stall_cycles": self.stall_cycles,
            "x_channels_per_lane": self.x_channels,
            "edges": {edge: dict(rec)
                      for edge, rec in sorted(self._stats.items())},
        }
