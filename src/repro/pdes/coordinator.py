"""The conservative-window coordinator: N shards in lockstep windows.

The synchronization algorithm (classic conservative PDES, specialized to
the Cell fabric):

1. every shard reports its next local event time; in-flight cross-Cell
   messages report their arrival times;
2. the window base ``T`` is the minimum over all of those -- nothing
   anywhere in the chip can happen before ``T``;
3. every shard with pending work before ``T + W`` advances to the
   barrier ``T + W``, where the window ``W`` is at most the *lookahead*
   ``L``: the zero-load latency floor between any two Cells
   (:func:`repro.noc.analysis.intercell_lookahead`).  Any message a
   shard emits during the window is stamped ``>= T``, so it arrives
   ``>= T + L >= T + W`` -- always in a *later* window, which is what
   makes advancing every shard to ``T + W`` with no mid-window
   communication safe;
4. outboxes are drained into a *release pool*; every pooled message
   whose zero-load arrival is below ``T + L`` is released -- no future
   emission (stamped ``>= T``, arriving ``>= T + L``) can sort before
   it -- globally sorted by ``(arrival, src_cell, seq)``, priced
   through the :class:`~repro.pdes.contention.EdgeContention` ledger
   (which only ever *adds* latency, so the lookahead bound survives),
   and delivered; repeat until every queue is empty.

Because release eligibility depends only on ``T`` -- itself the minimum
over all shard clocks and pooled arrivals, a pure function of the
message set -- the concatenation of released batches is the *same*
globally-sorted stream for every window size and worker count, and the
contention prices (hence the shard histories) are bit-identical across
all of them.

One shortcut on top: when every still-live shard carries only launches
declared ``remote=False`` (a runtime-enforced promise of Cell-locality
-- the shard's channel raises on any cross-Cell access) and nothing is
in flight, no message can ever be created, so the coordinator drops the
barriers and free-runs each shard to completion in a single unbounded
stride.  That collapses the round count from ``O(cycles / W)`` to
``O(1)`` for embarrassingly-parallel chips, which is where PDES
throughput scaling actually comes from -- the windowed path spends its
wall-clock on barrier IPC, not simulation.

Because delivery order is a pure function of the message set, the same
windowed algorithm run by one in-process transport (``workers=1``) or by
N forked workers produces bit-identical shard histories -- cycles,
counters, event counts and functional memory all match.  That is the
correctness oracle the determinism tests pin.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..arch import serialize
from ..arch.config import MachineConfig
from ..arch.geometry import Coord
from ..noc.analysis import intercell_lookahead
from ..orch.job import canonical_json
from .channel import PdesError, sort_key
from .contention import EdgeContention
from .shard import CellShard, LaunchSpec, ShardSpec, StepReport
from .worker import shard_worker_main

#: Environment override for the process budget (set by the orch pool in
#: its workers so nested multi-Cell jobs never oversubscribe the host).
WORKER_BUDGET_ENV = "REPRO_WORKER_BUDGET"


def resolve_workers(requested: int, num_shards: Optional[int] = None) -> int:
    """Clamp a worker request to the env budget (and the shard count).

    Inside a daemonic process the answer is always 1: daemonic
    processes may not fork children, so the run degrades to the serial
    transport (bit-identical results, just no parallelism).
    """
    import multiprocessing

    if multiprocessing.current_process().daemon:
        return 1
    workers = max(1, int(requested))
    budget = os.environ.get(WORKER_BUDGET_ENV)
    if budget:
        try:
            workers = min(workers, max(1, int(budget)))
        except ValueError:
            raise PdesError(
                f"bad {WORKER_BUDGET_ENV}={budget!r} (want an integer)")
    if num_shards is not None:
        workers = min(workers, num_shards)
    return workers


@dataclass
class CellsResult:
    """The outcome of one multi-Cell PDES run."""

    config_name: str
    cells: List[Coord]
    workers: int
    window: float
    lookahead: float
    rounds: int
    messages: int
    wall_seconds: float
    #: One payload dict per shard (``CellShard.collect`` output), in
    #: Cell order.
    shards: List[Dict[str, Any]] = field(default_factory=list)
    #: ``EdgeContention.summary()`` when inter-Cell contention pricing
    #: ran, else ``None`` (zero-load pricing).
    contention: Optional[Dict[str, Any]] = None
    #: Cross-shard sanitizer stitching report
    #: (:func:`repro.sanitize.xshard.stitch_shards`) when sanitizing.
    xshard: Optional[Dict[str, Any]] = None

    @property
    def cycles(self) -> List[float]:
        """Every launch's cycle count, in (cell, launch) order."""
        return [c for s in self.shards for c in s["cycles"]]

    @property
    def max_cycles(self) -> float:
        return max(self.cycles) if self.cycles else 0.0

    @property
    def aggregate_cycles(self) -> float:
        """Sum of simulated cycles across shards (the PDES throughput
        numerator: N Cells at time T did N*T cycles of simulation)."""
        return sum(s["now"] for s in self.shards)

    @property
    def total_events(self) -> int:
        return sum(s["events"] for s in self.shards)

    @property
    def clean(self) -> bool:
        """True when every attached audit/sanitize pass found nothing --
        including the cross-shard stitching pass, when it ran."""
        return all(s.get("audit_clean", True) and s.get("sanitize_clean", True)
                   for s in self.shards) and \
            (self.xshard is None or bool(self.xshard["clean"]))

    def fingerprint(self) -> str:
        """Hash of everything deterministic: shard payloads, message and
        contention totals.

        Two runs of the same workload fingerprint identically regardless
        of worker count *and* window size -- the bit-identity contract
        in one string.  (``rounds`` is deliberately excluded: it is sync
        bookkeeping that legitimately varies with the window.)
        """
        body = canonical_json({"shards": self.shards,
                               "messages": self.messages,
                               "contention": self.contention})
        return hashlib.sha256(body.encode()).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config_name,
            "cells": [list(c) for c in self.cells],
            "workers": self.workers,
            "window": self.window,
            "lookahead": self.lookahead,
            "rounds": self.rounds,
            "messages": self.messages,
            "wall_seconds": self.wall_seconds,
            "aggregate_cycles": self.aggregate_cycles,
            "total_events": self.total_events,
            "max_cycles": self.max_cycles,
            "fingerprint": self.fingerprint(),
            "contention": self.contention,
            "xshard": self.xshard,
            "shards": self.shards,
        }


# ---------------------------------------------------------------------------
# Transports: the same window loop drives both.

class _SerialTransport:
    """All shards in this process -- the reference (and 1-worker) mode."""

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        # Round-trip through pickle exactly as the pipe transport would:
        # shards must never share live args objects (kernels mutate
        # them), or serial and parallel runs could diverge.
        specs = pickle.loads(pickle.dumps(list(specs)))
        self.shards = [CellShard(spec) for spec in specs]

    def init(self) -> List[StepReport]:
        return [shard.report() for shard in self.shards]

    def advance(self, assignments: List[Tuple[int, float, List[Any]]]
                ) -> List[Tuple[int, StepReport]]:
        return [(idx, self.shards[idx].advance(t_end, msgs))
                for idx, t_end, msgs in assignments]

    def collect(self) -> List[Dict[str, Any]]:
        return [shard.collect() for shard in self.shards]

    def close(self) -> None:
        pass


class _PipeTransport:
    """Shards round-robined over forked worker processes."""

    def __init__(self, specs: Sequence[ShardSpec], workers: int) -> None:
        from ..orch._pool import _context

        ctx = _context()
        self.n = len(specs)
        self.worker_of = [i % workers for i in range(self.n)]
        self.local_of: List[int] = []
        per: List[List[ShardSpec]] = [[] for _ in range(workers)]
        for i, spec in enumerate(specs):
            wid = self.worker_of[i]
            self.local_of.append(len(per[wid]))
            per[wid].append(spec)
        self._per = per
        self.conns: List[Any] = []
        self.procs: List[Any] = []
        for wid in range(workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=shard_worker_main, args=(child, wid),
                               daemon=True)
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def _recv(self, wid: int) -> Any:
        try:
            status, payload = self.conns[wid].recv()
        except (EOFError, OSError) as exc:
            raise PdesError(f"shard worker {wid} died: {exc}") from exc
        if status != "ok":
            raise PdesError(f"shard worker {wid} failed:\n{payload}")
        return payload

    def init(self) -> List[StepReport]:
        for wid, conn in enumerate(self.conns):
            conn.send(("init", self._per[wid]))
        per_worker = [self._recv(wid) for wid in range(len(self.conns))]
        return [per_worker[self.worker_of[i]][self.local_of[i]]
                for i in range(self.n)]

    def advance(self, assignments: List[Tuple[int, float, List[Any]]]
                ) -> List[Tuple[int, StepReport]]:
        buckets: Dict[int, List[Tuple[int, float, List[Any]]]] = {}
        order: Dict[int, List[int]] = {}
        for idx, t_end, msgs in assignments:
            wid = self.worker_of[idx]
            buckets.setdefault(wid, []).append(
                (self.local_of[idx], t_end, msgs))
            order.setdefault(wid, []).append(idx)
        active = sorted(buckets)
        for wid in active:  # all workers crunch their windows in parallel
            self.conns[wid].send(("advance", buckets[wid]))
        results: List[Tuple[int, StepReport]] = []
        for wid in active:
            results.extend(zip(order[wid], self._recv(wid)))
        return results

    def collect(self) -> List[Dict[str, Any]]:
        for conn in self.conns:
            conn.send(("collect", None))
        per_worker = [self._recv(wid) for wid in range(len(self.conns))]
        return [per_worker[self.worker_of[i]][self.local_of[i]]
                for i in range(self.n)]

    def close(self) -> None:
        for conn, proc in zip(self.conns, self.procs):
            try:
                conn.send(("shutdown", None))
            except (OSError, BrokenPipeError):
                pass
        for conn, proc in zip(self.conns, self.procs):
            try:
                conn.close()
            except OSError:
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The window loop.

def run_cells(config: MachineConfig,
              launches: Iterable[LaunchSpec], *,
              pokes: Iterable[Tuple[Coord, int, int]] = (),
              workers: int = 1,
              window: Optional[float] = None,
              audit: bool = False,
              sanitize: bool = False,
              contention: bool = True,
              _jitter_seed: Optional[int] = None) -> CellsResult:
    """Simulate every Cell of ``config`` as a PDES shard.

    ``launches`` are :class:`LaunchSpec` records (several per Cell is
    fine); ``pokes`` are host writes ``(cell, offset, value)`` applied
    before launch in the owning shard.  ``workers=1`` runs every shard
    in-process through the *same* window loop, so it is the bit-exact
    reference for any worker count.  ``window`` defaults to the
    lookahead (the largest safe value); smaller windows are valid and
    must not change results.

    ``contention=True`` (the default) prices cross-Cell messages through
    the deterministic :class:`~repro.pdes.contention.EdgeContention`
    boundary-lane ledger instead of the bare zero-load floor;
    ``contention=False`` restores the optimistic pricing (useful for
    measuring the gap).  ``sanitize=True`` additionally runs the offline
    cross-shard happens-before pass (:mod:`repro.sanitize.xshard`) over
    the per-shard exports, so races *between* Cells are reported too.

    ``_jitter_seed`` shuffles each round's message batch before the
    canonical sort -- a test hook proving delivery order is a function
    of the sort key, not of arrival-at-the-coordinator order.
    """
    cells = list(config.chip.cells())
    if len(cells) < 2:
        raise ValueError(
            f"PDES wants a multi-Cell config; {config.name} has "
            f"{len(cells)} cell (use Session/run for single-Cell)")
    lookahead = float(intercell_lookahead(config))
    if window is None:
        window = lookahead
    if not 0 < window <= lookahead:
        raise ValueError(
            f"window must be in (0, {lookahead}] (the inter-Cell zero-load "
            f"latency floor); got {window}")
    config_dict = serialize.to_dict(config)
    by_cell: Dict[Coord, List[LaunchSpec]] = {xy: [] for xy in cells}
    for launch in launches:
        xy = tuple(launch.cell)
        if xy not in by_cell:
            raise ValueError(f"launch targets cell {xy}, not on this chip")
        by_cell[xy].append(launch)
    pokes_by: Dict[Coord, List[Tuple[int, int]]] = {xy: [] for xy in cells}
    for cell, offset, value in pokes:
        xy = tuple(cell)
        if xy not in pokes_by:
            raise ValueError(f"poke targets cell {xy}, not on this chip")
        pokes_by[xy].append((offset, value))
    specs = [ShardSpec(config=config_dict, cell=xy,
                       launches=tuple(by_cell[xy]),
                       pokes=tuple(pokes_by[xy]),
                       audit=audit, sanitize=sanitize,
                       contention=contention)
             for xy in cells]
    workers = resolve_workers(workers, len(cells))
    # Shards whose launches all declared remote=False can never send
    # (channel-enforced); once every live shard is in this set and no
    # message is in flight, windows are pointless -- free-run instead.
    silent = [all(not launch.remote for launch in spec.launches)
              for spec in specs]
    transport = (_SerialTransport(specs) if workers <= 1
                 else _PipeTransport(specs, workers))
    rng = random.Random(_jitter_seed) if _jitter_seed is not None else None
    index_of = {xy: i for i, xy in enumerate(cells)}
    pricer = EdgeContention(config) if contention else None
    t0 = time.perf_counter()
    try:
        reports = transport.init()
        inflight: List[Any] = []
        # With contention, fresh emissions park in the release pool at
        # their zero-load arrival until no future emission could sort
        # before them; only then are they priced (in the one global
        # order) and promoted to ``inflight`` for delivery.
        pool: List[Any] = []
        fresh = pool if pricer is not None else inflight
        for report in reports:
            fresh.extend(report.outbox)
        rounds = 0
        messages = 0
        while True:
            if not inflight and not pool and all(
                    quiet or report.done
                    for quiet, report in zip(silent, reports)):
                # No live shard can initiate cross-Cell traffic and
                # nothing is in flight, so no reply can arise either:
                # the rest of the run is embarrassingly parallel.
                assignments = [(i, None, []) for i, r in enumerate(reports)
                               if r.next_time is not None]
                if not assignments:
                    break
                for idx, report in transport.advance(assignments):
                    reports[idx] = report
                    fresh.extend(report.outbox)
                rounds += 1
                continue
            candidates = [r.next_time for r in reports
                          if r.next_time is not None]
            candidates.extend(m.arrival for m in inflight)
            candidates.extend(m.arrival for m in pool)
            if not candidates:
                break
            base = min(candidates)
            t_end = base + window
            if pricer is not None and pool:
                # Release every pooled message no future emission can
                # pre-empt: emissions from this round on are stamped
                # >= base, arriving >= base + lookahead, strictly after
                # everything released here -- so the released batches
                # concatenate into one window-independent global stream.
                horizon = base + lookahead
                release = [m for m in pool if m.arrival < horizon]
                if release:
                    pool[:] = [m for m in pool if m.arrival >= horizon]
                    if rng is not None:
                        rng.shuffle(release)
                    release.sort(key=sort_key)
                    pricer.price(release)
                    inflight.extend(release)
            deliver = list(inflight)
            inflight.clear()
            if rng is not None:
                rng.shuffle(deliver)  # the sort must undo any order
            deliver.sort(key=sort_key)
            messages += len(deliver)
            inbox: Dict[Coord, List[Any]] = {}
            for msg in deliver:
                inbox.setdefault(msg.dst_cell, []).append(msg)
            assignments = []
            for i, xy in enumerate(cells):
                msgs = inbox.pop(xy, [])
                report = reports[i]
                if msgs or (report.next_time is not None
                            and report.next_time <= t_end):
                    assignments.append((i, t_end, msgs))
            if inbox:
                raise PdesError(
                    f"messages addressed to unknown cells {sorted(inbox)}")
            for idx, report in transport.advance(assignments):
                reports[idx] = report
                fresh.extend(report.outbox)
            rounds += 1
        stuck = [r.cell for r in reports if not r.done]
        if stuck:
            raise PdesError(
                f"deadlock: cells {sorted(index_of[tuple(c)] for c in stuck)} "
                f"-> {sorted(tuple(c) for c in stuck)} drained their event "
                "queues with launches unfinished or remote ops unanswered")
        payloads = transport.collect()
    finally:
        transport.close()
    xshard_report = None
    if sanitize:
        from ..sanitize.xshard import stitch_shards

        xshard_report = stitch_shards(payloads)
    wall = time.perf_counter() - t0
    return CellsResult(
        config_name=config.name, cells=cells, workers=workers,
        window=window, lookahead=lookahead, rounds=rounds,
        messages=messages, wall_seconds=wall, shards=payloads,
        contention=pricer.summary() if pricer is not None else None,
        xshard=xshard_report,
    )
