"""Cross-Cell traffic fixtures: kernels whose whole point is the seam.

The suite kernels are Cell-local by design (Table I scales *within* a
Cell), so the PDES tests and smoke benches need workloads that actually
exercise the cross-Cell channel: Group-DRAM stores into a neighbour,
AMO flags across the boundary, and spin-poll consumption.  Two shapes:

* ``EXCHANGE`` -- every Cell pushes a block into the next Cell (ring
  order), raises the neighbour's flag, then polls its own flag until
  its inbound block has landed.  Symmetric all-to-next traffic.
* ``PRODUCE``/``CONSUME`` -- the paper's Fig 6 idiom split across a
  Cell pair with *no host-shared state*: the consumer's readiness is
  carried entirely by the timed AMO flag, which is exactly what works
  when producer and consumer live in different processes.

Functional payload correctness rides on the AMO memory (flags count
arrivals); plain-store payloads are timing-only, as everywhere in the
model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..arch.config import MachineConfig
from ..arch.geometry import Coord
from ..isa.program import kernel
from ..kernels.base import num_tiles, range_split, sync, tile_id
from ..pgas import spaces
from .shard import LaunchSpec

#: Fixed Local-DRAM layout, identical in every Cell (no machine needed
#: to plan launches: these are plain offsets above the runtime's heap).
BUF_OFFSET = 0x10000
FLAG_OFFSET = 0x8000
DONE_OFFSET = 0x8040  # separate cache block from the ready flag


@kernel("xcell-exchange", dwarf="MapReduce", category="memory-irregular")
def exchange_kernel(t, args):
    """Push a block to the next Cell, flag it, poll for my own block."""
    words = args["words"]
    out_ptr = args["out_ptr"]      # Group-DRAM pointer into the next Cell
    flag_out = args["flag_out"]    # Group-DRAM flag in the next Cell
    flag_in = args["flag_in"]      # my own flag's Local-DRAM offset
    lo, hi = range_split(words, num_tiles(t), tile_id(t))
    val = t.reg()
    top = t.loop_top()
    for i in range(lo, hi):
        yield t.fma(val, [val])
        yield t.store(out_ptr + 4 * i, srcs=[val])
        yield t.branch_back(top, taken=(i < hi - 1))
    yield from sync(t)  # all of this Cell's stores have landed
    if tile_id(t) == 0:
        yield t.amoadd(flag_out, 1)
    # Every tile spins on the *local* flag (cheap: own cache bank).
    top = t.loop_top()
    while True:
        flag = yield t.amoadd(t.local_dram(flag_in), 0)
        ready = flag >= 1
        yield t.branch_back(top, taken=not ready)
        if ready:
            break
        yield t.sleep(32)
    yield from sync(t)


@kernel("xcell-produce", dwarf="MapReduce", category="memory-irregular")
def produce_kernel(t, args):
    """Fig 6 producer, PDES-safe: the flag is the only ready signal."""
    words = args["words"]
    out_ptr = args["out_ptr"]
    lo, hi = range_split(words, num_tiles(t), tile_id(t))
    val = t.reg()
    top = t.loop_top()
    for i in range(lo, hi):
        yield t.fma(val, [val])
        yield t.store(out_ptr + 4 * i, srcs=[val])
        yield t.branch_back(top, taken=(i < hi - 1))
    yield from sync(t)
    if tile_id(t) == 0:
        yield t.amoadd(args["flag_out"], 1)
    yield t.fence()


@kernel("xcell-consume", dwarf="MapReduce", category="memory-irregular")
def consume_kernel(t, args):
    """Fig 6 consumer: poll the timed flag, then stream the block."""
    words = args["words"]
    flag_in = args["flag_in"]
    top = t.loop_top()
    while True:
        flag = yield t.amoadd(t.local_dram(flag_in), 0)
        ready = flag >= 1
        yield t.branch_back(top, taken=not ready)
        if ready:
            break
        yield t.sleep(64)
    lo, hi = range_split(words, num_tiles(t), tile_id(t))
    acc = t.reg()
    top = t.loop_top()
    for i in range(lo, hi, 4):
        vl = t.vload(t.local_dram(BUF_OFFSET + 4 * i))
        yield vl
        for r in vl.dsts:
            yield t.fma(acc, [acc, r])
        yield t.branch_back(top, taken=(i + 4 < hi))
    yield from sync(t)


@kernel("xcell-race", dwarf="MapReduce", category="memory-irregular")
def race_kernel(t, args):
    """Deliberately broken consumer: streams the inbound block without
    ever polling the ready flag.  Its loads conflict with the foreign
    producer's stores with no release/acquire path between them -- the
    seeded cross-Cell race the sanitizer stitcher must flag."""
    words = args["words"]
    lo, hi = range_split(words, num_tiles(t), tile_id(t))
    acc = t.reg()
    top = t.loop_top()
    for i in range(lo, hi, 4):
        vl = t.vload(t.local_dram(BUF_OFFSET + 4 * i))
        yield vl
        for r in vl.dsts:
            yield t.fma(acc, [acc, r])
        yield t.branch_back(top, taken=(i + 4 < hi))
    yield from sync(t)


EXCHANGE = exchange_kernel
PRODUCE = produce_kernel
CONSUME = consume_kernel
RACE = race_kernel


def exchange_launches(config: MachineConfig, words: int = 64
                      ) -> List[LaunchSpec]:
    """One ``EXCHANGE`` launch per Cell, ring-wired (Cell i -> i+1)."""
    cells = list(config.chip.cells())
    launches = []
    for i, xy in enumerate(cells):
        nx, ny = cells[(i + 1) % len(cells)]
        args: Dict[str, int] = {
            "words": words,
            "out_ptr": spaces.group_dram(nx, ny, BUF_OFFSET),
            "flag_out": spaces.group_dram(nx, ny, FLAG_OFFSET),
            "flag_in": FLAG_OFFSET,
        }
        launches.append(LaunchSpec(cell=xy, kernel="repro.pdes.fixture:EXCHANGE",
                                   args=args))
    return launches


def race_launches(config: MachineConfig, words: int = 64
                  ) -> List[LaunchSpec]:
    """A correct producer paired with a consumer that skips the flag:
    Cell 0 pushes into Cell 1, Cell 1 reads immediately.  Per-shard
    sanitizers see nothing (each side is internally disciplined); only
    the cross-shard stitching pass can catch it."""
    cells = list(config.chip.cells())
    if len(cells) < 2:
        raise ValueError("race fixture wants at least 2 Cells")
    src, dst = cells[0], cells[1]
    return [
        LaunchSpec(
            cell=src, kernel="repro.pdes.fixture:PRODUCE",
            args={"words": words,
                  "out_ptr": spaces.group_dram(dst[0], dst[1], BUF_OFFSET),
                  "flag_out": spaces.group_dram(dst[0], dst[1],
                                                FLAG_OFFSET)}),
        LaunchSpec(
            cell=dst, kernel="repro.pdes.fixture:RACE",
            args={"words": words}),
    ]


def pipeline_launches(config: MachineConfig, words: int = 64
                      ) -> List[LaunchSpec]:
    """``PRODUCE``/``CONSUME`` over adjacent Cell pairs (0->1, 2->3, ...)."""
    cells = list(config.chip.cells())
    if len(cells) % 2:
        raise ValueError("pipeline fixture wants an even Cell count")
    launches = []
    for i in range(0, len(cells), 2):
        src, dst = cells[i], cells[i + 1]
        launches.append(LaunchSpec(
            cell=src, kernel="repro.pdes.fixture:PRODUCE",
            args={"words": words,
                  "out_ptr": spaces.group_dram(dst[0], dst[1], BUF_OFFSET),
                  "flag_out": spaces.group_dram(dst[0], dst[1], FLAG_OFFSET)}))
        launches.append(LaunchSpec(
            cell=dst, kernel="repro.pdes.fixture:CONSUME",
            args={"words": words, "flag_in": FLAG_OFFSET}))
    return launches
