"""One PDES shard: a single Cell's machine plus its window stepper.

A :class:`CellShard` wraps a sharded :class:`~repro.runtime.machine.Machine`
(``owned_cells={cell}``) built from a picklable :class:`ShardSpec`, so
the identical object runs in-process (serial mode, ``workers=1``) or
inside a forked worker.  Host-side setup is declarative -- kernels are
named by import path, pokes are ``(offset, value)`` pairs -- because a
shard may be constructed in a different process from the caller.

The stepper contract (:meth:`CellShard.advance`) is the whole sync
protocol from the shard's point of view: ingest this window's inbound
messages, run the local event engine up to the barrier, hand back the
outbound messages and the next local event time.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..arch import serialize
from ..arch.geometry import Coord
from ..isa.program import Kernel
from ..runtime.machine import Machine
from ..session import collect
from .channel import PdesError, ShardChannel


def resolve_kernel(ref: str) -> Kernel:
    """Import the :class:`Kernel` named by a ``module:attribute`` path."""
    module_name, _, attr = ref.partition(":")
    if not attr:
        from ..kernels.registry import SUITE

        if module_name in SUITE:
            return SUITE[module_name].kernel
        raise ValueError(
            f"kernel ref {ref!r} is neither a suite name "
            f"({sorted(SUITE)}) nor a 'module:attribute' path")
    obj = getattr(importlib.import_module(module_name), attr)
    if not isinstance(obj, Kernel):
        raise TypeError(f"{ref} is {type(obj).__name__}, not a Kernel")
    return obj


def kernel_ref(kern: Kernel) -> str:
    """The ``module:attribute`` path of a module-level :class:`Kernel`
    (the inverse of :func:`resolve_kernel`, for Session's front end)."""
    module_name = kern.factory.__module__
    module = importlib.import_module(module_name)
    for name, val in vars(module).items():
        if val is kern:
            return f"{module_name}:{name}"
    raise PdesError(
        f"kernel {kern.name!r} is not a module-level object in "
        f"{module_name}; PDES launches travel to workers by import path")


class PlanCell:
    """Host-side stand-in for a Cell before the shards exist.

    ``Session(cells=...)`` hands these out: ``malloc``/``local_dram``/
    ``group_dram`` are the same pure address arithmetic as the real
    :class:`~repro.runtime.cell.Cell`, and ``poke`` records a host write
    for the owning shard to apply at build time.  There is no ``peek``
    -- the memory doesn't exist until the run, and afterwards lives in
    the shard's collected payload.
    """

    HEAP_BASE = 4096  # matches Cell.HEAP_BASE

    def __init__(self, cell_xy: Coord,
                 record_poke: Any) -> None:
        self.cell_xy = cell_xy
        self._brk = self.HEAP_BASE
        self._record_poke = record_poke

    def malloc(self, nbytes: int, align: int = 64) -> int:
        if nbytes <= 0:
            raise ValueError("malloc needs a positive size")
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        self._brk = (self._brk + align - 1) & ~(align - 1)
        offset = self._brk
        self._brk += nbytes
        return offset

    def local_dram(self, offset: int) -> int:
        from ..pgas import spaces

        return spaces.local_dram(offset)

    def group_dram(self, offset: int) -> int:
        from ..pgas import spaces

        return spaces.group_dram(self.cell_xy[0], self.cell_xy[1], offset)

    def poke(self, offset: int, value: int) -> None:
        self._record_poke(self.cell_xy, offset, value)

    def peek(self, offset: int) -> int:
        raise PdesError(
            "peek is not available on a PlanCell: shard memory exists "
            "only during the run; read it from the collected payload "
            "(CellsResult.shards[...]['atomic_mem'])")


@dataclass(frozen=True)
class LaunchSpec:
    """A declarative kernel launch on one Cell.

    ``kernel`` is a bare suite name (``"AES"``) or a ``module:attribute``
    import path to a module-level :class:`Kernel` (kernel objects close
    over generator functions, so they travel by reference, like orch job
    ``fn`` paths).  ``args`` must be picklable and is deep-owned by the
    shard (kernels mutate their args dicts).

    ``remote`` declares whether the kernel may touch foreign-Cell
    addresses.  ``remote=False`` is a *promise* of Cell-locality --
    enforced at runtime (the shard's channel raises :class:`PdesError`
    on any cross-Cell access) -- and when every launch on the chip makes
    it, the coordinator drops the window barriers entirely and free-runs
    each shard to completion: no message can ever exist, so there is
    nothing to synchronize.  The default ``True`` assumes nothing and
    always windows.
    """

    cell: Coord
    kernel: str
    args: Optional[Dict[str, Any]] = None
    group_shape: Optional[Tuple[int, int]] = None
    remote: bool = True


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to (re)build one shard in any process."""

    config: Dict[str, Any]  # arch.serialize.to_dict output
    cell: Coord
    launches: Tuple[LaunchSpec, ...] = ()
    pokes: Tuple[Tuple[int, int], ...] = ()  # (offset, value) on this Cell
    audit: bool = False
    sanitize: bool = False
    #: Price the intra-Cell legs of cross-Cell paths on this shard's own
    #: network planes (see ``ShardChannel.contention``).
    contention: bool = True


class StepReport:
    """What a shard tells the coordinator at each barrier."""

    __slots__ = ("cell", "now", "next_time", "outbox", "done")

    def __init__(self, cell: Coord, now: float, next_time: Optional[float],
                 outbox: List[Any], done: bool) -> None:
        self.cell = cell
        self.now = now
        self.next_time = next_time
        self.outbox = outbox
        self.done = done

    def __getstate__(self):
        return (self.cell, self.now, self.next_time, self.outbox, self.done)

    def __setstate__(self, state):
        (self.cell, self.now, self.next_time, self.outbox,
         self.done) = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StepReport(cell={self.cell}, now={self.now}, "
                f"next={self.next_time}, out={len(self.outbox)}, "
                f"done={self.done})")


class CellShard:
    """One Cell's event engine, steppable in conservative windows."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.cell_xy = tuple(spec.cell)
        config = serialize.from_dict(spec.config)
        self.machine = Machine(config, owned_cells=[self.cell_xy])
        self.channel = ShardChannel(self.machine, self.cell_xy)
        self.channel.contention = spec.contention
        # remote=False on *every* launch turns the promise into a trap:
        # initiating any cross-Cell request from this shard raises.
        # (Replies to inbound requests are still allowed -- they are the
        # other side's traffic, not ours.)
        self.channel.local_only = all(
            not launch.remote for launch in spec.launches)
        self.auditor: Optional[Any] = None
        if spec.audit:
            from ..audit import Auditor
            from ..audit import attach as audit_attach

            self.auditor = audit_attach(self.machine, Auditor())
        self.sanitizer: Optional[Any] = None
        if spec.sanitize:
            from ..sanitize import Sanitizer
            from ..sanitize import attach as san_attach

            self.sanitizer = san_attach(self.machine, Sanitizer())
            # Record what the offline cross-shard stitching pass needs:
            # per-access clocks on Cell-DRAM words and the AMO sync log.
            self.sanitizer.enable_xshard(self.cell_xy)
        cell = self.machine.cells[self.cell_xy]
        for offset, value in spec.pokes:
            cell.poke(offset, value)
        self.handles: List[Tuple[Any, str]] = []
        for launch in spec.launches:
            if tuple(launch.cell) != self.cell_xy:
                raise PdesError(
                    f"launch for cell {launch.cell} given to shard "
                    f"{self.cell_xy}")
            kern = resolve_kernel(launch.kernel)
            cell.load_kernel(kern)
            handle = cell.launch(launch.args,
                                 group_shape=launch.group_shape)
            self.handles.append((handle, kern.name))

    # -- window stepping -----------------------------------------------------

    def next_time(self) -> Optional[float]:
        return self.machine.sim.peek()

    def report(self) -> StepReport:
        """Snapshot without advancing (the pre-loop INIT report)."""
        return StepReport(self.cell_xy, self.machine.sim.now,
                          self.next_time(), self.channel.drain(),
                          self._done())

    def advance(self, t_end: Optional[float],
                messages: List[Any]) -> StepReport:
        """One conservative window: deliver, run to the barrier, drain.

        ``messages`` must be pre-sorted in the global deterministic
        order; every arrival must be ``>= now`` (the window invariant --
        violating it means the coordinator's lookahead was wrong, and
        the engine will raise on the past-time schedule).  ``t_end=None``
        is the free-run stride: run to queue exhaustion, which the
        coordinator only asks for when no message can ever arrive (every
        live shard declared ``remote=False``).
        """
        if messages:
            self.channel.ingest(messages)
        sim = self.machine.sim
        sim.run(until=t_end)
        return StepReport(self.cell_xy, sim.now, self.next_time(),
                          self.channel.drain(), self._done())

    def _done(self) -> bool:
        return (not self.channel.pending
                and self.machine.sim.peek() is None
                and all(h.finished for h, _ in self.handles))

    # -- results -------------------------------------------------------------

    def collect(self) -> Dict[str, Any]:
        """The shard's JSON-able result payload (after the loop ends)."""
        sim = self.machine.sim
        if self.sanitizer is not None:
            self.sanitizer.finalize(sim.now)
        if self.auditor is not None:
            self.auditor.finalize(sim.now)
        results = []
        for handle, name in self.handles:
            result = collect(self.machine, handle, handle.cycles(), name)
            if self.auditor is not None:
                self.auditor.check_result(result)
            results.append(result.to_dict())
        counters: Dict[str, float] = {}
        for core in self.machine.cores.values():
            for cat, val in core.counters.as_dict().items():
                counters[cat] = counters.get(cat, 0.0) + val
        # last_event_time, not now: run(until=barrier) parks the clock at
        # the barrier even when the queue drained earlier, and barrier
        # placement varies with the window size.  The last *event* clock
        # is a pure function of the workload, so the payload (and hence
        # CellsResult.fingerprint) is identical across window sizes and
        # the free-run shortcut.
        payload: Dict[str, Any] = {
            "cell": list(self.cell_xy),
            "now": sim.last_event_time,
            "events": sim.events_executed,
            "results": results,
            "cycles": [r["cycles"] for r in results],
            "counters": counters,
            "atomic_mem": {repr(k): v for k, v in
                           sorted(self.machine.memsys.atomic_mem.items())},
            "sent": self.channel.sent,
            "received": self.channel.received,
        }
        if self.auditor is not None:
            payload["audit_clean"] = self.auditor.clean
            payload["audit"] = self.auditor.summary()
        if self.sanitizer is not None:
            payload["sanitize_clean"] = self.sanitizer.clean
            payload["sanitize"] = self.sanitizer.summary()
            payload["xshard"] = self.sanitizer.export_xshard(
                self.channel.inbound_words, self.channel.served_amos)
        return payload

    def peek_mem(self, offset: int) -> int:
        """Host functional read from this shard's Cell (serial mode and
        tests; parallel mode reads come back through :meth:`collect`)."""
        return self.machine.cells[self.cell_xy].peek(offset)
