"""The shard worker process: a pipe loop around :class:`CellShard`.

One worker hosts one or more shards (``workers < cells`` packs several
Cells per process).  The protocol is four request kinds over a duplex
pipe, each answered with ``("ok", payload)`` or ``("error", text)``:

* ``("init", [ShardSpec, ...])`` -> initial :class:`StepReport` list;
* ``("advance", [(shard_index, t_end, messages), ...])`` -> reports;
* ``("collect", None)`` -> result payload dicts;
* ``("shutdown", None)`` -> close and exit.

Workers are spawned with the fork-preferring context the orch pool
uses; SIGINT is ignored in children (the coordinator owns Ctrl-C and
tears the pool down on interrupt).
"""

from __future__ import annotations

import signal
import traceback
from typing import Any, List

from .shard import CellShard, ShardSpec


def shard_worker_main(conn: Any, worker_id: int) -> None:
    """Child entry point (module-level so it survives pickling by the
    spawn start method on fork-less platforms)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # coordinator owns Ctrl-C
    shards: List[CellShard] = []
    while True:
        try:
            cmd, body = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if cmd == "init":
                shards = [CellShard(spec) for spec in body]
                conn.send(("ok", [s.report() for s in shards]))
            elif cmd == "advance":
                reports = [shards[idx].advance(t_end, msgs)
                           for idx, t_end, msgs in body]
                conn.send(("ok", reports))
            elif cmd == "collect":
                conn.send(("ok", [s.collect() for s in shards]))
            elif cmd == "shutdown":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown command {cmd!r}"))
        except BaseException:  # noqa: BLE001 -- serialized to coordinator
            conn.send(("error",
                       f"worker {worker_id}: {traceback.format_exc()}"))
    conn.close()
