"""Performance reporting: breakdowns, bisection stats, text rendering."""

from .bisection import (
    BisectionStats,
    cell_bisection,
    horizontal_cut,
    utilization_series,
    vertical_cut,
)
from .counters import (
    BREAKDOWN_ORDER,
    HBM_ORDER,
    instructions_per_cycle,
    merge_breakdowns,
    ordered_breakdown,
    speedups,
)
from .report import (
    format_bars,
    format_series,
    format_stacked,
    format_table,
    speedup_table,
)

__all__ = [
    "BisectionStats",
    "vertical_cut",
    "horizontal_cut",
    "cell_bisection",
    "utilization_series",
    "BREAKDOWN_ORDER",
    "HBM_ORDER",
    "ordered_breakdown",
    "merge_breakdowns",
    "speedups",
    "instructions_per_cycle",
    "format_table",
    "format_bars",
    "format_stacked",
    "format_series",
    "speedup_table",
]
