"""Bisection-link measurement (Figs 3 and 14).

Works on the request/response :class:`~repro.noc.network.Network` pair of
a machine: identifies the links crossing a cut plane and aggregates their
busy/stall accounting into utilization fractions and time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..noc.network import Network
from ..noc.topology import Link


@dataclass
class BisectionStats:
    """Aggregated view of one cut through one network plane."""

    num_links: int
    busy_cycles: float
    stall_cycles: float
    packets: int
    elapsed: float
    per_link_busy: Tuple[float, ...] = ()

    @property
    def utilization(self) -> float:
        if self.elapsed <= 0 or self.num_links == 0:
            return 0.0
        return min(1.0, self.busy_cycles / (self.elapsed * self.num_links))

    @property
    def active_links(self) -> int:
        """Links that carried any traffic (the ones Fig 3 plots)."""
        return sum(1 for b in self.per_link_busy if b > 0)

    @property
    def active_utilization(self) -> float:
        """Utilization over the links actually carrying the transfer."""
        active = self.active_links
        if self.elapsed <= 0 or active == 0:
            return 0.0
        return min(1.0, self.busy_cycles / (self.elapsed * active))

    @property
    def peak_link_utilization(self) -> float:
        if self.elapsed <= 0 or not self.per_link_busy:
            return 0.0
        return min(1.0, max(self.per_link_busy) / self.elapsed)

    @property
    def stall_fraction(self) -> float:
        """Fraction of packet-cycles spent stalled at the cut (the Fig 14
        metric: how often bisection packets are blocked)."""
        denom = self.busy_cycles + self.stall_cycles
        if denom <= 0:
            return 0.0
        return self.stall_cycles / denom


def _collect(links: List[Link], elapsed: float) -> BisectionStats:
    return BisectionStats(
        num_links=len(links),
        busy_cycles=sum(l.busy_cycles for l in links),
        stall_cycles=sum(l.stall_cycles for l in links),
        packets=sum(l.packets for l in links),
        elapsed=elapsed,
        per_link_busy=tuple(l.busy_cycles for l in links),
    )


def vertical_cut(net: Network, plane_x: float, elapsed: float) -> BisectionStats:
    """Horizontal traffic crossing the vertical plane ``x = plane_x``."""
    return _collect(net.topology.cut_links_x(plane_x), elapsed)


def horizontal_cut(net: Network, plane_y: float, elapsed: float) -> BisectionStats:
    """Vertical traffic crossing the horizontal plane ``y = plane_y``."""
    return _collect(net.topology.cut_links_y(plane_y), elapsed)


def cell_bisection(net: Network, tiles_x: int, elapsed: float) -> BisectionStats:
    """The canonical Cell bisection: the vertical cut through the middle
    of the first Cell (the Fig 14 measurement point).  The plane sits
    half-way between the two centre columns so both mesh and ruche links
    crossing it are counted."""
    return vertical_cut(net, tiles_x / 2 - 0.5, elapsed)


def utilization_series(net: Network, plane_x: float,
                       normalize: bool = True) -> List[Tuple[float, float]]:
    """Summed busy time series across the cut's links (Fig 3's y-axis).

    Requires the machine to have been built with ``record_bin_width``.
    """
    links = net.topology.cut_links_x(plane_x)
    merged: Dict[float, float] = {}
    bin_width: Optional[float] = None
    for link in links:
        if link.series is None:
            raise RuntimeError(
                "link series not recorded; build the machine with "
                "record_bin_width set"
            )
        bin_width = link.series.bin_width
        for t, v in link.series.series():
            merged[t] = merged.get(t, 0.0) + v
    if not merged:
        return []
    capacity = (len(links) * bin_width) if normalize else 1.0
    return [(t, v / capacity) for t, v in sorted(merged.items())]
