"""Aggregation helpers over core/cache/HBM counters."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from ..core import stall as st
from ..runtime.result import RunResult

#: Display order for the Fig 11 core-utilization stack.
BREAKDOWN_ORDER = (
    st.EXEC_INT,
    st.EXEC_FP,
    st.STALL_DEPEND_LOAD,
    st.STALL_BYPASS,
    st.STALL_FDIV,
    st.STALL_ICACHE,
    st.STALL_BRANCH,
    st.STALL_BARRIER,
    st.STALL_FENCE,
    st.STALL_CREDIT,
    st.STALL_AMO,
    st.STALL_IDLE,
    "other",
)

HBM_ORDER = ("read", "write", "busy", "idle")


def ordered_from(breakdown: Mapping[str, float]) -> Dict[str, float]:
    """A raw category->fraction mapping in canonical display order."""
    return {cat: breakdown.get(cat, 0.0)
            for cat in BREAKDOWN_ORDER if breakdown.get(cat, 0.0) > 0}


def ordered_breakdown(result: RunResult) -> Dict[str, float]:
    """Core-cycle breakdown in canonical display order."""
    return ordered_from(result.core_breakdown)


def merge_breakdowns(results: Iterable[RunResult]) -> Dict[str, float]:
    """Tile-weighted average breakdown over several runs."""
    total = 0.0
    acc: Dict[str, float] = {}
    for r in results:
        weight = r.num_tiles * r.cycles
        total += weight
        for cat, frac in r.core_breakdown.items():
            acc[cat] = acc.get(cat, 0.0) + frac * weight
    if total == 0:
        return {}
    return {cat: v / total for cat, v in acc.items()}


def speedups(baseline_cycles: Mapping[str, float],
             variant_cycles: Mapping[str, float]) -> Dict[str, float]:
    """Per-kernel speedup of a variant over a baseline."""
    out = {}
    for kernel, base in baseline_cycles.items():
        if kernel in variant_cycles and variant_cycles[kernel] > 0:
            out[kernel] = base / variant_cycles[kernel]
    return out


def instructions_per_cycle(results: List[RunResult]) -> float:
    instr = sum(r.instructions for r in results)
    cycles = sum(r.cycles for r in results)
    return instr / cycles if cycles else 0.0
