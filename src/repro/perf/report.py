"""Plain-text rendering of experiment results: tables and bar charts.

Every experiment harness returns structured rows; these helpers print
them the way the paper's figures read, so running a bench module shows
the reproduced figure directly in the terminal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 floatfmt: str = ".3g") -> str:
    """A simple aligned text table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(format(cell, floatfmt))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(rendered):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_bars(items: Mapping[str, float], width: int = 40,
                max_value: Optional[float] = None,
                suffix: str = "") -> str:
    """Horizontal bar chart; one row per item."""
    if not items:
        return "(empty)"
    peak = max_value if max_value is not None else max(items.values())
    peak = max(peak, 1e-12)
    label_w = max(len(k) for k in items)
    lines = []
    for name, value in items.items():
        filled = int(round(width * min(value, peak) / peak))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{name.ljust(label_w)} |{bar}| {value:.3g}{suffix}")
    return "\n".join(lines)


def format_stacked(rows: Mapping[str, Mapping[str, float]],
                   categories: Sequence[str], width: int = 50,
                   symbols: str = "#*=+xo-~^%") -> str:
    """Stacked 100%-bar chart (the Fig 10/11 breakdown style).

    ``rows`` maps a label to ``{category: fraction}``; fractions should
    sum to at most 1 per row.
    """
    label_w = max(len(k) for k in rows) if rows else 0
    lines = []
    legend = ", ".join(f"{symbols[i % len(symbols)]}={c}"
                       for i, c in enumerate(categories))
    lines.append(f"legend: {legend}")
    for name, fractions in rows.items():
        bar = []
        for i, cat in enumerate(categories):
            n = int(round(width * fractions.get(cat, 0.0)))
            bar.append(symbols[i % len(symbols)] * n)
        body = "".join(bar)[:width].ljust(width, ".")
        lines.append(f"{name.ljust(label_w)} |{body}|")
    return "\n".join(lines)


def format_series(series: Sequence[Tuple[float, float]], width: int = 60,
                  height: int = 12, title: str = "") -> str:
    """Coarse ASCII line plot of a (time, value) series (Fig 3 style)."""
    if not series:
        return "(empty series)"
    xs = [p[0] for p in series]
    ys = [p[1] for p in series]
    ymax = max(max(ys), 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for x, y in series:
        col = int((x - xs[0]) / max(xs[-1] - xs[0], 1e-12) * (width - 1))
        row = int((1 - y / ymax) * (height - 1))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={ymax:.3g}")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"t: {xs[0]:.0f} .. {xs[-1]:.0f} cycles")
    return "\n".join(lines)


def speedup_table(baseline: Mapping[str, float],
                  variants: Mapping[str, Mapping[str, float]]) -> str:
    """Speedup-vs-baseline table keyed by kernel (Fig 10/15 style).

    ``baseline`` maps kernel -> cycles; each variant likewise.
    """
    headers = ["kernel"] + list(variants)
    rows = []
    for kernel, base_cycles in baseline.items():
        row: List[object] = [kernel]
        for name in variants:
            cycles = variants[name].get(kernel)
            row.append(base_cycles / cycles if cycles else float("nan"))
        rows.append(row)
    return format_table(headers, rows)
