"""PGAS address spaces, hashing and translation (paper Section IV)."""

from .hashing import bank_of_line, ipoly_hash, modulo_hash, stride_camping_score
from .spaces import (
    DecodedAddress,
    Space,
    decode,
    encode,
    global_dram,
    group_dram,
    group_spm,
    is_dram,
    local_dram,
    local_spm,
    space_of,
)
from .translate import Destination, TargetKind, Translator

__all__ = [
    "Space",
    "DecodedAddress",
    "encode",
    "decode",
    "local_spm",
    "group_spm",
    "local_dram",
    "group_dram",
    "global_dram",
    "is_dram",
    "space_of",
    "ipoly_hash",
    "modulo_hash",
    "bank_of_line",
    "stride_camping_score",
    "Translator",
    "Destination",
    "TargetKind",
]
