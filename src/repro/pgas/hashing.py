"""Bank-interleaving hash functions.

*Regional IPOLY hashing* (Rau, ISCA '91) pseudo-randomly distributes a
Cell's private DRAM space across its cache banks at cache-line
granularity, eliminating the partition-camping problem of 2**n-stride
access patterns that plagues plain modulo interleaving.  We implement it
as CRC-style polynomial division over GF(2): the line address is reduced
modulo an irreducible polynomial whose degree matches ``log2(banks)``.

The *global* space uses the same mechanism with a different polynomial,
spread across every bank on the chip (or within a grid partition).
"""

from __future__ import annotations

from typing import Dict, List

# Irreducible polynomials over GF(2) by degree (coefficient bitmasks,
# including the leading term).  Degree n hashes into 2**n banks.
_IRREDUCIBLE: Dict[int, int] = {
    1: 0b11,
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10000011,
    8: 0b100011011,
    9: 0b1000010001,
    10: 0b10000001001,
}


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def ipoly_hash(value: int, banks: int) -> int:
    """Reduce ``value`` modulo the degree-``log2(banks)`` irreducible poly.

    Equivalent to the remainder of GF(2) polynomial division, i.e. a CRC
    of the line address.  Requires ``banks`` to be a power of two.
    """
    if not _is_pow2(banks):
        raise ValueError(f"IPOLY hashing needs a power-of-two bank count, got {banks}")
    if banks == 1:
        return 0
    degree = banks.bit_length() - 1
    poly = _IRREDUCIBLE.get(degree)
    if poly is None:
        raise ValueError(f"no irreducible polynomial recorded for degree {degree}")
    rem = value
    # Peel bits from the top down to degree, xoring in the polynomial --
    # plain carry-less long division.
    while rem.bit_length() > degree:
        shift = rem.bit_length() - (degree + 1)
        rem ^= poly << shift
    return rem


def modulo_hash(value: int, banks: int) -> int:
    """Plain low-bit interleaving: the non-IPOLY baseline."""
    if banks <= 0:
        raise ValueError("bank count must be positive")
    return value % banks


def bank_of_line(line_addr: int, banks: int, use_ipoly: bool) -> int:
    """Map a cache-line address to a bank index."""
    if use_ipoly:
        return ipoly_hash(line_addr, banks)
    return modulo_hash(line_addr, banks)


def stride_camping_score(banks: int, stride_lines: int, accesses: int,
                         use_ipoly: bool) -> float:
    """Diagnostic: max/mean bank load for a strided stream of line accesses.

    1.0 means perfectly balanced; ``banks`` means everything camped on a
    single bank.  Used by tests and the Fig 10 ablation narrative.
    """
    counts: List[int] = [0] * banks
    for i in range(accesses):
        counts[bank_of_line(i * stride_lines, banks, use_ipoly)] += 1
    mean = accesses / banks
    return max(counts) / mean if mean else 0.0
