"""The five PGAS address spaces (paper Fig 5).

Kernel-visible addresses are plain integers.  A tag in the upper bits
selects the space; lower bits encode tile coordinates and offsets exactly
as the paper describes ("a few upper bits of an address determine which
major address space it belongs in").

Layout (LSB on the right)::

    [ tag : 3 ][ field_a : 12 ][ field_b : 12 ][ offset : 32 ]

* LOCAL_SPM   -- offset only (< 4 KB); private to the issuing tile.
* GROUP_SPM   -- field_a = global tile x, field_b = global tile y,
                 offset < 4 KB; addresses any tile's scratchpad.
* LOCAL_DRAM  -- offset into the issuing tile's Cell-private DRAM space.
* GROUP_DRAM  -- field_a = cell x, field_b = cell y, offset into that
                 Cell's private DRAM space.
* GLOBAL_DRAM -- offset into the chip-wide interleaved space.
"""

from __future__ import annotations

from enum import IntEnum
from typing import NamedTuple, Tuple

OFFSET_BITS = 32
FIELD_BITS = 12
TAG_SHIFT = OFFSET_BITS + 2 * FIELD_BITS

OFFSET_MASK = (1 << OFFSET_BITS) - 1
FIELD_MASK = (1 << FIELD_BITS) - 1
FIELD_B_SHIFT = OFFSET_BITS
FIELD_A_SHIFT = OFFSET_BITS + FIELD_BITS

SPM_BYTES = 4 * 1024


class Space(IntEnum):
    """Address-space tags."""

    LOCAL_SPM = 0
    GROUP_SPM = 1
    LOCAL_DRAM = 2
    GROUP_DRAM = 3
    GLOBAL_DRAM = 4
    # PIM command window: field_a = cell x, field_b = cell y, offset =
    # pseudo-channel index.  Commands written through this window are
    # served by the PIM engine embedded in that Cell's channel.
    PIM = 5


class DecodedAddress(NamedTuple):
    """An address split into its PGAS components.

    A :class:`~typing.NamedTuple` rather than a frozen dataclass: decode
    sits on the translation hot path and tuple construction is one C
    call instead of four ``object.__setattr__`` round-trips.
    """

    space: Space
    offset: int
    field_a: int = 0
    field_b: int = 0

    def encode(self) -> int:
        return encode(self.space, self.offset, self.field_a, self.field_b)


#: Tag -> Space without the enum-constructor call (hot-path lookup).
_SPACE_BY_TAG = {int(s): s for s in Space}


def encode(space: Space, offset: int, field_a: int = 0, field_b: int = 0) -> int:
    """Pack PGAS components into an integer address."""
    if not 0 <= offset <= OFFSET_MASK:
        raise ValueError(f"offset {offset:#x} out of range")
    if not 0 <= field_a <= FIELD_MASK or not 0 <= field_b <= FIELD_MASK:
        raise ValueError(f"coordinate field out of range: {(field_a, field_b)}")
    return (
        (int(space) << TAG_SHIFT)
        | (field_a << FIELD_A_SHIFT)
        | (field_b << FIELD_B_SHIFT)
        | offset
    )


def decode(addr: int) -> DecodedAddress:
    """Split an integer address into PGAS components."""
    if addr < 0:
        raise ValueError("addresses are unsigned")
    tag = addr >> TAG_SHIFT
    space = _SPACE_BY_TAG.get(tag)
    if space is None:
        raise ValueError(f"unknown address-space tag {tag} in {addr:#x}")
    return DecodedAddress(
        space,
        addr & OFFSET_MASK,
        (addr >> FIELD_A_SHIFT) & FIELD_MASK,
        (addr >> FIELD_B_SHIFT) & FIELD_MASK,
    )


def local_spm(offset: int) -> int:
    """Address in the issuing tile's own scratchpad."""
    if not 0 <= offset < SPM_BYTES:
        raise ValueError(f"SPM offset {offset:#x} exceeds {SPM_BYTES} bytes")
    return encode(Space.LOCAL_SPM, offset)


def group_spm(tile_x: int, tile_y: int, offset: int) -> int:
    """Address in another tile's scratchpad (global tile coordinates)."""
    if not 0 <= offset < SPM_BYTES:
        raise ValueError(f"SPM offset {offset:#x} exceeds {SPM_BYTES} bytes")
    return encode(Space.GROUP_SPM, offset, tile_x, tile_y)


def local_dram(offset: int) -> int:
    """Address in the issuing Cell's private DRAM space."""
    return encode(Space.LOCAL_DRAM, offset)


def group_dram(cell_x: int, cell_y: int, offset: int) -> int:
    """Address in another Cell's private DRAM space."""
    return encode(Space.GROUP_DRAM, offset, cell_x, cell_y)


def global_dram(offset: int) -> int:
    """Address in the chip-wide interleaved DRAM space."""
    return encode(Space.GLOBAL_DRAM, offset)


def pim_window(cell_x: int, cell_y: int, channel: int = 0) -> int:
    """Address of a Cell's PIM command window (one per pseudo-channel)."""
    return encode(Space.PIM, channel, cell_x, cell_y)


def is_dram(addr: int) -> bool:
    return decode(addr).space in (Space.LOCAL_DRAM, Space.GROUP_DRAM, Space.GLOBAL_DRAM)


def space_of(addr: int) -> Space:
    return Space(addr >> TAG_SHIFT)


def spm_partner(addr: int, dx: int, dy: int, my_x: int, my_y: int) -> Tuple[int, int]:
    """Helper for stencil kernels: neighbour tile coordinates."""
    return my_x + dx, my_y + dy
