"""Address translation: PGAS virtual address -> network destination.

This is the "low-cost combinational logic" of the paper: no TLB, just bit
slicing plus the bank hash.  The translator is the single authority both
cores and the host runtime use to find where a word lives.

Because the mapping is pure (immutable geometry, stateless hashes), the
translator memoizes aggressively: full ``(addr, node)`` translations, the
node -> ``(cell, local)`` split, and the line -> bank hash all cache their
results.  Every memo is either naturally bounded (node count) or flushed
at a size cap, keeping worst-case memory flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from ..arch.geometry import ChipGeometry, Coord
from .hashing import bank_of_line
from .spaces import DecodedAddress, Space, decode


class TargetKind(Enum):
    SPM = "spm"
    CACHE = "cache"
    PIM = "pim"


# Keeps the chip-wide interleaved space's backing-DRAM addresses disjoint
# from every Cell-private partition within a bank's exclusive range.
GLOBAL_DRAM_BASE = 1 << 34


@dataclass(frozen=True)
class Destination:
    """Where a memory operation physically goes."""

    node: Coord  # global grid coordinate of the serving node
    kind: TargetKind
    cell_xy: Coord  # owning Cell
    bank_index: int  # bank within the Cell (caches only, else 0)
    mem_addr: int  # byte address within the owning memory


class Translator:
    """Maps kernel-visible addresses onto the machine's node grid."""

    #: Cap for the capped memos; a full flush on overflow keeps memory flat.
    _MEMO_MAX = 1 << 16

    def __init__(self, chip: ChipGeometry, block_bytes: int, use_ipoly: bool,
                 grid_cells: Tuple[int, int] = (0, 0)) -> None:
        """``grid_cells`` optionally partitions GLOBAL_DRAM into rectangular
        grids of Cells (paper Section IV-A(5)); ``(0, 0)`` disables grids
        and hashes across the whole chip."""
        self.chip = chip
        self.block_bytes = block_bytes
        self.use_ipoly = use_ipoly
        self.grid_cells = grid_cells
        # (addr, node) -> Destination; the node matters for LOCAL_* spaces.
        self._memo: Dict[Tuple[int, Coord], Destination] = {}
        # node -> (cell_xy, local); bounded by the chip's node count.
        self._local_memo: Dict[Coord, Tuple[Coord, Coord]] = {}
        # (cell_xy, line) -> (node, bank) for the Cell-private hash.
        self._line_memo: Dict[Tuple[Coord, int], Tuple[Coord, int]] = {}
        # line -> (node, cell_xy, bank) for the chip-wide hash.
        self._global_memo: Dict[int, Tuple[Coord, Coord, int]] = {}
        # Bank index -> cell-local coordinate, precomputed once.
        self._bank_local = tuple(
            chip.cell.bank_coord(b) for b in range(chip.cell.num_banks)
        )

    def translate(self, addr: int, tile_node: Coord) -> Destination:
        """Translate ``addr`` as issued by the tile at global ``tile_node``."""
        memo = self._memo
        key = (addr, tile_node)
        dest = memo.get(key)
        if dest is not None:
            return dest
        dest = self._translate(addr, tile_node)
        if len(memo) >= self._MEMO_MAX:
            memo.clear()
        memo[key] = dest
        return dest

    def _to_local(self, node: Coord) -> Tuple[Coord, Coord]:
        """Memoized (validated) global -> (cell, local) split."""
        hit = self._local_memo.get(node)
        if hit is None:
            hit = self.chip.to_local(node)
            self._local_memo[node] = hit
        return hit

    def _translate(self, addr: int, tile_node: Coord) -> Destination:
        dec = decode(addr)
        if dec.space is Space.LOCAL_SPM:
            return Destination(
                node=tile_node, kind=TargetKind.SPM,
                cell_xy=self._to_local(tile_node)[0],
                bank_index=0, mem_addr=dec.offset,
            )
        if dec.space is Space.GROUP_SPM:
            return self._group_spm(dec)
        if dec.space is Space.LOCAL_DRAM:
            cell_xy, _local = self._to_local(tile_node)
            return self._cell_dram(cell_xy, dec.offset)
        if dec.space is Space.GROUP_DRAM:
            cell_xy = (dec.field_a, dec.field_b)
            self.chip.cell_origin(cell_xy)  # validates the coordinate
            return self._cell_dram(cell_xy, dec.offset)
        if dec.space is Space.GLOBAL_DRAM:
            return self._global_dram(dec.offset)
        if dec.space is Space.PIM:
            cell_xy = (dec.field_a, dec.field_b)
            self.chip.cell_origin(cell_xy)  # validates the coordinate
            # Commands enter through the Cell's first cache node; the
            # offset names the pseudo-channel behind it.
            return Destination(
                node=self.chip.to_global(cell_xy, self._bank_local[0]),
                kind=TargetKind.PIM,
                cell_xy=cell_xy,
                bank_index=dec.offset,
                mem_addr=0,
            )
        raise ValueError(f"unhandled space {dec.space}")

    def _group_spm(self, dec: DecodedAddress) -> Destination:
        node = (dec.field_a, dec.field_b)
        cell_xy, local = self._to_local(node)
        ly = local[1]
        if ly == 0 or ly == self.chip.cell.tiles_y + 1:
            raise ValueError(f"GROUP_SPM address targets a cache node {node}")
        return Destination(
            node=node, kind=TargetKind.SPM,
            cell_xy=cell_xy, bank_index=0, mem_addr=dec.offset,
        )

    def _cell_dram(self, cell_xy: Coord, offset: int) -> Destination:
        """A Cell-private DRAM word, striped across that Cell's banks."""
        line = offset // self.block_bytes
        memo = self._line_memo
        key = (cell_xy, line)
        hit = memo.get(key)
        if hit is None:
            bank = bank_of_line(line, self.chip.cell.num_banks, self.use_ipoly)
            node = self.chip.to_global(cell_xy, self._bank_local[bank])
            if len(memo) >= self._MEMO_MAX:
                memo.clear()
            memo[key] = hit = (node, bank)
        return Destination(
            node=hit[0],
            kind=TargetKind.CACHE,
            cell_xy=cell_xy,
            bank_index=hit[1],
            mem_addr=offset,
        )

    def _global_dram(self, offset: int) -> Destination:
        """Chip-wide space: lines spread over every bank of every Cell.

        With grids enabled, the top offset bits select the grid and the
        rest hashes within it.
        """
        line = offset // self.block_bytes
        memo = self._global_memo
        hit = memo.get(line)
        if hit is None:
            hit = self._global_line(line)
            if len(memo) >= self._MEMO_MAX:
                memo.clear()
            memo[line] = hit
        return Destination(
            node=hit[0],
            kind=TargetKind.CACHE,
            cell_xy=hit[1],
            bank_index=hit[2],
            mem_addr=GLOBAL_DRAM_BASE + offset,
        )

    def _global_line(self, line: int) -> Tuple[Coord, Coord, int]:
        gx, gy = self.grid_cells
        if gx and gy:
            grids_x = self.chip.cells_x // gx
            grids_y = self.chip.cells_y // gy
            num_grids = max(1, grids_x * grids_y)
            grid = line % num_grids
            line //= num_grids
            grid_origin = ((grid % grids_x) * gx, (grid // grids_x) * gy)
            cells = [(grid_origin[0] + i, grid_origin[1] + j)
                     for j in range(gy) for i in range(gx)]
        else:
            cells = list(self.chip.cells())
        banks_per_cell = self.chip.cell.num_banks
        total = len(cells) * banks_per_cell
        flat = bank_of_line(line, _round_pow2(total), True) % total
        cell_xy = cells[flat // banks_per_cell]
        bank = flat % banks_per_cell
        node = self.chip.to_global(cell_xy, self._bank_local[bank])
        return node, cell_xy, bank


def _round_pow2(n: int) -> int:
    """Smallest power of two >= n (the hash domain, folded by modulo)."""
    p = 1
    while p < n:
        p <<= 1
    return p
