"""Processing-in-memory backend for the HBM model (AiM-style).

Import-light on purpose: :mod:`repro.arch.config` imports
:class:`PimConfig` from here, so this package must not pull in the
kernel/ISA machinery.  The offload kernel registry lives in
:mod:`repro.pim.kernels` and is imported explicitly by its users.
"""

from .commands import (MacAbk, MicroOp, PimCommand, RdMac, WrBias, WrCrf,
                       WrGb, WrSbk)
from .config import PimConfig
from .engine import PimEngine
from .reference import RefPimBank
from .unit import PimUnit

__all__ = [
    "PimConfig", "PimEngine", "PimUnit", "RefPimBank",
    "PimCommand", "MicroOp",
    "WrGb", "WrSbk", "WrBias", "WrCrf", "MacAbk", "RdMac",
]
