"""The AiM-style PIM command set and the per-bank micro-op encoding.

Commands are what tiles issue through the memory system (via the
``pim_issue`` / ``pim_read`` ISA ops); micro-ops are what the CRF holds
and ``MAC_ABK`` executes on every enabled bank.  Timing lives in
:mod:`repro.pim.engine`; these classes are pure data.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple


class MicroOp:
    """One CRF slot: a per-bank ALU operation over a DRAM row chunk.

    ``row_data`` below is the ``simd_width``-lane chunk of the DRAM row
    named by the executing ``MAC_ABK``; ``gb`` is the channel's global
    buffer.

    ========  =================================================
    kind      effect (lane-wise, per enabled bank)
    ========  =================================================
    ``mac``   ``grf[dst] += row_data * gb``
    ``add``   ``grf[dst] = grf[src] + row_data``
    ``mul``   ``grf[dst] = grf[src] * row_data``
    ``mov``   ``grf[dst] = row_data``
    ``fill``  ``grf[dst] = imm`` (row_data ignored)
    ========  =================================================
    """

    __slots__ = ("kind", "dst", "src", "imm")

    KINDS = ("mac", "add", "mul", "mov", "fill")

    def __init__(self, kind: str, dst: int, src: int = 0,
                 imm: float = 0.0) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown micro-op kind {kind!r}")
        self.kind = kind
        self.dst = dst
        self.src = src
        self.imm = imm

    def __repr__(self) -> str:
        return (f"MicroOp({self.kind!r}, dst={self.dst}, src={self.src}, "
                f"imm={self.imm})")


class PimCommand:
    """Base of the AiM-style command set (timing in docs/MODEL.md)."""

    __slots__ = ()
    name = "pim"

    def __repr__(self) -> str:
        fields = ", ".join(f"{s}={getattr(self, s)!r}" for s in self.__slots__)
        return f"{type(self).__name__}({fields})"


class WrGb(PimCommand):
    """WR_GB: broadcast a ``simd_width`` vector into the global buffer."""

    __slots__ = ("values",)
    name = "wr_gb"

    def __init__(self, values: Iterable[float]) -> None:
        self.values = tuple(float(v) for v in values)


class WrSbk(PimCommand):
    """WR_SBK: write one row chunk into a single bank's row store."""

    __slots__ = ("bank", "row", "values")
    name = "wr_sbk"

    def __init__(self, bank: int, row: int,
                 values: Iterable[float]) -> None:
        self.bank = bank
        self.row = row
        self.values = tuple(float(v) for v in values)


class WrBias(PimCommand):
    """WR_BIAS: preset GRF entry ``grf`` of every bank to a scalar."""

    __slots__ = ("grf", "value")
    name = "wr_bias"

    def __init__(self, grf: int, value: float = 0.0) -> None:
        self.grf = grf
        self.value = float(value)


class WrCrf(PimCommand):
    """WR_CRF: program micro-op ``mop`` into CRF slot ``slot``."""

    __slots__ = ("slot", "mop")
    name = "wr_crf"

    def __init__(self, slot: int, mop: MicroOp) -> None:
        self.slot = slot
        self.mop = mop


class MacAbk(PimCommand):
    """MAC_ABK: execute CRF slot ``slot`` on row ``row`` of every bank.

    ``banks`` restricts execution to a subset (a bank mask); ``None``
    means all banks -- the bank-parallel fast path.
    """

    __slots__ = ("row", "slot", "banks")
    name = "mac_abk"

    def __init__(self, row: int, slot: int,
                 banks: Optional[Sequence[int]] = None) -> None:
        self.row = row
        self.slot = slot
        self.banks = None if banks is None else tuple(banks)


class RdMac(PimCommand):
    """RD_MAC: read ``count`` GRF entries starting at ``grf0`` from one bank.

    With ``reduce`` each entry is lane-summed to a scalar (the MAC
    readout of a dot product); without it the raw lanes stream out.
    """

    __slots__ = ("bank", "grf0", "count", "reduce")
    name = "rd_mac"

    def __init__(self, bank: int, grf0: int = 0, count: int = 1,
                 reduce: bool = True) -> None:
        self.bank = bank
        self.grf0 = grf0
        self.count = count
        self.reduce = reduce

    def payload_words(self, simd_width: int) -> int:
        """Words the response data occupies on bus and NoC."""
        return self.count if self.reduce else self.count * simd_width


#: Commands that carry a full row chunk of data to the channel.
DataCommands: Tuple[type, ...] = (WrGb, WrSbk)
