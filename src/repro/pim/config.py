"""Configuration of the processing-in-memory (PIM) backend.

This module is imported by :mod:`repro.arch.config` (the ``pim=`` block
of a :class:`~repro.arch.config.MachineConfig`), so it must stay free of
heavy imports -- a plain frozen dataclass, like the timing bundles in
:mod:`repro.arch.params`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PimConfig:
    """Per-bank compute resources of the AiM-style PIM units.

    One :class:`~repro.pim.engine.PimEngine` is embedded per HBM
    pseudo-channel.  Every DRAM bank hosts one execution unit with a
    GRF (accumulator vector register file); the channel shares a CRF
    (micro-op program slots) and a global buffer of ``simd_width``
    f32 lanes that broadcast one operand to all banks.
    """

    grf_entries: int = 8  #: accumulator vector registers per bank
    crf_entries: int = 32  #: micro-op program slots per channel
    simd_width: int = 16  #: f32 lanes per GRF entry / DRAM row chunk
    t_mac: int = 4  #: extra bank-busy cycles charged by one MAC_ABK

    def __post_init__(self) -> None:
        for name in ("grf_entries", "crf_entries", "simd_width", "t_mac"):
            if getattr(self, name) < 1:
                raise ValueError(f"PimConfig.{name} must be >= 1")
