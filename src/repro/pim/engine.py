"""Bank-parallel PIM execution engine embedded in one pseudo-channel.

The engine owns the *functional* PIM state (per-bank units, the global
buffer, the CRF program) but borrows all *timing* state from the host
:class:`~repro.mem.hbm.PseudoChannel`: every command claims the shared
data bus (`Interval`), and bank-touching commands run the channel's own
row state machine, so tRP/tRCD/tCL, tCCD spacing and bus-burst
serialization are charged exactly as for ordinary reads and writes.

Timing rules (documented in docs/MODEL.md):

* ``WR_GB`` / ``WR_SBK`` carry a row chunk: a full ``burst_cycles`` bus
  occupancy.  ``WR_CRF`` / ``WR_BIAS`` / ``MAC_ABK`` are control
  commands: one bus cycle.  ``RD_MAC`` is a one-cycle command followed
  by its readout bursts.
* ``WR_SBK`` and ``MAC_ABK`` run the row state machine of each touched
  bank (hit/open/conflict exactly as ``PseudoChannel.access``);
  ``MAC_ABK`` additionally holds each bank ``t_mac`` cycles.
* Per-bank completion of ``MAC_ABK`` is ``start + latency + t_mac``;
  command completion is the max over enabled banks -- this is where the
  bank-level parallelism comes from.
* ``WR_BIAS`` and ``RD_MAC`` occupy their bank at least one cycle
  (``RD_MAC``: tCCD) without touching row state.

Functional state is mutated at the ``execute`` call, i.e. in command
arrival order at the channel -- the same serialization-point discipline
the model uses for AMOs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..engine.stats import Counter
from .commands import (MacAbk, PimCommand, RdMac, WrBias, WrCrf, WrGb,
                       WrSbk)
from .config import PimConfig
from .unit import PimUnit


class PimEngine:
    """AiM-style per-bank compute for one HBM pseudo-channel."""

    def __init__(self, config: PimConfig, channel: Any,
                 name: str = "pim") -> None:
        self.config = config
        self.channel = channel
        self.name = name
        self.units: List[PimUnit] = [
            PimUnit(config) for _ in range(channel.timing.banks)]
        self.gb: List[float] = [0.0] * config.simd_width
        self.crf: List[Optional[Any]] = [None] * config.crf_entries
        self.counters = Counter()
        #: Timeline tracer hook (set by :func:`repro.trace.attach`).
        self._trace = None
        self._trace_track = 0
        #: Invariant-checker hook (set by :func:`repro.audit.attach`).
        self._audit = None

    @property
    def nbanks(self) -> int:
        return self.channel.timing.banks

    # -- host-side preload ---------------------------------------------------

    def load_bank_rows(self, bank: int,
                       rows: Dict[int, Iterable[float]]) -> None:
        """Host-side functional preload of a bank's row chunks.

        Zero simulated cost: the data already resides in DRAM (the tile
        side reads the same arrays through the NoC; the PIM side pays
        the activations when ``MAC_ABK`` touches the rows).
        """
        unit = self.units[bank]
        for row, values in rows.items():
            unit.set_row(row, values)

    # -- execution -----------------------------------------------------------

    def _claim_bus(self, time: float, cycles: int) -> float:
        ch = self.channel
        bus_start = ch._bus.reserve(time, cycles)
        ch._account_pressure(time, bus_start)
        if ch.first_request is None:
            ch.first_request = time
        return bus_start

    def _check_grf(self, idx: int, what: str) -> None:
        if not 0 <= idx < self.config.grf_entries:
            raise ValueError(f"{what} GRF index {idx} out of range "
                             f"[0, {self.config.grf_entries})")

    def _check_bank(self, bank: int, what: str) -> None:
        if not 0 <= bank < self.nbanks:
            raise ValueError(f"{what} bank {bank} out of range "
                             f"[0, {self.nbanks})")

    def execute(self, cmd: PimCommand, time: float) -> Tuple[float, Any]:
        """Serve one command arriving at ``time``.

        Returns ``(completion_cycle, payload)``; the payload is a tuple
        of floats for ``RD_MAC`` and ``None`` for every other command.
        """
        ch = self.channel
        audit = self._audit
        payload: Any = None
        self.counters.add(cmd.name)

        if isinstance(cmd, WrGb):
            bus_start = span_start = self._claim_bus(time, ch.burst_cycles)
            done = bus_start + ch.burst_cycles
            ch.write_cycles += ch.burst_cycles
            w = self.config.simd_width
            vals = list(cmd.values)[:w]
            vals.extend(0.0 for _ in range(w - len(vals)))
            self.gb = vals
            if audit is not None:
                audit.pim_bus(self, cmd.name, bus_start, ch.burst_cycles)

        elif isinstance(cmd, WrCrf):
            if not 0 <= cmd.slot < self.config.crf_entries:
                raise ValueError(f"WR_CRF slot {cmd.slot} out of range "
                                 f"[0, {self.config.crf_entries})")
            self._check_grf(cmd.mop.dst, "WR_CRF micro-op dst")
            if cmd.mop.kind in ("add", "mul"):
                self._check_grf(cmd.mop.src, "WR_CRF micro-op src")
            bus_start = span_start = self._claim_bus(time, 1)
            done = bus_start + 1
            self.crf[cmd.slot] = cmd.mop
            if audit is not None:
                audit.pim_bus(self, cmd.name, bus_start, 1)

        elif isinstance(cmd, WrBias):
            self._check_grf(cmd.grf, "WR_BIAS")
            bus_start = span_start = self._claim_bus(time, 1)
            cmd_done = bus_start + 1
            done = cmd_done
            if audit is not None:
                audit.pim_bus(self, cmd.name, bus_start, 1)
            w = self.config.simd_width
            for bank_idx, unit in enumerate(self.units):
                bank = ch._banks[bank_idx]
                ready_before = bank.ready_at
                start = ready_before if ready_before > cmd_done else cmd_done
                bank.ready_at = start + 1
                unit.grf[cmd.grf] = [cmd.value] * w
                unit.written[cmd.grf] = True
                if start + 1 > done:
                    done = start + 1
                if audit is not None:
                    audit.pim_bank_op(self, cmd.name, bank_idx, time, start,
                                      ready_before, bank.ready_at)
                    audit.pim_grf(self, cmd.name, bank_idx,
                                  writes=(cmd.grf,))

        elif isinstance(cmd, WrSbk):
            self._check_bank(cmd.bank, "WR_SBK")
            bank = ch._banks[cmd.bank]
            ready_before = bank.ready_at
            start, latency, _busy, row_state = ch._row_machine(
                bank, cmd.row, time)
            burst_start = span_start = ch._bus.reserve(
                start + latency, ch.burst_cycles)
            done = burst_start + ch.burst_cycles
            bank.rows[cmd.row] = done
            if len(bank.rows) > 64:
                horizon = start - ch.REORDER_WINDOW
                bank.rows = {r: tt for r, tt in bank.rows.items()
                             if tt >= horizon}
            ch.write_cycles += ch.burst_cycles
            ch._account_pressure(time, burst_start)
            if ch.first_request is None:
                ch.first_request = time
            self.units[cmd.bank].set_row(cmd.row, cmd.values)
            if audit is not None:
                audit.pim_bus(self, cmd.name, burst_start, ch.burst_cycles)
                audit.pim_bank_op(self, cmd.name, cmd.bank, time, start,
                                  ready_before, bank.ready_at,
                                  row=cmd.row, row_state=row_state,
                                  completion=done)

        elif isinstance(cmd, MacAbk):
            if not 0 <= cmd.slot < self.config.crf_entries:
                raise ValueError(f"MAC_ABK slot {cmd.slot} out of range "
                                 f"[0, {self.config.crf_entries})")
            mop = self.crf[cmd.slot]
            if mop is None:
                raise ValueError(f"MAC_ABK executes unprogrammed CRF slot "
                                 f"{cmd.slot}")
            banks = cmd.banks if cmd.banks is not None \
                else tuple(range(self.nbanks))
            for b in banks:
                self._check_bank(b, "MAC_ABK")
            bus_start = span_start = self._claim_bus(time, 1)
            cmd_done = bus_start + 1
            done = cmd_done
            if audit is not None:
                audit.pim_bus(self, cmd.name, bus_start, 1)
            t_mac = self.config.t_mac
            if mop.kind == "mac":
                reads = (mop.dst,)
            elif mop.kind in ("add", "mul"):
                reads = (mop.src,)
            else:
                reads = ()
            for bank_idx in banks:
                bank = ch._banks[bank_idx]
                ready_before = bank.ready_at
                start, latency, _busy, row_state = ch._row_machine(
                    bank, cmd.row, cmd_done, extra_busy=t_mac)
                bank_done = start + latency + t_mac
                bank.rows[cmd.row] = bank_done
                if len(bank.rows) > 64:
                    horizon = start - ch.REORDER_WINDOW
                    bank.rows = {r: tt for r, tt in bank.rows.items()
                                 if tt >= horizon}
                if audit is not None:
                    audit.pim_grf(self, cmd.name, bank_idx, reads=reads,
                                  writes=(mop.dst,))
                self.units[bank_idx].execute(mop, cmd.row, self.gb)
                if bank_done > done:
                    done = bank_done
                if audit is not None:
                    audit.pim_bank_op(self, cmd.name, bank_idx, time, start,
                                      ready_before, bank.ready_at,
                                      row=cmd.row, row_state=row_state,
                                      completion=bank_done)
            self.counters.add("mac_bank_ops", len(banks))

        elif isinstance(cmd, RdMac):
            self._check_bank(cmd.bank, "RD_MAC")
            if cmd.count < 1:
                raise ValueError("RD_MAC count must be >= 1")
            self._check_grf(cmd.grf0, "RD_MAC")
            self._check_grf(cmd.grf0 + cmd.count - 1, "RD_MAC")
            bus_cmd = span_start = self._claim_bus(time, 1)
            cmd_done = bus_cmd + 1
            if audit is not None:
                audit.pim_bus(self, cmd.name, bus_cmd, 1)
            bank = ch._banks[cmd.bank]
            ready_before = bank.ready_at
            start = ready_before if ready_before > cmd_done else cmd_done
            bank.ready_at = start + ch.T_CCD
            words = cmd.payload_words(self.config.simd_width)
            nbursts = -(-words // 16)  # 16 words per 64 B burst
            data_cycles = nbursts * ch.burst_cycles
            # GRF read latency of one cycle before the readout burst.
            burst_start = ch._bus.reserve(start + 1, data_cycles)
            done = burst_start + data_cycles
            ch.read_cycles += data_cycles
            ch._account_pressure(time, burst_start)
            entries = range(cmd.grf0, cmd.grf0 + cmd.count)
            if audit is not None:
                audit.pim_bus(self, cmd.name, burst_start, data_cycles)
                audit.pim_bank_op(self, cmd.name, cmd.bank, time, start,
                                  ready_before, bank.ready_at)
                audit.pim_grf(self, cmd.name, cmd.bank, reads=tuple(entries))
            unit = self.units[cmd.bank]
            if cmd.reduce:
                payload = tuple(sum(unit.grf[e]) for e in entries)
            else:
                payload = tuple(v for e in entries for v in unit.grf[e])
            self.counters.add("rd_words", words)

        else:
            raise TypeError(f"unknown PIM command {cmd!r}")

        if done > ch.last_completion:
            ch.last_completion = done
        if self._trace is not None:
            self._trace.complete(
                self._trace_track, cmd.name, span_start,
                max(done - span_start, 1), {"cmd": cmd.name})
        return done, payload

    def reset(self) -> None:
        self.units = [PimUnit(self.config) for _ in range(self.nbanks)]
        self.gb = [0.0] * self.config.simd_width
        self.crf = [None] * self.config.crf_entries
        self.counters = Counter()
