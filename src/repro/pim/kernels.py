"""Offload kernel pairs: the same computation tile-side and memory-side.

Each :class:`Offload` carries two :class:`~repro.isa.program.Kernel`
implementations of one primitive (GEMV, dot product, AXPY):

* the **tile** side streams operands from Local DRAM through the NoC
  and computes on the tile array (the suite idiom: vload compression,
  fma chains, write-validate stores);
* the **pim** side drives the Cell's :class:`~repro.pim.PimEngine`
  from one control tile with AiM-style commands (``WR_GB`` broadcasts,
  bank-parallel ``MAC_ABK``, ``RD_MAC`` readout), paying NoC command
  delivery plus the channel's own bank/bus timing.

Both sides compute *functionally*: the tile kernels in plain Python
while yielding timed ops, the PIM kernels through the engine's per-bank
units -- so comparing ``args["out"]`` is a real end-to-end check of the
memory-side datapath.  Inputs are integer-valued floats (small ints
from an LCG), making every partial sum exact in binary floating point;
the two sides therefore match *bitwise* regardless of summation order.

These kernels are registered in :data:`OFFLOADS`, deliberately separate
from the Table-I ``SUITE`` (they exist to compare execution sides, not
to characterize the tile array).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..isa.program import Kernel, kernel
from ..kernels.base import Layout, num_tiles, range_split, sync, tile_id
from .commands import MacAbk, MicroOp, RdMac, WrBias, WrCrf, WrGb


def lcg_values(n: int, seed: int = 1) -> List[float]:
    """``n`` deterministic integer-valued floats in [-3, 3].

    Small integers keep every product and partial sum exactly
    representable, so tile-side and PIM-side results are bit-identical
    whatever order the adds happen in.
    """
    out = []
    x = (seed * 2654435761 + 1) & 0x7FFFFFFF
    for _ in range(n):
        x = (1103515245 * x + 12345) & 0x7FFFFFFF
        out.append(float(x % 7) - 3.0)
    return out


def _chunks(values: List[float], w: int) -> List[List[float]]:
    """Split into ``w``-wide chunks, zero-padding the tail."""
    out = []
    for c0 in range(0, len(values), w):
        chunk = values[c0:c0 + w]
        chunk.extend(0.0 for _ in range(w - len(chunk)))
        out.append(chunk)
    return out


# ---------------------------------------------------------------------------
# GEMV: y = A @ x, matrix rows interleaved across banks.

def gemv_args(m: int = 64, n: int = 64, seed: int = 0,
              nbanks: int = 16, simd_width: int = 16,
              grf_entries: int = 8) -> Dict[str, Any]:
    """A is row-major m x n; ``m`` must divide evenly over the banks.

    The PIM layout places matrix row ``i`` in bank ``i % nbanks`` as
    local row index ``li = i // nbanks``; chunk ``c`` of that row lives
    at DRAM row ``li * nchunks + c``.
    """
    if m % nbanks:
        raise ValueError(f"m={m} must be a multiple of nbanks={nbanks}")
    layout = Layout()
    return {
        "m": m, "n": n,
        "nbanks": nbanks, "w": simd_width, "grf": grf_entries,
        "a": layout.array("a", 4 * m * n),
        "x": layout.array("x", 4 * n),
        "y": layout.array("y", 4 * m),
        "a_data": lcg_values(m * n, seed=seed + 1),
        "x_data": lcg_values(n, seed=seed + 2),
        "out": [0.0] * m,
    }


def gemv_preload(engine: Any, args: Dict[str, Any]) -> None:
    """Host-side placement of A into the per-bank row stores."""
    m, n, w = args["m"], args["n"], args["w"]
    nbanks = engine.nbanks
    nchunks = (n + w - 1) // w
    a = args["a_data"]
    for i in range(m):
        bank, li = i % nbanks, i // nbanks
        row_chunks = _chunks(a[i * n:(i + 1) * n], w)
        engine.load_bank_rows(
            bank, {li * nchunks + c: row_chunks[c] for c in range(nchunks)})


@kernel("pim-gemv/tile", category="pim-offload")
def gemv_tile(t, args):
    """Tile-side GEMV: rows split across tiles, streamed from DRAM."""
    m, n = args["m"], args["n"]
    a, x, out = args["a_data"], args["x_data"], args["out"]
    lo, hi = range_split(m, num_tiles(t), tile_id(t))
    xregs: Dict[int, int] = {}
    # Stage x into the scratchpad once (every row reuses it).
    top = t.loop_top()
    for c in range(0, n, 4):
        vl = t.vload(t.local_dram(args["x"] + 4 * c))
        yield vl
        for i, reg in enumerate(vl.dsts):
            xregs[c + i] = reg
            yield t.store(t.spm(4 * (c + i)), srcs=[reg])
        yield t.branch_back(top, taken=(c + 4 < n))
    row_top = t.loop_top()
    for i in range(lo, hi):
        acc = t.reg()
        yield t.alu(acc)
        for c in range(0, n, 4):
            vl = t.vload(t.local_dram(args["a"] + 4 * (i * n + c)))
            yield vl
            for j, reg in enumerate(vl.dsts):
                yield t.fma(acc, [acc, reg, xregs[c + j]])
        out[i] = sum(a[i * n + j] * x[j] for j in range(n))
        yield t.store(t.local_dram(args["y"] + 4 * i), srcs=[acc])
        yield t.branch_back(row_top, taken=(i < hi - 1))
    yield from sync(t)


@kernel("pim-gemv/pim", category="pim-offload")
def gemv_pim(t, args):
    """Memory-side GEMV: bank-parallel MAC_ABK sweeps, one control tile.

    The PIM engine is a per-Cell resource, so a single control tile
    owns the command stream; the rest of the launch idles at the final
    barrier (PIM kernels measure the memory side, not the array).
    """
    if tile_id(t) == 0:
        m, n, w = args["m"], args["n"], args["w"]
        nbanks, ge = args["nbanks"], args["grf"]
        x, out = args["x_data"], args["out"]
        nchunks = (n + w - 1) // w
        rows_per_bank = m // nbanks
        xchunks = _chunks(list(x), w)
        # Program one MAC slot per in-flight local row.
        for k in range(min(ge, rows_per_bank)):
            yield t.pim_issue(WrCrf(k, MicroOp("mac", dst=k)))
        # Passes of up to grf_entries local rows per bank.
        for p0 in range(0, rows_per_bank, ge):
            nli = min(ge, rows_per_bank - p0)
            for k in range(nli):
                yield t.pim_issue(WrBias(k, 0.0))
            for c in range(nchunks):
                yield t.pim_issue(WrGb(xchunks[c]))
                for k in range(nli):
                    yield t.pim_issue(
                        MacAbk(row=(p0 + k) * nchunks + c, slot=k))
            yield t.pim_fence()
            for b in range(nbanks):
                vals = yield t.pim_read(RdMac(bank=b, grf0=0, count=nli))
                for k in range(nli):
                    i = (p0 + k) * nbanks + b
                    out[i] = vals[k]
                    yield t.store(t.local_dram(args["y"] + 4 * i))
    yield from sync(t)


# ---------------------------------------------------------------------------
# DOT: out = x . y, chunks interleaved across banks.

def dot_args(n: int = 1024, seed: int = 0, nbanks: int = 16,
             simd_width: int = 16, grf_entries: int = 8) -> Dict[str, Any]:
    """Chunk ``c`` of y lives in bank ``c % nbanks`` at row ``c // nbanks``."""
    layout = Layout()
    return {
        "n": n,
        "nbanks": nbanks, "w": simd_width, "grf": grf_entries,
        "x": layout.array("x", 4 * n),
        "y": layout.array("y", 4 * n),
        "r": layout.words("r", 1),
        "x_data": lcg_values(n, seed=seed + 1),
        "y_data": lcg_values(n, seed=seed + 2),
        "out": [0.0],
    }


def dot_preload(engine: Any, args: Dict[str, Any]) -> None:
    nbanks = engine.nbanks
    ychunks = _chunks(list(args["y_data"]), args["w"])
    for c, chunk in enumerate(ychunks):
        engine.load_bank_rows(c % nbanks, {c // nbanks: chunk})


@kernel("pim-dot/tile", category="pim-offload")
def dot_tile(t, args):
    """Tile-side dot product: per-tile partials merged with amoadd."""
    n = args["n"]
    x, y, out = args["x_data"], args["y_data"], args["out"]
    lo, hi = range_split(n // 4, num_tiles(t), tile_id(t))
    acc = t.reg()
    yield t.alu(acc)
    top = t.loop_top()
    for c in range(lo, hi):
        vx = t.vload(t.local_dram(args["x"] + 16 * c))
        vy = t.vload(t.local_dram(args["y"] + 16 * c))
        yield vx
        yield vy
        for rx, ry in zip(vx.dsts, vy.dsts):
            yield t.fma(acc, [acc, rx, ry])
        yield t.branch_back(top, taken=(c < hi - 1))
    # Integer-valued data: the float amoadd merge order cannot change
    # the sum, so the functional total is computed host-side exactly.
    if tile_id(t) == 0:
        out[0] = sum(a * b for a, b in zip(x, y))
    yield t.amoadd(t.local_dram(args["r"]))
    yield from sync(t)


@kernel("pim-dot/pim", category="pim-offload")
def dot_pim(t, args):
    """Memory-side dot product: masked MAC_ABK per chunk, one readout."""
    if tile_id(t) == 0:
        n, w, nbanks = args["n"], args["w"], args["nbanks"]
        x, out = args["x_data"], args["out"]
        xchunks = _chunks(list(x), w)
        yield t.pim_issue(WrCrf(0, MicroOp("mac", dst=0)))
        yield t.pim_issue(WrBias(0, 0.0))
        for c in range(len(xchunks)):
            yield t.pim_issue(WrGb(xchunks[c]))
            yield t.pim_issue(MacAbk(row=c // nbanks, slot=0,
                                     banks=(c % nbanks,)))
        yield t.pim_fence()
        total = 0.0
        nb = min(nbanks, len(xchunks))
        for b in range(nb):
            vals = yield t.pim_read(RdMac(bank=b, grf0=0, count=1))
            total += vals[0]
        out[0] = total
        yield t.store(t.local_dram(args["r"]))
    yield from sync(t)


# ---------------------------------------------------------------------------
# AXPY: y <- a * x + y, x/y row pairs interleaved across banks.

def axpy_args(n: int = 1024, a: float = 3.0, seed: int = 0,
              nbanks: int = 16, simd_width: int = 16,
              grf_entries: int = 8) -> Dict[str, Any]:
    """Chunk ``c`` maps to bank ``c % nbanks``; pair ``p = c // nbanks``
    stores x at DRAM row ``2p`` and y at ``2p + 1``."""
    layout = Layout()
    return {
        "n": n, "alpha": float(a),
        "nbanks": nbanks, "w": simd_width, "grf": grf_entries,
        "x": layout.array("x", 4 * n),
        "y": layout.array("y", 4 * n),
        "x_data": lcg_values(n, seed=seed + 1),
        "y_data": lcg_values(n, seed=seed + 2),
        "out": [0.0] * n,
    }


def axpy_preload(engine: Any, args: Dict[str, Any]) -> None:
    nbanks, w = engine.nbanks, args["w"]
    xchunks = _chunks(list(args["x_data"]), w)
    ychunks = _chunks(list(args["y_data"]), w)
    for c in range(len(xchunks)):
        p = c // nbanks
        engine.load_bank_rows(c % nbanks,
                              {2 * p: xchunks[c], 2 * p + 1: ychunks[c]})


@kernel("pim-axpy/tile", category="pim-offload")
def axpy_tile(t, args):
    """Tile-side AXPY: stream x and y, fma, store back."""
    n, alpha = args["n"], args["alpha"]
    x, y, out = args["x_data"], args["y_data"], args["out"]
    lo, hi = range_split(n // 4, num_tiles(t), tile_id(t))
    areg = t.reg()
    yield t.alu(areg)
    top = t.loop_top()
    for c in range(lo, hi):
        vx = t.vload(t.local_dram(args["x"] + 16 * c))
        vy = t.vload(t.local_dram(args["y"] + 16 * c))
        yield vx
        yield vy
        for j, (rx, ry) in enumerate(zip(vx.dsts, vy.dsts)):
            i = 4 * c + j
            out[i] = alpha * x[i] + y[i]
            yield t.fma(ry, [ry, areg, rx])
            yield t.store(t.local_dram(args["y"] + 4 * i), srcs=[ry])
        yield t.branch_back(top, taken=(c < hi - 1))
    yield from sync(t)


@kernel("pim-axpy/pim", category="pim-offload")
def axpy_pim(t, args):
    """Memory-side AXPY: mov y into GRF, mac a*x onto it, stream back.

    Chunks are processed in rounds of ``nbanks * grf_entries`` so each
    bank's accumulators are read out (``reduce=False``) before reuse.
    """
    if tile_id(t) == 0:
        n, w, alpha = args["n"], args["w"], args["alpha"]
        nbanks, ge = args["nbanks"], args["grf"]
        out = args["out"]
        xchunks = _chunks(list(args["x_data"]), w)
        total_chunks = len(xchunks)
        yield t.pim_issue(WrGb([alpha] * w))
        for k in range(ge):
            yield t.pim_issue(WrCrf(2 * k, MicroOp("mov", dst=k)))
            yield t.pim_issue(WrCrf(2 * k + 1, MicroOp("mac", dst=k)))
        per_round = nbanks * ge
        for r0 in range(0, total_chunks, per_round):
            round_chunks = list(range(r0, min(r0 + per_round, total_chunks)))
            for c in round_chunks:
                b, p = c % nbanks, c // nbanks
                k = p % ge
                yield t.pim_issue(
                    MacAbk(row=2 * p + 1, slot=2 * k, banks=(b,)))
                yield t.pim_issue(
                    MacAbk(row=2 * p, slot=2 * k + 1, banks=(b,)))
            yield t.pim_fence()
            # Read each touched bank's accumulator block back.
            by_bank: Dict[int, List[int]] = {}
            for c in round_chunks:
                by_bank.setdefault(c % nbanks, []).append(c)
            for b in sorted(by_bank):
                cs = by_bank[b]
                count = len(cs)
                vals = yield t.pim_read(RdMac(bank=b, grf0=0, count=count,
                                              reduce=False))
                for idx, c in enumerate(cs):
                    chunk = vals[idx * w:(idx + 1) * w]
                    for j, v in enumerate(chunk):
                        i = c * w + j
                        if i < n:
                            out[i] = v
                            yield t.store(t.local_dram(args["y"] + 4 * i))
    yield from sync(t)


# ---------------------------------------------------------------------------
# Registry.

@dataclass(frozen=True)
class Offload:
    """One offloadable primitive: tile and PIM implementations plus the
    shared workload factory and the host-side bank preload."""

    name: str
    tile: Kernel
    pim: Kernel
    make_args: Callable[..., Dict[str, Any]]
    preload: Callable[[Any, Dict[str, Any]], None]
    #: ``make_args`` size-knob overrides per harness size name.
    sizes: Dict[str, Dict[str, int]]


OFFLOADS: Dict[str, Offload] = {
    "GEMV": Offload("GEMV", gemv_tile, gemv_pim, gemv_args, gemv_preload,
                    sizes={"tiny": {"m": 32, "n": 32},
                           "small": {"m": 64, "n": 64},
                           "full": {"m": 128, "n": 256}}),
    "DOT": Offload("DOT", dot_tile, dot_pim, dot_args, dot_preload,
                   sizes={"tiny": {"n": 256},
                          "small": {"n": 1024},
                          "full": {"n": 4096}}),
    "AXPY": Offload("AXPY", axpy_tile, axpy_pim, axpy_args, axpy_preload,
                    sizes={"tiny": {"n": 256},
                           "small": {"n": 1024},
                           "full": {"n": 4096}}),
}
