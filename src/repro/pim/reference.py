"""Naive reference model of one pseudo-channel with PIM units.

Used by ``tests/test_pim_differential.py``: random interleavings of
ordinary HBM accesses and PIM commands are replayed against this
explicit-state model (plain dicts, linear scans, no memoization, no
pruning) and must agree with the production
:class:`~repro.mem.hbm.PseudoChannel` + :class:`~repro.pim.engine.PimEngine`
pair on completion times, bank-ready monotonicity, bus serialization
and GRF contents.

The production model prunes per-bank row timestamps past 64 entries;
this reference keeps them all, so differential drivers should stay
below that row count per bank (the tests do).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..arch.params import HBMTiming
from .commands import MacAbk, RdMac, WrBias, WrCrf, WrGb, WrSbk
from .config import PimConfig


class RefPimBank:
    """Reference pseudo-channel + PIM state, computed the slow clear way."""

    T_CCD = 4
    WINDOW = 150.0

    def __init__(self, timing: Optional[HBMTiming] = None,
                 config: Optional[PimConfig] = None,
                 bandwidth_scale: float = 1.0) -> None:
        self.timing = timing or HBMTiming()
        self.config = config or PimConfig()
        self.burst_cycles = max(1, round(self.timing.t_bl / bandwidth_scale))
        n = self.timing.banks
        w = self.config.simd_width
        self.ready: List[float] = [0.0] * n
        self.opened: List[bool] = [False] * n
        self.rows: List[Dict[int, float]] = [dict() for _ in range(n)]
        self.bus_free: float = 0.0
        self.gb: List[float] = [0.0] * w
        self.crf: List[Optional[Any]] = [None] * self.config.crf_entries
        self.grf: List[List[List[float]]] = [
            [[0.0] * w for _ in range(self.config.grf_entries)]
            for _ in range(n)]
        self.store: List[Dict[int, List[float]]] = [dict() for _ in range(n)]

    # -- shared primitives ---------------------------------------------------

    def _bus(self, earliest: float, cycles: int) -> float:
        start = earliest if earliest > self.bus_free else self.bus_free
        self.bus_free = start + cycles
        return start

    def _row_machine(self, b: int, row: int, time: float,
                     extra: float = 0.0) -> Tuple[float, float, str]:
        t = self.timing
        start = max(self.ready[b], time)
        last = self.rows[b].get(row)
        if last is not None and start - last <= self.WINDOW:
            latency, busy, state = t.row_hit_latency, self.T_CCD, "hit"
        elif not self.opened[b]:
            latency = t.t_rcd + t.t_cl
            busy, state = t.t_rcd + self.T_CCD, "open"
        else:
            latency = t.row_miss_latency
            busy, state = t.t_rp + t.t_rcd + self.T_CCD, "conflict"
        self.ready[b] = start + busy + extra
        self.opened[b] = True
        return start, latency, state

    def _chunk(self, values, w: Optional[int] = None) -> List[float]:
        w = w if w is not None else self.config.simd_width
        out = [float(v) for v in values][:w]
        out.extend(0.0 for _ in range(w - len(out)))
        return out

    # -- ordinary HBM traffic ------------------------------------------------

    def access(self, addr: int, is_write: bool, time: float) -> float:
        t = self.timing
        row_unit = addr // t.row_bytes
        b, row = row_unit % t.banks, row_unit // t.banks
        start, latency, _state = self._row_machine(b, row, time)
        burst_start = self._bus(start + latency, self.burst_cycles)
        done = burst_start + self.burst_cycles
        self.rows[b][row] = done
        return done

    # -- PIM commands --------------------------------------------------------

    def execute(self, cmd: Any, time: float) -> Tuple[float, Any]:
        w = self.config.simd_width
        payload: Any = None
        if isinstance(cmd, WrGb):
            bus = self._bus(time, self.burst_cycles)
            done = bus + self.burst_cycles
            self.gb = self._chunk(cmd.values)
        elif isinstance(cmd, WrCrf):
            bus = self._bus(time, 1)
            done = bus + 1
            self.crf[cmd.slot] = cmd.mop
        elif isinstance(cmd, WrBias):
            bus = self._bus(time, 1)
            done = bus + 1
            for b in range(self.timing.banks):
                start = max(self.ready[b], bus + 1)
                self.ready[b] = start + 1
                self.grf[b][cmd.grf] = [cmd.value] * w
                done = max(done, start + 1)
        elif isinstance(cmd, WrSbk):
            start, latency, _state = self._row_machine(cmd.bank, cmd.row,
                                                       time)
            bus = self._bus(start + latency, self.burst_cycles)
            done = bus + self.burst_cycles
            self.rows[cmd.bank][cmd.row] = done
            self.store[cmd.bank][cmd.row] = self._chunk(cmd.values)
        elif isinstance(cmd, MacAbk):
            bus = self._bus(time, 1)
            cmd_done = bus + 1
            done = cmd_done
            mop = self.crf[cmd.slot]
            banks = cmd.banks if cmd.banks is not None \
                else tuple(range(self.timing.banks))
            for b in banks:
                start, latency, _state = self._row_machine(
                    b, cmd.row, cmd_done, extra=self.config.t_mac)
                bank_done = start + latency + self.config.t_mac
                self.rows[b][cmd.row] = bank_done
                done = max(done, bank_done)
                row_data = self.store[b].get(cmd.row) or [0.0] * w
                grf = self.grf[b]
                if mop.kind == "mac":
                    grf[mop.dst] = [grf[mop.dst][i] + row_data[i] * self.gb[i]
                                    for i in range(w)]
                elif mop.kind == "add":
                    grf[mop.dst] = [grf[mop.src][i] + row_data[i]
                                    for i in range(w)]
                elif mop.kind == "mul":
                    grf[mop.dst] = [grf[mop.src][i] * row_data[i]
                                    for i in range(w)]
                elif mop.kind == "mov":
                    grf[mop.dst] = list(row_data)
                else:  # fill
                    grf[mop.dst] = [mop.imm] * w
        elif isinstance(cmd, RdMac):
            bus = self._bus(time, 1)
            start = max(self.ready[cmd.bank], bus + 1)
            self.ready[cmd.bank] = start + self.T_CCD
            words = cmd.payload_words(w)
            data_cycles = -(-words // 16) * self.burst_cycles
            burst = self._bus(start + 1, data_cycles)
            done = burst + data_cycles
            grf = self.grf[cmd.bank]
            entries = range(cmd.grf0, cmd.grf0 + cmd.count)
            if cmd.reduce:
                payload = tuple(sum(grf[e]) for e in entries)
            else:
                payload = tuple(v for e in entries for v in grf[e])
        else:
            raise TypeError(f"unknown PIM command {cmd!r}")
        return done, payload
