"""Functional state of one per-bank PIM execution unit.

Pure functional model: GRF accumulators, the bank-local row store the
micro-ops read, and a written-bitmap the audit layer uses for the
MAC-accumulator read-before-write invariant.  All timing lives in
:mod:`repro.pim.engine`.
"""

from __future__ import annotations

from typing import Dict, List

from .commands import MicroOp
from .config import PimConfig


class PimUnit:
    """One bank's MAC/ADD/MUL unit plus its GRF register file."""

    __slots__ = ("config", "grf", "written", "store")

    def __init__(self, config: PimConfig) -> None:
        self.config = config
        w = config.simd_width
        self.grf: List[List[float]] = [
            [0.0] * w for _ in range(config.grf_entries)]
        self.written: List[bool] = [False] * config.grf_entries
        #: DRAM row id -> row chunk (``simd_width`` floats).
        self.store: Dict[int, List[float]] = {}

    def row_chunk(self, row: int) -> List[float]:
        """The chunk a micro-op reads; untouched rows read as zeros."""
        chunk = self.store.get(row)
        if chunk is None:
            return [0.0] * self.config.simd_width
        return chunk

    def set_row(self, row: int, values) -> None:
        w = self.config.simd_width
        chunk = [float(v) for v in values][:w]
        chunk.extend(0.0 for _ in range(w - len(chunk)))
        self.store[row] = chunk

    def set_grf(self, idx: int, values) -> None:
        w = self.config.simd_width
        chunk = [float(v) for v in values][:w]
        chunk.extend(0.0 for _ in range(w - len(chunk)))
        self.grf[idx] = chunk
        self.written[idx] = True

    def execute(self, mop: MicroOp, row: int, gb: List[float]) -> None:
        """Apply one micro-op to this bank (bounds pre-checked upstream)."""
        row_data = self.row_chunk(row)
        grf = self.grf
        dst = mop.dst
        kind = mop.kind
        if kind == "mac":
            acc = grf[dst]
            for i, rv in enumerate(row_data):
                acc[i] += rv * gb[i]
        elif kind == "add":
            src = grf[mop.src]
            grf[dst] = [src[i] + row_data[i] for i in range(len(row_data))]
        elif kind == "mul":
            src = grf[mop.src]
            grf[dst] = [src[i] * row_data[i] for i in range(len(row_data))]
        elif kind == "mov":
            grf[dst] = list(row_data)
        else:  # fill
            grf[dst] = [mop.imm] * self.config.simd_width
        self.written[dst] = True
