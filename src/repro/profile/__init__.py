"""Performance debugging tools (paper Section III-D).

Bottleneck diagnosis from run counters, and spatial heatmaps of tile,
bank and router activity.
"""

from .blame import Diagnosis, diagnose
from .heatmap import (
    bank_access_map,
    cell_report,
    full_report,
    render_grid,
    router_load_map,
    tile_finish_map,
    tile_utilization_map,
)

__all__ = [
    "Diagnosis",
    "diagnose",
    "render_grid",
    "cell_report",
    "full_report",
    "tile_utilization_map",
    "tile_finish_map",
    "bank_access_map",
    "router_load_map",
]
