"""Performance debugging tools (paper Section III-D).

Bottleneck diagnosis from run counters, spatial heatmaps of tile, bank
and router activity, host-throughput measurement of the simulator
itself (``speed``), and sweep run-journal summaries (``journal``).
"""

from .blame import Diagnosis, diagnose
from .journal import summarize as summarize_journal
from .speed import measure_kernel, measure_suite, profile_top
from .heatmap import (
    bank_access_map,
    cell_report,
    full_report,
    render_grid,
    router_load_map,
    tile_finish_map,
    tile_utilization_map,
)

__all__ = [
    "Diagnosis",
    "diagnose",
    "measure_kernel",
    "measure_suite",
    "profile_top",
    "summarize_journal",
    "render_grid",
    "cell_report",
    "full_report",
    "tile_utilization_map",
    "tile_finish_map",
    "bank_access_map",
    "router_load_map",
]
