"""Bottleneck diagnosis: the paper's performance-debugging methodology.

Section III-D highlights HB's "extensive set of custom performance
debugging and visualization tools, which analyze where and why the
processors spend most of the time".  Section V-C then walks each kernel:
memory-bound kernels should unroll for MLP or split into tile groups,
barrier-heavy kernels need load balancing, fdiv-heavy kernels want faster
iterative units, and so on.

:func:`diagnose` encodes that decision procedure over a finished run's
counters and produces the same kind of reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core import stall as st
from ..runtime.result import RunResult


@dataclass
class Diagnosis:
    """One run's bottleneck analysis."""

    verdict: str  # headline classification
    utilization: float
    hbm_pressure: float
    findings: List[str] = field(default_factory=list)
    suggestions: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"verdict: {self.verdict}",
                 f"core utilization: {self.utilization:.1%}, "
                 f"HBM pressure: {self.hbm_pressure:.1%}"]
        if self.findings:
            lines.append("findings:")
            lines.extend(f"  - {f}" for f in self.findings)
        if self.suggestions:
            lines.append("suggestions:")
            lines.extend(f"  - {s}" for s in self.suggestions)
        return "\n".join(lines)


def _get(result: RunResult, cat: str) -> float:
    return result.core_breakdown.get(cat, 0.0)


def diagnose(result: RunResult) -> Diagnosis:
    """Classify a run and emit the paper's per-bottleneck advice."""
    bd = result.core_breakdown
    util = result.core_utilization
    hbm_active = result.hbm["read"] + result.hbm["write"] + result.hbm["busy"]
    findings: List[str] = []
    suggestions: List[str] = []

    mem_stall = (_get(result, st.STALL_DEPEND_LOAD)
                 + _get(result, st.STALL_AMO)
                 + _get(result, st.STALL_FENCE)
                 + _get(result, st.STALL_CREDIT))
    sync_stall = _get(result, st.STALL_BARRIER) + bd.get("other", 0.0)
    fp_stall = _get(result, st.STALL_FDIV) + _get(result, st.STALL_BYPASS)
    ctl_stall = _get(result, st.STALL_BRANCH) + _get(result, st.STALL_ICACHE)

    if hbm_active > 0.9 and mem_stall > 0.1:
        # A saturated channel trumps the core-side comparison: cores may
        # still be issuing, but the machine is bandwidth-limited.
        verdict = "memory-bound (HBM2 saturated)"
        findings.append(
            f"the HBM2 channel is {hbm_active:.0%} occupied while cores "
            f"spend {mem_stall:.0%} of cycles on memory")
        suggestions.append(
            "performance cannot improve without more HBM bandwidth "
            "(the paper's 'usually a good sign')")
    elif mem_stall >= max(sync_stall, fp_stall, ctl_stall, util):
        if hbm_active > 0.85:
            verdict = "memory-bound (HBM2 saturated)"
            findings.append(
                f"cores wait on memory {mem_stall:.0%} of cycles with the "
                f"HBM2 channel {hbm_active:.0%} occupied")
            suggestions.append(
                "performance cannot improve without more HBM bandwidth "
                "(the paper's 'usually a good sign')")
        else:
            verdict = "memory-latency-bound (HBM2 underutilized)"
            findings.append(
                f"cores wait on memory {mem_stall:.0%} of cycles but the "
                f"HBM2 channel is only {hbm_active:.0%} occupied")
            suggestions.append(
                "generate more outstanding requests per core: unroll the "
                "loop further / batch independent loads before consuming")
            suggestions.append(
                "exploit task-level parallelism: divide the Cell into "
                "smaller tile groups running independent tasks (Fig 12)")
        if _get(result, st.STALL_CREDIT) > 0.05:
            findings.append("the 63-entry scoreboard is a limiter")
    elif sync_stall >= max(fp_stall, ctl_stall, util):
        verdict = "synchronization-bound"
        findings.append(
            f"barrier/imbalance time is {sync_stall:.0%} of cycles")
        suggestions.append(
            "high barrier stall usually indicates tail latency: improve "
            "load balancing or split work more finely")
    elif fp_stall >= max(ctl_stall, util):
        verdict = "FP-pipeline-bound"
        if _get(result, st.STALL_FDIV) > _get(result, st.STALL_BYPASS):
            findings.append("the iterative FP divide/sqrt unit dominates")
            suggestions.append(
                "a faster iterative divider would help (the paper's note "
                "on BH and BS back-to-back rsqrt)")
        else:
            findings.append("long FP dependency chains stall the bypass")
            suggestions.append(
                "interleave independent accumulators to cover fma latency")
    elif ctl_stall >= util:
        verdict = "frontend-bound"
        if _get(result, st.STALL_BRANCH) > _get(result, st.STALL_ICACHE):
            findings.append("data-dependent branches defeat the static "
                            "BTFN predictor")
            suggestions.append(
                "branchless min/max (RISC-V Zbb-style extensions) would "
                "remove the flushes (the paper's SW remedy)")
        else:
            findings.append("the working code footprint misses the icache")
            suggestions.append("shrink or split the kernel inner loops")
    else:
        verdict = "compute-bound"
        findings.append(f"cores issue instructions {util:.0%} of cycles")
        suggestions.append(
            "easy to accelerate with more tiles: maximize compute density "
            "(the paper's prime directive)")

    return Diagnosis(
        verdict=verdict,
        utilization=util,
        hbm_pressure=hbm_active,
        findings=findings,
        suggestions=suggestions,
    )
