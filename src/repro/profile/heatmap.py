"""Spatial visualization: per-tile and per-bank activity over the Cell.

The visual counterpart of the paper's profiling tools: where in the
array the time goes.  Values render as an ASCII heatmap in the Cell's
physical layout (cache strips above and below the tile rows), which
makes imbalance, partition camping and hot banks visible at a glance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..arch.geometry import Coord
from ..runtime.machine import Machine

_SHADES = " .:-=+*#%@"


def _shade(value: float, peak: float) -> str:
    if peak <= 0:
        return _SHADES[0]
    idx = int(min(value, peak) / peak * (len(_SHADES) - 1))
    return _SHADES[idx]


def render_grid(values: Dict[Coord, float], cols: int, rows: int,
                title: str = "", peak: Optional[float] = None) -> str:
    """ASCII heatmap of ``values`` on a ``cols x rows`` grid."""
    peak = peak if peak is not None else max(values.values(), default=0.0)
    lines: List[str] = []
    if title:
        lines.append(f"{title} (peak={peak:.3g})")
    for y in range(rows):
        row = "".join(_shade(values.get((x, y), 0.0), peak)
                      for x in range(cols))
        lines.append(f"{y:2d} |{row}|")
    lines.append("    " + "".join(str(x % 10) for x in range(cols)))
    return "\n".join(lines)


def tile_utilization_map(machine: Machine) -> Dict[Coord, float]:
    """Per-tile fraction of cycles spent issuing instructions."""
    out: Dict[Coord, float] = {}
    for node, core in machine.cores.items():
        total = core.total_cycles()
        if total <= 0:
            continue
        busy = core.counters.get("int") + core.counters.get("fp")
        out[node] = busy / total
    return out


def tile_finish_map(machine: Machine) -> Dict[Coord, float]:
    """Per-tile finish time: the load-imbalance / tail-latency view."""
    return {node: core.finish_time for node, core in machine.cores.items()
            if core.process is not None}


def bank_access_map(machine: Machine) -> Dict[Coord, float]:
    """Per-cache-bank access counts: partition camping shows up here."""
    out: Dict[Coord, float] = {}
    chip = machine.config.chip
    for (cell_xy, bank_idx), bank in machine.memsys.banks.items():
        local = chip.cell.bank_coord(bank_idx)
        node = chip.to_global(cell_xy, local)
        out[node] = bank.counters.get("accesses")
    return out


def router_load_map(machine: Machine) -> Dict[Coord, float]:
    """Busy cycles of each node's outgoing request links."""
    out: Dict[Coord, float] = {}
    for link in machine.memsys.req_net.topology.links():
        out[link.src] = out.get(link.src, 0.0) + link.busy_cycles
    return out


def cell_report(machine: Machine, metric: str = "utilization") -> str:
    """Render one heatmap over the whole chip grid."""
    makers: Dict[str, Callable[[Machine], Dict[Coord, float]]] = {
        "utilization": tile_utilization_map,
        "finish": tile_finish_map,
        "bank_accesses": bank_access_map,
        "router_load": router_load_map,
    }
    try:
        values = makers[metric](machine)
    except KeyError as exc:
        raise ValueError(
            f"unknown metric {metric!r}; pick from {sorted(makers)}"
        ) from exc
    chip = machine.config.chip
    return render_grid(values, chip.grid_cols, chip.grid_rows, title=metric)


def full_report(machine: Machine) -> str:
    """All four spatial views, the paper's 'where and why' package."""
    parts = [cell_report(machine, m)
             for m in ("utilization", "finish", "bank_accesses",
                       "router_load")]
    return "\n\n".join(parts)
