"""Post-hoc summary of a sweep's (or serve daemon's) JSONL run journal.

``repro journal <path>`` renders what a finished (or killed) sweep did:
outcome counts, cache-hit rate, wall-time totals, per-experiment
aggregates and the slowest computed jobs.  A journal written by the
``repro serve`` scheduler daemon additionally gets a server section:
per-client quota usage (submitted / in-flight denials), the
dedup-hit ratio across clients, and any restart recoveries.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..orch.journal import iter_jobs, read_journal


def summarize(path: str) -> Dict[str, Any]:
    """Structured summary of one journal file."""
    records = read_journal(path)
    header = next((r for r in records if r.get("event") == "header"), {})
    footer = next((r for r in records if r.get("event") == "footer"), {})
    jobs = list(iter_jobs(iter(records)))

    outcomes: Dict[str, int] = {}
    experiments: Dict[str, Dict[str, Any]] = {}
    computed_wall = 0.0
    retried = 0
    for job in jobs:
        outcome = job.get("outcome", "unknown")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        exp = experiments.setdefault(
            job.get("experiment", "?"),
            {"jobs": 0, "cached": 0, "failed": 0, "wall_s": 0.0})
        exp["jobs"] += 1
        exp["wall_s"] += job.get("wall_s") or 0.0
        if outcome == "cached":
            exp["cached"] += 1
        elif outcome in ("failed", "timeout", "cancelled"):
            exp["failed"] += 1
        if outcome == "ok":
            computed_wall += job.get("wall_s") or 0.0
        if (job.get("attempts") or 0) > 1:
            retried += 1

    done = outcomes.get("ok", 0) + outcomes.get("cached", 0)
    total = len(jobs)
    slowest = sorted(
        (j for j in jobs if j.get("outcome") == "ok"),
        key=lambda j: j.get("wall_s") or 0.0, reverse=True)[:5]
    return {
        "header": header,
        "footer": footer,
        "total": total,
        "outcomes": outcomes,
        "cache_hit_rate": (outcomes.get("cached", 0) / total) if total else 0.0,
        "success_rate": (done / total) if total else 0.0,
        "computed_wall_s": computed_wall,
        "retried": retried,
        "experiments": experiments,
        "slowest": slowest,
        "server": _summarize_server(records),
    }


def _summarize_server(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The serve-daemon view of a journal (empty dict for plain sweeps).

    Aggregates the daemon's intake events: per-client submissions and
    quota denials, the cross-client dedup-hit ratio, restart
    recoveries.  Keyed by client *name* (ids restart at c1 after every
    daemon restart; names are the stable identity).
    """
    clients: Dict[str, Dict[str, Any]] = {}
    dedup_hits = quota_denials = recoveries = submitted = 0
    interrupted = 0
    seen_serve_event = False

    def client_row(cid: str) -> Dict[str, Any]:
        return clients.setdefault(cid, {
            "priority": 0, "submitted": 0, "queued": 0, "cached": 0,
            "deduped": 0, "denied": 0})

    names: Dict[str, str] = {}
    for rec in records:
        event = rec.get("event")
        if event == "client":
            seen_serve_event = True
            names[rec.get("client")] = rec.get("name") or rec.get("client")
            row = client_row(names[rec.get("client")])
            row["priority"] = rec.get("priority", 0)
        elif event == "submit":
            seen_serve_event = True
            row = client_row(names.get(rec.get("client"),
                                       rec.get("client")))
            row["submitted"] += rec.get("jobs") or 0
            row["queued"] += rec.get("queued") or 0
            row["cached"] += rec.get("cached") or 0
            row["deduped"] += rec.get("deduped") or 0
            submitted += rec.get("jobs") or 0
        elif event == "dedup":
            seen_serve_event = True
            dedup_hits += 1
        elif event == "quota":
            seen_serve_event = True
            row = client_row(names.get(rec.get("client"),
                                       rec.get("client")))
            row["denied"] += rec.get("denied") or 0
            quota_denials += rec.get("denied") or 0
        elif event == "recover":
            seen_serve_event = True
            recoveries += 1
            interrupted += rec.get("interrupted") or 0
    if not seen_serve_event:
        return {}
    return {
        "clients": clients,
        "submitted": submitted,
        "dedup_hits": dedup_hits,
        "dedup_hit_ratio": (dedup_hits / submitted) if submitted else 0.0,
        "quota_denials": quota_denials,
        "recoveries": recoveries,
        "interrupted": interrupted,
    }


def render(summary: Dict[str, Any]) -> str:
    """Human-readable journal report."""
    from ..perf.report import format_table

    lines: List[str] = []
    header = summary["header"]
    if header:
        lines.append(
            f"sweep of {header.get('jobs', '?')} job(s), repro "
            f"{header.get('version', '?')}, fingerprint "
            f"{header.get('fingerprint', '?')}, started "
            f"{header.get('started', '?')}")
    counts = ", ".join(f"{k}={v}"
                       for k, v in sorted(summary["outcomes"].items()))
    lines.append(
        f"jobs: {summary['total']} ({counts}); cache hits "
        f"{summary['cache_hit_rate']:.0%}; retried {summary['retried']}; "
        f"computed wall {summary['computed_wall_s']:.2f}s")
    if summary["experiments"]:
        rows = [[name, e["jobs"], e["cached"], e["failed"],
                 round(e["wall_s"], 3)]
                for name, e in summary["experiments"].items()]
        lines.append(format_table(
            ["experiment", "jobs", "cached", "failed", "wall s"], rows))
    if summary["slowest"]:
        rows = [[j.get("experiment"), j.get("key"),
                 round(j.get("wall_s") or 0.0, 3), j.get("worker"),
                 j.get("cycles")]
                for j in summary["slowest"]]
        lines.append("slowest computed jobs:")
        lines.append(format_table(
            ["experiment", "key", "wall s", "worker", "cycles"], rows))
    server = summary.get("server") or {}
    if server:
        lines.append(
            f"server: {server['submitted']} job(s) submitted across "
            f"{len(server['clients'])} client(s); dedup hits "
            f"{server['dedup_hits']} ({server['dedup_hit_ratio']:.0%} of "
            f"submissions); quota denials {server['quota_denials']}; "
            f"restarts recovered {server['recoveries']} "
            f"({server['interrupted']} interrupted job(s))")
        if server["clients"]:
            rows = [[name, c["priority"], c["submitted"], c["queued"],
                     c["cached"], c["deduped"], c["denied"]]
                    for name, c in sorted(server["clients"].items())]
            lines.append(format_table(
                ["client", "prio", "submitted", "queued", "cached",
                 "deduped", "denied"], rows))
    footer = summary["footer"]
    if footer:
        lines.append(f"finished {footer.get('finished', '?')} in "
                     f"{footer.get('wall_s', '?')}s")
    return "\n".join(lines)


def main(path: str) -> int:
    print(render(summarize(path)))
    return 0
