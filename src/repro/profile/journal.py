"""Post-hoc summary of a sweep's JSONL run journal.

``repro journal <path>`` renders what a finished (or killed) sweep did:
outcome counts, cache-hit rate, wall-time totals, per-experiment
aggregates and the slowest computed jobs.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..orch.journal import iter_jobs, read_journal


def summarize(path: str) -> Dict[str, Any]:
    """Structured summary of one journal file."""
    records = read_journal(path)
    header = next((r for r in records if r.get("event") == "header"), {})
    footer = next((r for r in records if r.get("event") == "footer"), {})
    jobs = list(iter_jobs(iter(records)))

    outcomes: Dict[str, int] = {}
    experiments: Dict[str, Dict[str, Any]] = {}
    computed_wall = 0.0
    retried = 0
    for job in jobs:
        outcome = job.get("outcome", "unknown")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        exp = experiments.setdefault(
            job.get("experiment", "?"),
            {"jobs": 0, "cached": 0, "failed": 0, "wall_s": 0.0})
        exp["jobs"] += 1
        exp["wall_s"] += job.get("wall_s") or 0.0
        if outcome == "cached":
            exp["cached"] += 1
        elif outcome in ("failed", "timeout", "cancelled"):
            exp["failed"] += 1
        if outcome == "ok":
            computed_wall += job.get("wall_s") or 0.0
        if (job.get("attempts") or 0) > 1:
            retried += 1

    done = outcomes.get("ok", 0) + outcomes.get("cached", 0)
    total = len(jobs)
    slowest = sorted(
        (j for j in jobs if j.get("outcome") == "ok"),
        key=lambda j: j.get("wall_s") or 0.0, reverse=True)[:5]
    return {
        "header": header,
        "footer": footer,
        "total": total,
        "outcomes": outcomes,
        "cache_hit_rate": (outcomes.get("cached", 0) / total) if total else 0.0,
        "success_rate": (done / total) if total else 0.0,
        "computed_wall_s": computed_wall,
        "retried": retried,
        "experiments": experiments,
        "slowest": slowest,
    }


def render(summary: Dict[str, Any]) -> str:
    """Human-readable journal report."""
    from ..perf.report import format_table

    lines: List[str] = []
    header = summary["header"]
    if header:
        lines.append(
            f"sweep of {header.get('jobs', '?')} job(s), repro "
            f"{header.get('version', '?')}, fingerprint "
            f"{header.get('fingerprint', '?')}, started "
            f"{header.get('started', '?')}")
    counts = ", ".join(f"{k}={v}"
                       for k, v in sorted(summary["outcomes"].items()))
    lines.append(
        f"jobs: {summary['total']} ({counts}); cache hits "
        f"{summary['cache_hit_rate']:.0%}; retried {summary['retried']}; "
        f"computed wall {summary['computed_wall_s']:.2f}s")
    if summary["experiments"]:
        rows = [[name, e["jobs"], e["cached"], e["failed"],
                 round(e["wall_s"], 3)]
                for name, e in summary["experiments"].items()]
        lines.append(format_table(
            ["experiment", "jobs", "cached", "failed", "wall s"], rows))
    if summary["slowest"]:
        rows = [[j.get("experiment"), j.get("key"),
                 round(j.get("wall_s") or 0.0, 3), j.get("worker"),
                 j.get("cycles")]
                for j in summary["slowest"]]
        lines.append("slowest computed jobs:")
        lines.append(format_table(
            ["experiment", "key", "wall s", "worker", "cycles"], rows))
    footer = summary["footer"]
    if footer:
        lines.append(f"finished {footer.get('finished', '?')} in "
                     f"{footer.get('wall_s', '?')}s")
    return "\n".join(lines)


def main(path: str) -> int:
    print(render(summarize(path)))
    return 0
