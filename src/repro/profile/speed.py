"""Host-throughput measurement: how fast the simulator itself runs.

The model's usefulness scales with how many simulated events the host
can push per second, so this module gives the engine a first-class
benchmark rig:

* :func:`measure_kernel` / :func:`measure_suite` -- wall-clock and
  events/sec for suite kernels (the numbers ``benchmarks/bench_engine.py``
  writes to ``BENCH_engine.json``);
* :func:`profile_top` -- a cProfile wrapper returning the top-N hot
  functions of any callable (behind the CLI's ``--profile`` flag).

Wall-clock numbers use ``min`` over repeats: the minimum is the least
noisy estimator of the true cost on a busy host.  Simulated results are
deterministic, so repeats never disagree on cycles or event counts.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import time
from typing import Any, Dict, Iterable, List, Optional

from ..experiments.common import suite_args
from ..kernels import registry
from ..session import run as run_kernel


def measure_kernel(config: Any, name: str, size: str = "small",
                   repeats: int = 3, **run_kwargs: Any) -> Dict[str, Any]:
    """Time one suite kernel; returns a JSON-ready sample.

    The sample reports the best wall-clock over ``repeats`` runs, the
    simulator's executed-event count, and the derived events/sec and
    simulated-cycles/sec throughput.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    bench = registry.SUITE[name]
    best_wall = float("inf")
    events = 0
    result = None
    for _ in range(repeats):
        args = suite_args(name, size)  # rebuilt per run: kernels mutate args
        t0 = time.perf_counter()
        result = run_kernel(config, bench.kernel, args,
                            keep_machine=True, **run_kwargs)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
        events = result.machine.sim.events_executed
    return {
        "kernel": name,
        "size": size,
        "config": result.config_name,
        "repeats": repeats,
        "wall_seconds": best_wall,
        "events": events,
        "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
        "cycles": result.cycles,
        "sim_cycles_per_sec": result.cycles / best_wall if best_wall > 0 else 0.0,
        "instructions": result.instructions,
        "num_tiles": result.num_tiles,
    }


def measure_suite(config: Any, size: str = "small",
                  kernels: Optional[Iterable[str]] = None,
                  repeats: int = 3, **run_kwargs: Any) -> Dict[str, Dict[str, Any]]:
    """Measure several suite kernels; returns ``{name: sample}``."""
    names: List[str] = list(kernels) if kernels is not None else list(registry.SUITE)
    return {
        name: measure_kernel(config, name, size=size, repeats=repeats,
                             **run_kwargs)
        for name in names
    }


def measure_cells(config: Any, name: str, size: str = "tiny",
                  workers: int = 2, repeats: int = 1,
                  window: Optional[float] = None,
                  words: int = 64) -> Dict[str, Any]:
    """Serial-vs-parallel PDES throughput for one multi-Cell workload.

    ``name`` is a suite kernel (one independent instance per Cell) or a
    cross-Cell fixture (``"exchange"``/``"pipeline"``).  Runs the same
    workload three ways -- the monolithic single-event-queue machine
    (what PDES replaces), PDES with 1 worker, PDES with ``workers``
    workers -- checks the 1-vs-N fingerprints agree, and reports
    aggregate simulated-cycles/sec for each.  ``scaling`` is the
    parallel-PDES/monolithic throughput ratio: the actual speedup of
    sharding the chip.  For suite kernels (Cell-local by design) the
    monolithic and PDES cycle counts must also agree exactly
    (``cycles_match_monolithic``).  The fixtures cross the seam, where
    PDES *prices* contention instead of simulating shared links, so
    exact agreement is not expected; the sample instead reports the
    accuracy columns -- per-launch monolithic cycles against both the
    contention-priced (default) and the old zero-load-priced PDES runs
    (``contention_gap`` / ``zero_load_gap``, sums of per-launch
    absolute differences).
    """
    from ..kernels.registry import SUITE
    from ..pdes import LaunchSpec, run_cells
    from ..pdes import fixture as xfix
    from ..pdes.shard import resolve_kernel
    from ..session import Session

    cells = list(config.chip.cells())

    def make_launches() -> List[Any]:
        if name == "exchange":
            return xfix.exchange_launches(config, words=words)
        if name == "pipeline":
            return xfix.pipeline_launches(config, words=words)
        # One independent suite-kernel instance per Cell (args rebuilt
        # per Cell and per repeat: kernels mutate their args).  Suite
        # kernels are Cell-local, and declaring it (remote=False,
        # runtime-enforced) lets the coordinator free-run the shards
        # instead of paying a barrier every lookahead window.
        return [LaunchSpec(cell=xy, kernel=name, args=suite_args(name, size),
                           remote=False)
                for xy in cells]

    walls: Dict[int, float] = {}
    runs: Dict[int, Any] = {}
    for w in (1, workers):
        best = float("inf")
        for _ in range(repeats):
            launches = make_launches()
            t0 = time.perf_counter()
            res = run_cells(config, launches, workers=w, window=window)
            best = min(best, time.perf_counter() - t0)
        walls[w] = best
        runs[w] = res
    serial, parallel = runs[1], runs[workers]
    agg = serial.aggregate_cycles
    serial_rate = agg / walls[1] if walls[1] > 0 else 0.0
    parallel_rate = agg / walls[workers] if walls[workers] > 0 else 0.0
    mono_wall = float("inf")
    for _ in range(repeats):
        sess = Session(config)
        for spec in make_launches():
            sess.launch(resolve_kernel(spec.kernel),
                        dict(spec.args) if spec.args else None,
                        cell=tuple(spec.cell))
        t0 = time.perf_counter()
        results = sess.run()
        mono_wall = min(mono_wall, time.perf_counter() - t0)
    mono_cycles = [r.cycles for r in results]
    mono_rate = agg / mono_wall if mono_wall > 0 else 0.0
    cycles_match: Optional[bool] = None
    zero_cycles: Optional[List[float]] = None
    zero_gap: Optional[float] = None
    cont_gap: Optional[float] = None
    if name in SUITE:
        cycles_match = mono_cycles == serial.cycles
    else:
        # Fixture accuracy columns: the default PDES runs above price
        # inter-Cell contention; one extra zero-load-priced run shows
        # what the old optimistic model would have reported.
        zero = run_cells(config, make_launches(), workers=1, window=window,
                         contention=False)
        zero_cycles = zero.cycles
        zero_gap = sum(abs(m - c) for m, c in zip(mono_cycles, zero_cycles))
        cont_gap = sum(abs(m - c) for m, c in zip(mono_cycles, serial.cycles))
    base_rate = mono_rate if mono_rate else serial_rate
    try:
        host_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux host
        host_cpus = os.cpu_count() or 1
    return {
        "kernel": name,
        "size": size,
        "config": config.name,
        "cells": [list(c) for c in serial.cells],
        "workers": workers,
        "window": serial.window,
        "lookahead": serial.lookahead,
        "rounds": serial.rounds,
        "messages": serial.messages,
        "repeats": repeats,
        "deterministic": serial.fingerprint() == parallel.fingerprint(),
        "cycles": serial.cycles,
        "aggregate_cycles": agg,
        "events": serial.total_events,
        "serial_wall_seconds": walls[1],
        "parallel_wall_seconds": walls[workers],
        "monolithic_wall_seconds": mono_wall,
        "serial_sim_cycles_per_sec": serial_rate,
        "parallel_sim_cycles_per_sec": parallel_rate,
        "monolithic_sim_cycles_per_sec": mono_rate,
        "cycles_match_monolithic": cycles_match,
        "monolithic_cycles": mono_cycles,
        "zero_load_cycles": zero_cycles,
        "zero_load_gap": zero_gap,
        "contention_gap": cont_gap,
        "contention": serial.contention,
        "scaling": parallel_rate / base_rate if base_rate else 0.0,
        # Workers time-share when the host has fewer CPUs than workers,
        # so interpret ``scaling`` against this: on a 1-CPU host it
        # saturates at ~1x by construction (the free-run coordinator
        # removes sync overhead, but cannot mint a second core).
        "host_cpus": host_cpus,
    }


def profile_top(fn: Any, *args: Any, limit: int = 25,
                sort: str = "tottime", **kwargs: Any) -> str:
    """Run ``fn(*args, **kwargs)`` under cProfile; return the top table.

    The callable's own return value is discarded -- this is a diagnosis
    tool, not a transparent wrapper.
    """
    prof = cProfile.Profile()
    prof.enable()
    try:
        fn(*args, **kwargs)
    finally:
        prof.disable()
    out = io.StringIO()
    pstats.Stats(prof, stream=out).sort_stats(sort).print_stats(limit)
    return out.getvalue()
