"""Host-throughput measurement: how fast the simulator itself runs.

The model's usefulness scales with how many simulated events the host
can push per second, so this module gives the engine a first-class
benchmark rig:

* :func:`measure_kernel` / :func:`measure_suite` -- wall-clock and
  events/sec for suite kernels (the numbers ``benchmarks/bench_engine.py``
  writes to ``BENCH_engine.json``);
* :func:`profile_top` -- a cProfile wrapper returning the top-N hot
  functions of any callable (behind the CLI's ``--profile`` flag).

Wall-clock numbers use ``min`` over repeats: the minimum is the least
noisy estimator of the true cost on a busy host.  Simulated results are
deterministic, so repeats never disagree on cycles or event counts.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from typing import Any, Dict, Iterable, List, Optional

from ..experiments.common import suite_args
from ..kernels import registry
from ..session import run as run_kernel


def measure_kernel(config: Any, name: str, size: str = "small",
                   repeats: int = 3, **run_kwargs: Any) -> Dict[str, Any]:
    """Time one suite kernel; returns a JSON-ready sample.

    The sample reports the best wall-clock over ``repeats`` runs, the
    simulator's executed-event count, and the derived events/sec and
    simulated-cycles/sec throughput.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    bench = registry.SUITE[name]
    best_wall = float("inf")
    events = 0
    result = None
    for _ in range(repeats):
        args = suite_args(name, size)  # rebuilt per run: kernels mutate args
        t0 = time.perf_counter()
        result = run_kernel(config, bench.kernel, args,
                            keep_machine=True, **run_kwargs)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
        events = result.machine.sim.events_executed
    return {
        "kernel": name,
        "size": size,
        "config": result.config_name,
        "repeats": repeats,
        "wall_seconds": best_wall,
        "events": events,
        "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
        "cycles": result.cycles,
        "sim_cycles_per_sec": result.cycles / best_wall if best_wall > 0 else 0.0,
        "instructions": result.instructions,
        "num_tiles": result.num_tiles,
    }


def measure_suite(config: Any, size: str = "small",
                  kernels: Optional[Iterable[str]] = None,
                  repeats: int = 3, **run_kwargs: Any) -> Dict[str, Dict[str, Any]]:
    """Measure several suite kernels; returns ``{name: sample}``."""
    names: List[str] = list(kernels) if kernels is not None else list(registry.SUITE)
    return {
        name: measure_kernel(config, name, size=size, repeats=repeats,
                             **run_kwargs)
        for name in names
    }


def profile_top(fn: Any, *args: Any, limit: int = 25,
                sort: str = "tottime", **kwargs: Any) -> str:
    """Run ``fn(*args, **kwargs)`` under cProfile; return the top table.

    The callable's own return value is discarded -- this is a diagnosis
    tool, not a transparent wrapper.
    """
    prof = cProfile.Profile()
    prof.enable()
    try:
        fn(*args, **kwargs)
    finally:
        prof.disable()
    out = io.StringIO()
    pstats.Stats(prof, stream=out).sort_stats(sort).print_stats(limit)
    return out.getvalue()
