"""Host runtime: machines, Cells, tile groups, launches.

The preferred entry point is :class:`repro.Session` /
:func:`repro.run`; the ``run_on_cell`` family re-exported here is a
deprecated shim layer (see ``docs/API.md``).
"""

from . import dma
from .cell import Cell, LaunchHandle
from .host import collect_result, run_on_cell, run_on_cells
from .machine import Machine
from .memsys import MemorySystem
from .result import RunResult
from .tilegroup import TileGroup, partition_cell

__all__ = [
    "dma",
    "Machine",
    "MemorySystem",
    "Cell",
    "LaunchHandle",
    "TileGroup",
    "partition_cell",
    "RunResult",
    "run_on_cell",
    "run_on_cells",
    "collect_result",
]
