"""Host runtime: machines, Cells, tile groups, launches."""

from . import dma
from .cell import Cell, LaunchHandle
from .host import RunResult, collect_result, run_on_cell, run_on_cells
from .machine import Machine
from .memsys import MemorySystem
from .tilegroup import TileGroup, partition_cell

__all__ = [
    "dma",
    "Machine",
    "MemorySystem",
    "Cell",
    "LaunchHandle",
    "TileGroup",
    "partition_cell",
    "RunResult",
    "run_on_cell",
    "run_on_cells",
    "collect_result",
]
