"""The Cell: HB's unit of SPMD execution and PGAS affinity.

Mirrors the host-side API of the paper's Fig 6: construct (or look up) a
Cell, ``malloc`` in its Local DRAM, ``load_kernel``, ``launch``.  Cross-
Cell producer-consumer patterns use :meth:`group_dram` pointers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..arch.geometry import Coord
from ..engine import Future, join
from ..isa.context import KernelContext
from ..isa.program import Kernel
from ..pgas import spaces
from .tilegroup import TileGroup, partition_cell


class LaunchHandle:
    """One kernel launch across a Cell's tiles."""

    def __init__(self, cell: "Cell", cores: List[Any], launch_time: float,
                 name: Optional[str] = None) -> None:
        self.cell = cell
        self.cores = cores
        self.launch_time = launch_time
        self.name = name or f"launch@cell{cell.cell_xy}"
        self.done: Future = join(cell.machine.sim, [c.done for c in cores])

    @property
    def finished(self) -> bool:
        return self.done.done

    def cycles(self) -> float:
        """Wall-clock cycles from launch to the last tile's completion."""
        if not self.finished:
            raise RuntimeError("kernel still running; call machine.run() first")
        return max(c.finish_time for c in self.cores) - self.launch_time

    def stuck_cores(self) -> List[Any]:
        """Cores whose kernel process has not finished (deadlock triage)."""
        return [c for c in self.cores
                if c.process is not None and not c.process.done.done]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"LaunchHandle({self.name!r}, {state}, {len(self.cores)} tiles)"


class Cell:
    """One Cell and its Local DRAM heap."""

    #: Heap starts above a small reserved region for runtime control words.
    HEAP_BASE = 4096

    def __init__(self, machine: Any, cell_xy: Coord) -> None:
        self.machine = machine
        self.cell_xy = cell_xy
        self.origin = machine.config.chip.cell_origin(cell_xy)
        self._brk = self.HEAP_BASE
        self.kernel: Optional[Kernel] = None
        self.groups: List[TileGroup] = []
        self._last_handle: Optional[LaunchHandle] = None

    # -- memory management -----------------------------------------------------

    def malloc(self, nbytes: int, align: int = 64) -> int:
        """Allocate in this Cell's Local DRAM; returns the byte offset."""
        if nbytes <= 0:
            raise ValueError("malloc needs a positive size")
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        self._brk = (self._brk + align - 1) & ~(align - 1)
        offset = self._brk
        self._brk += nbytes
        return offset

    def local_dram(self, offset: int) -> int:
        """Encode an offset as a Local-DRAM address (usable by own tiles)."""
        return spaces.local_dram(offset)

    def group_dram(self, offset: int) -> int:
        """Encode an offset as a Group-DRAM pointer into *this* Cell,
        usable by any other Cell (the Fig 6 producer-consumer idiom)."""
        return spaces.group_dram(self.cell_xy[0], self.cell_xy[1], offset)

    def poke(self, offset: int, value: int) -> None:
        """Host functional write into this Cell's atomic memory."""
        self._check_owned("poke")
        node = self._any_tile()
        self.machine.memsys.poke(spaces.local_dram(offset), value, node)

    def peek(self, offset: int) -> int:
        self._check_owned("peek")
        node = self._any_tile()
        return self.machine.memsys.peek(spaces.local_dram(offset), node)

    def _check_owned(self, what: str) -> None:
        """PDES shards only drive their own Cells; touching a foreign
        Cell object here would act on state another shard simulates."""
        if not self.machine.owns(self.cell_xy):
            raise RuntimeError(
                f"cannot {what} cell {self.cell_xy}: this shard owns "
                f"{sorted(self.machine.owned_cells)} -- address the "
                "owning shard (malloc/group_dram are pure address "
                "arithmetic and stay usable)")

    # -- kernel launch --------------------------------------------------------------

    def load_kernel(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def tiles(self) -> List[Coord]:
        chip = self.machine.config.chip
        return [chip.to_global(self.cell_xy, local)
                for local in chip.cell.tile_coords()]

    def _any_tile(self) -> Coord:
        chip = self.machine.config.chip
        return chip.to_global(self.cell_xy, next(iter(chip.cell.tile_coords())))

    def launch(self, args: Any = None,
               group_shape: Optional[Tuple[int, int]] = None) -> LaunchHandle:
        """Start the loaded kernel on every tile of this Cell.

        ``group_shape`` splits the Cell into tile groups (default: one
        group covering the whole Cell).
        """
        if self.kernel is None:
            raise RuntimeError("no kernel loaded; call load_kernel() first")
        self._check_owned("launch on")
        # A launch claims every tile of the Cell; starting another while
        # one is in flight would hand the same cores a second program
        # and silently corrupt both (shared scoreboards, clobbered
        # ``done`` futures).  Sequential launches -- run to completion,
        # then launch again -- remain fine.
        if self._last_handle is not None and not self._last_handle.finished:
            raise RuntimeError(
                f"cell {self.cell_xy} already has kernel "
                f"{self._last_handle.name!r} in flight; run the machine "
                "to completion before launching again")
        config = self.machine.config
        cell_geo = config.chip.cell
        shape = group_shape or (cell_geo.tiles_x, cell_geo.tiles_y)
        self.groups = partition_cell(
            self.machine.sim, cell_geo, self.origin, shape,
            config.features, config.timings.barrier,
        )
        cores = []
        num_groups = len(self.groups)
        for group in self.groups:
            for rank, node in enumerate(group.members):
                ctx = KernelContext(
                    node=node,
                    cell_xy=self.cell_xy,
                    cell_origin=self.origin,
                    group_rank=rank,
                    group_size=group.size,
                    group_shape=group.shape,
                    barrier_group=group.barrier,
                    num_groups=num_groups,
                    group_index=group.index,
                )
                core = self.machine.cores[node]
                gen = self.kernel.instantiate(ctx, args)
                core.start(gen)
                cores.append(core)
        name = f"{self.kernel.name}@cell{self.cell_xy}"
        handle = LaunchHandle(self, cores, self.machine.sim.now, name=name)
        self._last_handle = handle
        tracer = self.machine.sim.tracer
        if tracer is not None:
            tracer.launch_started(handle)
        sanitizer = getattr(self.machine.sim, "sanitizer", None)
        if sanitizer is not None:
            # Launch is a host -> tiles happens-before edge: everything
            # the host set up (pokes, DMA) is visible to the kernel.
            sanitizer.launch_started(handle)
        return handle
