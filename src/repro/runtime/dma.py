"""Host-side bulk data movement.

The paper's host runtime "is responsible for memory management and data
transfer"; the Global DRAM space lets the host move large blocks onto
the chip at full DRAM bandwidth (Section IV-A(5)), and Cells exchange
phase results either through Group DRAM pointers or the global space.

These helpers price such transfers against the simulated machine's
resources -- the HBM channels and, for Cell-to-Cell copies, the
inter-Cell network links -- without occupying tiles.  Multi-Cell
experiments use them for the paper's "conservatively estimated data
transfer time between program phases" methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.geometry import Coord
from .machine import Machine


@dataclass
class TransferReport:
    """Timing of one bulk transfer."""

    start: float
    done: float
    payload_bytes: int

    @property
    def cycles(self) -> float:
        return self.done - self.start

    def bandwidth(self) -> float:
        """Achieved bytes per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.payload_bytes / self.cycles


def host_to_cell(machine: Machine, cell_xy: Coord, offset: int,
                 nbytes: int, time: float = None) -> TransferReport:
    """Stream a host block into a Cell's Local DRAM at full bandwidth.

    Occupies the Cell's HBM pseudo-channel (line-granular writes) and the
    wormhole strips, exactly like a write-validate flush would.
    """
    if nbytes <= 0:
        raise ValueError("transfer needs a positive size")
    sim = machine.sim
    t0 = sim.now if time is None else time
    _san = machine.memsys._san
    if _san is not None:
        # One range-granular host write over the target Cell's DRAM.
        _san.host_range(cell_xy, offset, nbytes, write=True)
    channel = machine.memsys.hbm[cell_xy]
    block = machine.config.timings.cache.block_bytes
    done = t0
    addr = offset
    remaining = nbytes
    while remaining > 0:
        done = max(done, channel.access(addr, is_write=True, time=t0))
        addr += block
        remaining -= block
    return TransferReport(start=t0, done=done, payload_bytes=nbytes)


def cell_to_cell(machine: Machine, src: Coord, dst: Coord, nbytes: int,
                 sparse: bool = False, time: float = None) -> TransferReport:
    """Move a block between two Cells over the word network.

    Prices the transfer against the actual inter-Cell links: one word per
    packet for ``sparse`` payloads (random destinations), four-word
    compressed packets for dense streams when the machine supports Load
    Packet Compression.
    """
    if nbytes <= 0:
        raise ValueError("transfer needs a positive size")
    if src == dst:
        raise ValueError("source and destination Cells are the same")
    sim = machine.sim
    t0 = sim.now if time is None else time
    _san = machine.memsys._san
    if _san is not None:
        # The copy reads the whole source range and writes the whole
        # destination range, host-ordered.
        _san.host_range(src, 0, nbytes, write=False)
        _san.host_range(dst, 0, nbytes, write=True)
    net = machine.memsys.req_net
    chip = machine.config.chip
    compression = machine.config.features.load_compression and not sparse
    words_per_packet = 4 if compression else 1
    words = -(-nbytes // 4)
    packets = -(-words // words_per_packet)
    # Spread injections across the source Cell's tile rows, like a
    # cooperative DMA by all tiles.
    src_tiles = [chip.to_global(src, local)
                 for local in chip.cell.tile_coords()]
    dst_banks = [chip.to_global(dst, local)
                 for local in chip.cell.bank_coords()]
    done = t0
    for i in range(packets):
        s = src_tiles[i % len(src_tiles)]
        d = dst_banks[(i * 7) % len(dst_banks)]
        report = net.send(s, d, 1, t0)
        done = max(done, report.arrival)
    return TransferReport(start=t0, done=done, payload_bytes=nbytes)
