"""Host-side convenience: build a machine, run a kernel, collect results.

This is the entry point the examples, tests and every experiment harness
use; it plays the role of the paper's host runtime (memory management,
kernel launch, statistics collection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..arch.config import MachineConfig
from ..core import stall as st
from ..isa.program import Kernel
from .cell import LaunchHandle
from .machine import Machine


@dataclass
class RunResult:
    """Everything an experiment needs from one kernel execution."""

    config_name: str
    kernel_name: str
    cycles: float
    num_tiles: int
    instructions: float
    int_instructions: float
    fp_instructions: float
    core_breakdown: Dict[str, float]  # fractions of tile-cycles per category
    core_utilization: float  # fraction of tile-cycles issuing instructions
    hbm: Dict[str, float]  # read/write/busy/idle fractions (first channel)
    cache_hit_rate: Optional[float]
    network: Dict[str, float]  # request-network counters
    machine: Optional[Machine] = None  # kept when the caller asks for it
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Instructions per cycle across the whole launch."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able snapshot of the result (the sweep-job payload).

        ``machine`` and ``extra`` are deliberately dropped: the former
        is live simulator state, the latter is caller-private.
        """
        return {
            "config": self.config_name,
            "kernel": self.kernel_name,
            "cycles": float(self.cycles),
            "num_tiles": int(self.num_tiles),
            "instructions": float(self.instructions),
            "int_instructions": float(self.int_instructions),
            "fp_instructions": float(self.fp_instructions),
            "core_breakdown": {k: float(v)
                               for k, v in self.core_breakdown.items()},
            "core_utilization": float(self.core_utilization),
            "hbm": {k: float(v) for k, v in self.hbm.items()},
            "cache_hit_rate": (None if self.cache_hit_rate is None
                               else float(self.cache_hit_rate)),
            "network": {k: float(v) for k, v in self.network.items()},
        }


def collect_result(machine: Machine, handle: LaunchHandle, cycles: float,
                   kernel_name: str, keep_machine: bool = False) -> RunResult:
    """Aggregate counters from a finished launch into a :class:`RunResult`."""
    cores = handle.cores
    denom = cycles * len(cores)
    sums: Dict[str, float] = {cat: 0.0 for cat in st.ALL_CATEGORIES}
    for core in cores:
        for cat in st.ALL_CATEGORIES:
            sums[cat] += core.counters.get(cat)
        # Early finishers idle until the slowest tile completes.
        tail = (handle.launch_time + cycles) - core.finish_time
        if tail > 0:
            sums[st.STALL_IDLE] += tail
    accounted = sum(sums.values())
    other = max(0.0, denom - accounted)
    breakdown = {cat: v / denom for cat, v in sums.items() if v > 0}
    if other > 0:
        breakdown["other"] = other / denom
    int_instrs = sums[st.EXEC_INT]
    fp_instrs = sums[st.EXEC_FP]
    cell_xy = handle.cell.cell_xy
    hbm = machine.memsys.hbm[cell_xy].utilization(cycles)
    return RunResult(
        config_name=machine.config.name,
        kernel_name=kernel_name,
        cycles=cycles,
        num_tiles=len(cores),
        instructions=int_instrs + fp_instrs,
        int_instructions=int_instrs,
        fp_instructions=fp_instrs,
        core_breakdown=breakdown,
        core_utilization=(int_instrs + fp_instrs) / denom if denom else 0.0,
        hbm=hbm,
        cache_hit_rate=machine.memsys.cache_hit_rate(cell_xy),
        network=machine.memsys.req_net.counters.as_dict(),
        machine=machine if keep_machine else None,
    )


def run_on_cell(config: MachineConfig, kernel: Kernel, args: Any = None,
                group_shape: Optional[Tuple[int, int]] = None,
                setup: Optional[Callable[[Machine], Any]] = None,
                record_bin_width: Optional[float] = None,
                keep_machine: bool = False,
                max_events: Optional[int] = None) -> RunResult:
    """Build a machine, run ``kernel`` on Cell (0, 0), return the result.

    ``setup(machine)`` runs before launch (host-side data placement); its
    return value, if not ``None``, replaces ``args``.
    """
    machine = Machine(config, record_bin_width=record_bin_width)
    cell = machine.cell(0, 0)
    if setup is not None:
        prepared = setup(machine)
        if prepared is not None:
            args = prepared
    cell.load_kernel(kernel)
    handle = cell.launch(args, group_shape=group_shape)
    cycles = machine.run_to_completion([handle], max_events=max_events)
    return collect_result(machine, handle, cycles, kernel.name,
                          keep_machine=keep_machine)


def run_on_cells(config: MachineConfig,
                 launches: List[Tuple[Tuple[int, int], Kernel, Any]],
                 group_shape: Optional[Tuple[int, int]] = None,
                 keep_machine: bool = False) -> List[RunResult]:
    """Run (possibly different) kernels on several Cells concurrently.

    ``launches`` is a list of ``(cell_xy, kernel, args)``.
    """
    machine = Machine(config)
    handles = []
    for cell_xy, kernel, args in launches:
        cell = machine.cell(*cell_xy)
        cell.load_kernel(kernel)
        handles.append((cell_xy, kernel, cell.launch(args, group_shape=group_shape)))
    machine.run()
    results = []
    for _cell_xy, kernel, handle in handles:
        if not handle.finished:
            raise RuntimeError(f"launch of {kernel.name} did not finish")
        results.append(collect_result(machine, handle, handle.cycles(),
                                      kernel.name, keep_machine=keep_machine))
    return results
