"""Legacy host-side entry points (deprecated shims).

The documented surface moved to :class:`repro.Session` and
:func:`repro.run` (see ``docs/API.md`` for the migration table).  The
original call forms below keep working -- they delegate to the Session
implementation with identical semantics and cycle counts -- but emit a
:class:`DeprecationWarning` so downstream code migrates.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, List, Optional, Tuple

from ..arch.config import MachineConfig
from ..isa.program import Kernel
from .cell import LaunchHandle
from .machine import Machine
from .result import RunResult

__all__ = ["RunResult", "collect_result", "run_on_cell", "run_on_cells"]


def _message(old: str, new: str) -> str:
    return (f"repro.runtime.host.{old} is deprecated; use {new} instead "
            "(see docs/API.md for the migration table)")


def collect_result(machine: Machine, handle: LaunchHandle, cycles: float,
                   kernel_name: str, keep_machine: bool = False) -> RunResult:
    """Deprecated alias of :func:`repro.session.collect`."""
    # stacklevel=2 from the shim itself, so the warning points at the
    # *caller's* file -- the line that needs migrating.
    warnings.warn(_message("collect_result", "repro.session.collect"),
                  DeprecationWarning, stacklevel=2)
    from ..session import collect

    return collect(machine, handle, cycles, kernel_name,
                   keep_machine=keep_machine)


def run_on_cell(config: MachineConfig, kernel: Kernel, args: Any = None,
                group_shape: Optional[Tuple[int, int]] = None,
                setup: Optional[Callable[[Machine], Any]] = None,
                record_bin_width: Optional[float] = None,
                keep_machine: bool = False,
                max_events: Optional[int] = None) -> RunResult:
    """Deprecated alias of :func:`repro.run` (one kernel on Cell (0, 0))."""
    warnings.warn(_message("run_on_cell", "repro.run or repro.Session"),
                  DeprecationWarning, stacklevel=2)
    from ..session import run

    return run(config, kernel, args, group_shape=group_shape, setup=setup,
               record_bin_width=record_bin_width, keep_machine=keep_machine,
               max_events=max_events)


def run_on_cells(config: MachineConfig,
                 launches: List[Tuple[Tuple[int, int], Kernel, Any]],
                 group_shape: Optional[Tuple[int, int]] = None,
                 keep_machine: bool = False) -> List[RunResult]:
    """Deprecated: use one :class:`repro.Session` with several launches.

    ``launches`` is a list of ``(cell_xy, kernel, args)``.
    """
    warnings.warn(
        _message("run_on_cells", "repro.Session (one launch() per Cell)"),
        DeprecationWarning, stacklevel=2)
    from ..session import Session

    session = Session(config)
    for cell_xy, kernel, args in launches:
        session.launch(kernel, args, cell=cell_xy, group_shape=group_shape)
    return session.run(keep_machine=keep_machine)
