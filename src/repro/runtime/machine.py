"""The top-level machine: simulator + memory system + Cells + cores."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..arch.config import MachineConfig
from ..arch.geometry import Coord, NodeKind
from ..core.tile import TileCore
from ..engine import Simulator
from .cell import Cell, LaunchHandle
from .memsys import MemorySystem


class Machine:
    """One instantiated HammerBlade machine model.

    ``owned_cells`` shards the machine for PDES: only the named Cells
    get cores, scratchpads, cache banks and HBM channels -- the rest of
    the chip exists as geometry (the network grid and translator cover
    it) but is another shard's to simulate.  ``None`` (the default)
    owns everything: the monolithic machine, bit-identical to before.
    """

    def __init__(self, config: MachineConfig,
                 record_bin_width: Optional[float] = None,
                 owned_cells: Optional[Iterable[Coord]] = None) -> None:
        self.config = config
        self.sim = Simulator()
        self.owned_cells = (frozenset(owned_cells)
                            if owned_cells is not None else None)
        if self.owned_cells is not None:
            bad = self.owned_cells - set(config.chip.cells())
            if bad:
                raise ValueError(f"owned_cells not on this chip: {sorted(bad)}")
        self.memsys = MemorySystem(self.sim, config,
                                   record_bin_width=record_bin_width,
                                   owned_cells=self.owned_cells)
        self.cells: Dict[Coord, Cell] = {
            xy: Cell(self, xy) for xy in config.chip.cells()
        }
        self.cores: Dict[Coord, TileCore] = {}
        chip = config.chip
        for node, kind in chip.all_nodes():
            if kind is NodeKind.TILE:
                if (self.owned_cells is not None
                        and chip.to_local(node)[0] not in self.owned_cells):
                    continue
                self.cores[node] = TileCore(
                    self.sim, node, config.timings, config.features,
                    self.memsys, name=f"tile{node}",
                )

    def owns(self, cell_xy: Coord) -> bool:
        """Whether this machine simulates ``cell_xy`` (always true when
        unsharded)."""
        return self.owned_cells is None or cell_xy in self.owned_cells

    def cell(self, x: int, y: int = 0) -> Cell:
        """Look up a Cell by its Cell-array coordinate (paper Fig 6)."""
        try:
            return self.cells[(x, y)]
        except KeyError as exc:
            raise KeyError(
                f"no cell ({x}, {y}); machine has "
                f"{self.config.cells_x}x{self.config.cells_y} cells"
            ) from exc

    # -- execution ---------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Drain the event queue (optionally bounded); returns final time."""
        return self.sim.run(until=until, max_events=max_events)

    def run_to_completion(self, handles: Iterable[LaunchHandle],
                          max_events: Optional[int] = None) -> float:
        """Run until every launch finishes; returns the slowest handle's
        elapsed cycles (the kernel's wall clock)."""
        handles = list(handles)
        self.run(max_events=max_events)
        unfinished = [h for h in handles if not h.finished]
        if unfinished:
            raise RuntimeError(
                f"{len(unfinished)} launch(es) did not finish; a process is "
                "deadlocked or waiting on an unresolved future: "
                + "; ".join(self._describe_stuck(h) for h in unfinished)
            )
        return max(h.cycles() for h in handles)

    @staticmethod
    def _describe_stuck(handle, max_cores: int = 8) -> str:
        """One launch's unfinished tiles with their last blocking reason."""
        stuck = handle.stuck_cores()
        parts = [
            f"{core.name}:{core.last_stall or 'never-blocked'}"
            for core in stuck[:max_cores]
        ]
        if len(stuck) > max_cores:
            parts.append(f"... {len(stuck) - max_cores} more")
        detail = ", ".join(parts) if parts else "no stuck tiles?"
        return f"{handle.name} ({len(stuck)} of {len(handle.cores)} tiles stuck: {detail})"

    # -- stats -------------------------------------------------------------------------

    def active_cores(self) -> List[TileCore]:
        return [c for c in self.cores.values() if c.process is not None]

    def elapsed(self) -> float:
        cores = self.active_cores()
        if not cores:
            return 0.0
        return (max(c.finish_time for c in cores)
                - min(c.start_time for c in cores))
