"""The machine's memory system: PGAS translation + networks + banks + HBM.

One :class:`MemorySystem` wires every tile's remote operations through

    request network -> cache bank / remote SPM -> response network

with the wormhole strips and HBM2 pseudo-channels behind the banks.
It also owns the *atomic memory*: the functional state atomics operate
on, updated at the simulated cycle each AMO packet reaches its bank so
that amoadd-based work distribution is ordered exactly as timed.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, Tuple, Union

from ..arch.config import MachineConfig
from ..arch.geometry import Coord, NodeKind
from ..engine import Future, Simulator
from ..mem.cache import CacheBank
from ..mem.hbm import PseudoChannel
from ..mem.spm import Scratchpad
from ..noc.network import Network
from ..noc.wormhole import WormholeStrip
from ..pgas.spaces import (
    FIELD_A_SHIFT,
    FIELD_B_SHIFT,
    FIELD_MASK,
    TAG_SHIFT,
    Space,
)
from ..pgas.translate import Destination, TargetKind, Translator
from ..pim.engine import PimEngine


class MemorySystem:
    """Shared memory/network fabric for one machine."""

    def __init__(self, sim: Simulator, config: MachineConfig,
                 record_bin_width: Optional[float] = None,
                 owned_cells: Optional[FrozenSet[Coord]] = None) -> None:
        self.sim = sim
        self.config = config
        chip = config.chip
        feats = config.features
        timings = config.timings
        self.translator = Translator(
            chip, timings.cache.block_bytes, use_ipoly=feats.ipoly_hashing,
            grid_cells=config.global_grid,
        )
        self.req_net = Network(chip, timings.noc, ruche=feats.ruche_network,
                               order="xy", name="req",
                               record_bin_width=record_bin_width)
        self.resp_net = Network(chip, timings.noc, ruche=feats.ruche_network,
                                order="yx", name="resp",
                                record_bin_width=record_bin_width)
        self.hbm: Dict[Coord, PseudoChannel] = {}
        #: PIM engines, one per owned Cell's pseudo-channel; empty unless
        #: the config carries a ``pim`` block (zero state when off).
        self.pim_engines: Dict[Coord, PimEngine] = {}
        self.banks: Dict[Tuple[Coord, int], CacheBank] = {}
        self.strips: Dict[Tuple[Coord, str], WormholeStrip] = {}
        self.spms: Dict[Coord, Scratchpad] = {}
        self.atomic_mem: Dict[Any, int] = {}
        # Hot-path constants (remote_request runs once per remote op).
        self._creq_flits = timings.noc.compressed_request_flits
        self._cresp_flits = timings.noc.compressed_response_flits
        # The translator's memo dict, aliased for an inline probe (its
        # capacity flush uses clear(), so the object identity is stable).
        self._tmemo = self.translator._memo
        #: Race-checker hook (set by :func:`repro.sanitize.attach`):
        #: observes AMO bank serialization and host poke/peek accesses.
        self._san: Optional[Any] = None
        #: PDES sharding: the Cells whose banks/SPMs this memory system
        #: actually serves (``None`` = all of them, the monolithic case).
        self.owned_cells = owned_cells
        #: Cross-Cell channel hook (set by the PDES shard runtime): when
        #: installed, remote operations whose destination Cell is not
        #: owned are handed to the channel instead of the local fabric.
        #: ``None`` costs one attribute check on the remote-op path.
        self.xchannel: Optional[Any] = None
        self._build(chip, feats, timings)

    def _build(self, chip, feats, timings) -> None:
        owned = self.owned_cells
        for cell_xy in chip.cells():
            if owned is not None and cell_xy not in owned:
                continue  # foreign Cells live in another shard's memsys
            channel = PseudoChannel(
                timings.hbm, name=f"hbm{cell_xy}",
                bandwidth_scale=self.config.hbm_scale,
            )
            self.hbm[cell_xy] = channel
            if self.config.pim is not None:
                self.pim_engines[cell_xy] = PimEngine(
                    self.config.pim, channel, name=f"pim{cell_xy}")
            north = WormholeStrip(num_banks=chip.cell.tiles_x)
            south = WormholeStrip(num_banks=chip.cell.tiles_x)
            self.strips[(cell_xy, "north")] = north
            self.strips[(cell_xy, "south")] = south
            for bank_idx in range(chip.cell.num_banks):
                strip = north if bank_idx < chip.cell.tiles_x else south
                bank_x = bank_idx % chip.cell.tiles_x
                self.banks[(cell_xy, bank_idx)] = CacheBank(
                    self.sim, timings.cache, channel, strip, bank_x,
                    write_validate=feats.write_validate,
                    nonblocking=feats.nonblocking_cache,
                    name=f"bank{cell_xy}:{bank_idx}",
                )
        for node, kind in chip.all_nodes():
            if kind is NodeKind.TILE:
                if owned is not None and chip.to_local(node)[0] not in owned:
                    continue
                self.spms[node] = Scratchpad(self.sim, name=f"spm{node}")

    # -- fast-path helpers used by the core ------------------------------------

    def is_own_spm(self, addr: int, node: Coord) -> bool:
        """True when a GROUP_SPM address points at the issuing tile itself."""
        if (addr >> TAG_SHIFT) != Space.GROUP_SPM:
            return False
        x = (addr >> FIELD_A_SHIFT) & FIELD_MASK
        y = (addr >> FIELD_B_SHIFT) & FIELD_MASK
        return (x, y) == node

    def spm_reserve(self, node: Coord, time: float, words: int = 1) -> float:
        """Local-pipeline SPM port claim; returns the granted start cycle."""
        return self.spms[node].reserve(time, words)

    # -- remote operations --------------------------------------------------------

    def remote_request(self, node: Coord, addr: int, is_write: bool,
                       time: float, words: int = 1) -> Future:
        """A remote load/store.  The returned future resolves with the
        response's arrival cycle back at the requesting tile."""
        dest = self._tmemo.get((addr, node))
        if dest is None:
            dest = self.translator.translate(addr, node)
        if words > 1:
            req_flits = self._creq_flits
            resp_flits = 1 if is_write else self._cresp_flits
        else:
            req_flits = 1
            resp_flits = 1
        if (self.xchannel is not None
                and dest.cell_xy not in self.owned_cells):
            return self.xchannel.request(node, dest, is_write, words,
                                         req_flits, resp_flits, time)
        done = Future(self.sim)
        arrival = self.req_net.send_arrival(node, dest.node, req_flits, time)
        # Engine-internal post: one args tuple instead of a closure.
        self.sim._post(arrival, self._serve_request,
                       (dest, node, is_write, words, resp_flits, done))
        return done

    def _serve_request(self, args) -> None:
        dest, node, is_write, words, resp_flits, done = args
        arrival = self.sim._now
        if dest.kind is TargetKind.SPM:
            ready = self.spms[dest.node].access_timed(
                dest.mem_addr, is_write, arrival, words
            )
        else:
            bank = self.banks[(dest.cell_xy, dest.bank_index)]
            ready = bank.access_timed(dest.mem_addr, is_write, arrival, words)
        if ready.__class__ is Future:
            # Miss path: completion depends on MSHR/HBM state.
            ready.add_callback(
                lambda _v: self._respond(dest.node, node, resp_flits, done)
            )
        else:
            # Synchronous outcome: schedule the response directly, with
            # no intermediate future between bank and response network.
            self.sim._post(ready, self._respond_args,
                           (dest.node, node, resp_flits, done, None))

    def remote_amo(self, node: Coord, addr: int, kind: str, value: int,
                   time: float) -> Future:
        """A remote atomic; resolves with ``(arrival_cycle, old_value)``.

        The functional read-modify-write executes when the packet reaches
        the bank, in event order -- the simulated serialization point.
        """
        dest = self._tmemo.get((addr, node))
        if dest is None:
            dest = self.translator.translate(addr, node)
        if dest.kind is not TargetKind.CACHE:
            raise ValueError("atomics target DRAM spaces (cache banks) only")
        if (self.xchannel is not None
                and dest.cell_xy not in self.owned_cells):
            return self.xchannel.amo(node, dest, kind, value, time)
        done = Future(self.sim)
        arrival = self.req_net.send_arrival(node, dest.node, 1, time)
        self.sim._post(arrival, self._serve_amo,
                       (dest, node, kind, value, done))
        return done

    def _serve_amo(self, args) -> None:
        dest, node, kind, value, done = args
        arrival = self.sim._now
        if self._san is not None:
            # The AMO's functional point: this event order *is* the
            # architectural serialization order the checker models.
            self._san.amo_serialized(node, dest, arrival)
        old = self._amo_execute(dest, kind, value)
        bank = self.banks[(dest.cell_xy, dest.bank_index)]
        ready = bank.access_timed(dest.mem_addr, is_write=False,
                                  time=arrival, is_amo=True)
        if ready.__class__ is Future:
            ready.add_callback(
                lambda _v: self._respond(dest.node, node, 1, done,
                                         payload=old)
            )
        else:
            self.sim._post(ready, self._respond_args,
                           (dest.node, node, 1, done, old))

    def pim_request(self, node: Coord, addr: int, command: Any,
                    time: float) -> Future:
        """A PIM command delivered through the request network.

        The returned future resolves with the response arrival cycle
        (command acks) or ``(arrival, payload)`` for ``RD_MAC``.  The
        functional command executes when the packet reaches the channel,
        in event order -- the same serialization discipline as AMOs.
        """
        dest = self._tmemo.get((addr, node))
        if dest is None:
            dest = self.translator.translate(addr, node)
        if dest.kind is not TargetKind.PIM:
            raise ValueError("pim_request needs a Space.PIM address")
        if not self.pim_engines:
            raise RuntimeError(
                "the PIM backend is disabled for this machine; enable it "
                "with MachineConfig.with_pim()")
        if dest.bank_index != 0:
            raise ValueError(
                f"PIM window names pseudo-channel {dest.bank_index}, but "
                "the model exposes one channel (index 0) per Cell")
        if (self.xchannel is not None
                and dest.cell_xy not in self.owned_cells):
            # PIM commands are Cell-local by contract: a shard cannot
            # mutate a channel another shard simulates.
            raise RuntimeError(
                f"PIM commands are Cell-local: tile {node} targets the "
                f"PIM window of foreign cell {dest.cell_xy}")
        words = len(getattr(command, "values", ()))
        # One header flit; payload words ride the compressed-load framing
        # (four words per extra request flit).
        req_flits = 1 + (words + 3) // 4
        payload_words = 0
        pw = getattr(command, "payload_words", None)
        if pw is not None:
            payload_words = pw(self.config.pim.simd_width)
        # Responses: a bare ack flit, or RD_MAC data at two flits per
        # four words (the compressed-response framing).
        resp_flits = 1 if payload_words == 0 \
            else 2 * ((payload_words + 3) // 4)
        done = Future(self.sim)
        arrival = self.req_net.send_arrival(node, dest.node, req_flits, time)
        self.sim._post(arrival, self._serve_pim,
                       (dest, node, command, resp_flits, done))
        return done

    def _serve_pim(self, args) -> None:
        dest, node, command, resp_flits, done = args
        engine = self.pim_engines[dest.cell_xy]
        completion, payload = engine.execute(command, self.sim._now)
        self.sim._post(completion, self._respond_args,
                       (dest.node, node, resp_flits, done, payload))

    def serve_remote(self, dest: Destination, is_write: bool, time: float,
                     words: int = 1) -> Union[float, Future]:
        """Destination-side service of a cross-Cell request (PDES ingress).

        The bank/SPM access timing of :meth:`_serve_request` without the
        response-network hop -- the caller (the shard's cross-Cell
        channel) prices the return trip itself.  Returns the ready cycle
        as a float, or a :class:`Future` on the miss path.
        """
        if dest.kind is TargetKind.SPM:
            return self.spms[dest.node].access_timed(
                dest.mem_addr, is_write, time, words)
        bank = self.banks[(dest.cell_xy, dest.bank_index)]
        return bank.access_timed(dest.mem_addr, is_write, time, words)

    def serve_remote_amo(self, dest: Destination, node: Coord, kind: str,
                         value: int, time: float) -> Tuple[Union[float, Future], int]:
        """Destination-side service of a cross-Cell AMO (PDES ingress).

        Executes the functional read-modify-write *now* -- the ingress
        event order at the owning shard is the architectural
        serialization order -- then times the bank access.  Returns
        ``(ready, old_value)``.

        The *inline* sanitizer hook is absent on purpose: ``node`` is a
        tile another shard simulates, and this shard's checker has no
        vector clock for it.  Cross-Cell happens-before edges are
        instead recovered offline -- the issuing shard snapshots its
        clock (``Sanitizer.xshard_amo_out``), the owning shard's channel
        logs the serve order, and the coordinator's stitching pass
        (:func:`repro.sanitize.xshard.stitch_shards`) joins the two to
        check cross-Cell conflicts after the run.
        """
        old = self._amo_execute(dest, kind, value)
        bank = self.banks[(dest.cell_xy, dest.bank_index)]
        ready = bank.access_timed(dest.mem_addr, is_write=False,
                                  time=time, is_amo=True)
        return ready, old

    def _respond(self, src: Coord, dst: Coord, flits: int, done: Future,
                 payload: Any = None) -> None:
        arrival = self.resp_net.send_arrival(src, dst, flits, self.sim.now)
        if payload is None:
            done.resolve_at(arrival, arrival)
        else:
            done.resolve_at(arrival, (arrival, payload))

    def _respond_args(self, args) -> None:
        """:meth:`_respond` with an args tuple (the ``_post`` fast form)."""
        src, dst, flits, done, payload = args
        arrival = self.resp_net.send_arrival(src, dst, flits, self.sim._now)
        if payload is None:
            done.resolve_at(arrival, arrival)
        else:
            done.resolve_at(arrival, (arrival, payload))

    # -- functional atomic memory ----------------------------------------------------

    @staticmethod
    def _canonical(dest: Destination) -> Tuple[Coord, int]:
        return (dest.cell_xy, dest.mem_addr)

    def _amo_execute(self, dest: Destination, kind: str, value: int) -> int:
        key = self._canonical(dest)
        old = self.atomic_mem.get(key, 0)
        if kind == "add":
            new = old + value
        elif kind == "or":
            new = old | value
        elif kind == "and":
            new = old & value
        elif kind == "xor":
            new = old ^ value
        elif kind == "swap":
            new = value
        elif kind == "min":
            new = min(old, value)
        elif kind == "max":
            new = max(old, value)
        else:
            raise ValueError(f"unknown AMO kind {kind!r}")
        self.atomic_mem[key] = new
        return old

    def poke(self, addr: int, value: int, node: Coord) -> None:
        """Host-side functional write to atomic memory (no timing)."""
        if self._san is not None:
            self._san.host_write(addr, node)
        dest = self.translator.translate(addr, node)
        self._check_owned(dest)
        self.atomic_mem[self._canonical(dest)] = value

    def peek(self, addr: int, node: Coord) -> int:
        if self._san is not None:
            self._san.host_read(addr, node)
        dest = self.translator.translate(addr, node)
        self._check_owned(dest)
        return self.atomic_mem.get(self._canonical(dest), 0)

    def _check_owned(self, dest: Destination) -> None:
        """Reject host functional access to a Cell another shard owns --
        silently writing the local (never-simulated) copy would fork the
        functional state between shards."""
        if self.owned_cells is not None and dest.cell_xy not in self.owned_cells:
            raise RuntimeError(
                f"cell {dest.cell_xy} is not owned by this shard "
                f"(owned: {sorted(self.owned_cells)}); host poke/peek of "
                "foreign Cells must run in the owning shard")

    # -- reporting ----------------------------------------------------------------------

    def hbm_utilization(self, elapsed: float) -> Dict[Coord, Dict[str, float]]:
        return {xy: ch.utilization(elapsed) for xy, ch in self.hbm.items()}

    def cache_hit_rate(self, cell_xy: Coord) -> Optional[float]:
        hits = misses = 0.0
        for (xy, _idx), bank in self.banks.items():
            if xy != cell_xy:
                continue
            hits += bank.counters.get("load_hits") + bank.counters.get("store_hits")
            misses += bank.counters.get("load_misses") + bank.counters.get("store_misses")
        total = hits + misses
        return hits / total if total else None
