"""The result of one kernel execution, with a versioned wire format.

``RunResult.to_dict()`` is the payload the orchestrator caches and the
run journal records; it carries ``"schema": 2`` so cached payloads are
self-describing, and :meth:`RunResult.from_dict` round-trips them back
into typed results (rejecting unknown schema versions with a clear
error instead of silently misreading fields).

Schema history:

* **1** -- the PR 3 format: metrics only.
* **2** -- adds ``"provenance"``: where the payload came from when it
  was served by the :mod:`repro.serve` scheduler daemon (job id, cache
  hit/miss/dedup, code fingerprint, server run id).  Locally-built
  results carry an empty provenance dict; schema-1 payloads are read
  and upgraded in place (the metric fields are identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Version of the ``to_dict`` wire format.  Bump when fields change
#: incompatibly; ``from_dict`` refuses payloads from other versions.
SCHEMA_VERSION = 2

#: The provenance keys the serve scheduler stamps on delivered results
#: (``provenance`` is free-form; these are the documented ones).
PROVENANCE_FIELDS = ("job", "cache_key", "cache", "fingerprint", "run_id")


@dataclass
class RunResult:
    """Everything an experiment needs from one kernel execution."""

    config_name: str
    kernel_name: str
    cycles: float
    num_tiles: int
    instructions: float
    int_instructions: float
    fp_instructions: float
    core_breakdown: Dict[str, float]  # fractions of tile-cycles per category
    core_utilization: float  # fraction of tile-cycles issuing instructions
    hbm: Dict[str, float]  # read/write/busy/idle fractions (first channel)
    cache_hit_rate: Optional[float]
    network: Dict[str, float]  # request-network counters
    machine: Optional[Any] = None  # kept when the caller asks for it
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Where this payload came from when it was served by the scheduler
    #: daemon (see :data:`PROVENANCE_FIELDS`); empty for local runs.
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Instructions per cycle across the whole launch."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def trace(self) -> Optional[Any]:
        """The :class:`repro.trace.Trace` of a traced run, if any."""
        return self.extra.get("trace")

    @property
    def sanitize(self) -> Optional[Any]:
        """The :class:`repro.sanitize.Sanitizer` of a sanitized run."""
        return self.extra.get("sanitize")

    @property
    def audit(self) -> Optional[Any]:
        """The :class:`repro.audit.Auditor` of an audited run, if any."""
        return self.extra.get("audit")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able snapshot of the result (the sweep-job payload).

        ``machine`` and ``extra`` are deliberately dropped: the former
        is live simulator state, the latter caller-private.
        ``provenance`` round-trips (empty for locally-built results).
        """
        return {
            "schema": SCHEMA_VERSION,
            "config": self.config_name,
            "kernel": self.kernel_name,
            "cycles": float(self.cycles),
            "num_tiles": int(self.num_tiles),
            "instructions": float(self.instructions),
            "int_instructions": float(self.int_instructions),
            "fp_instructions": float(self.fp_instructions),
            "core_breakdown": {k: float(v)
                               for k, v in self.core_breakdown.items()},
            "core_utilization": float(self.core_utilization),
            "hbm": {k: float(v) for k, v in self.hbm.items()},
            "cache_hit_rate": (None if self.cache_hit_rate is None
                               else float(self.cache_hit_rate)),
            "network": {k: float(v) for k, v in self.network.items()},
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from a :meth:`to_dict` payload.

        Payloads written before versioning carry no ``schema`` key and
        are read as version 1 (the format is identical); schema-1
        payloads upgrade to 2 with empty provenance.  Anything newer
        (or unrecognized) is rejected.
        """
        schema = data.get("schema", 1)
        if schema not in (1, SCHEMA_VERSION):
            raise ValueError(
                f"unsupported RunResult schema {schema!r}: this build reads "
                f"schema 1..{SCHEMA_VERSION}; re-run the sweep (or clear the "
                "result cache) to regenerate payloads"
            )
        provenance = dict(data.get("provenance") or {}) if schema >= 2 else {}
        return cls(
            config_name=data["config"],
            kernel_name=data["kernel"],
            cycles=float(data["cycles"]),
            num_tiles=int(data["num_tiles"]),
            instructions=float(data["instructions"]),
            int_instructions=float(data["int_instructions"]),
            fp_instructions=float(data["fp_instructions"]),
            core_breakdown=dict(data["core_breakdown"]),
            core_utilization=float(data["core_utilization"]),
            hbm=dict(data["hbm"]),
            cache_hit_rate=(None if data.get("cache_hit_rate") is None
                            else float(data["cache_hit_rate"])),
            network=dict(data.get("network", {})),
            provenance=provenance,
        )
