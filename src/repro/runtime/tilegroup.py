"""Tile groups: rectangular sub-arrays of a Cell's tiles.

Tile groups are HB's fine-grained thread-management unit (vs. SIMT warps):
each group gets its own reconfigured barrier tree and typically works on
an independent task over the Cell's shared data (Fig 12's task-level
parallelism for irregular workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..arch.config import FeatureSet
from ..arch.geometry import CellGeometry, Coord
from ..arch.params import BarrierTiming
from ..engine import Simulator
from ..noc.barrier import HwBarrierGroup, SwBarrierGroup


@dataclass
class TileGroup:
    """One rectangular group of tiles with its barrier."""

    index: int
    origin: Tuple[int, int]  # tile coordinates within the Cell (x, y)
    shape: Tuple[int, int]  # (width, height) in tiles
    members: List[Coord]  # global node coordinates, row-major
    barrier: object  # HwBarrierGroup or SwBarrierGroup

    @property
    def size(self) -> int:
        return len(self.members)

    def rank_of(self, node: Coord) -> int:
        return self.members.index(node)


def partition_cell(sim: Simulator, cell: CellGeometry, cell_origin: Coord,
                   group_shape: Tuple[int, int], features: FeatureSet,
                   barrier_timing: BarrierTiming) -> List[TileGroup]:
    """Split a Cell's tile array into equal rectangular tile groups.

    ``group_shape=(tiles_x, tiles_y)`` reproduces the single-group
    default; Fig 12 uses shapes like ``(4, 4)`` for eight groups.
    """
    gw, gh = group_shape
    if gw <= 0 or gh <= 0:
        raise ValueError("group shape must be positive")
    if cell.tiles_x % gw or cell.tiles_y % gh:
        raise ValueError(
            f"group shape {group_shape} does not tile a "
            f"{cell.tiles_x}x{cell.tiles_y} Cell"
        )
    ox, oy = cell_origin
    groups: List[TileGroup] = []
    index = 0
    for gy in range(cell.tiles_y // gh):
        for gx in range(cell.tiles_x // gw):
            members: List[Coord] = []
            for ty in range(gy * gh, (gy + 1) * gh):
                for tx in range(gx * gw, (gx + 1) * gw):
                    # +1 skips the north cache strip row.
                    members.append((ox + tx, oy + 1 + ty))
            if features.hw_barrier:
                barrier = HwBarrierGroup(
                    sim, members, barrier_timing,
                    ruche=features.ruche_network,
                )
            else:
                barrier = SwBarrierGroup(sim, members)
            tracer = sim.tracer
            if tracer is not None:
                barrier._trace = tracer
                barrier._trace_track = tracer.track(
                    "runtime", f"barrier cell{cell_origin} g{index}")
            sanitizer = getattr(sim, "sanitizer", None)
            if sanitizer is not None:
                barrier._san = sanitizer
                sanitizer.register_barrier(
                    barrier, f"cell{cell_origin} g{index}")
            groups.append(TileGroup(
                index=index, origin=(gx * gw, gy * gh),
                shape=(gw, gh), members=members, barrier=barrier,
            ))
            index += 1
    return groups
