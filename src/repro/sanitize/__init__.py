"""repro.sanitize: a dynamic PGAS race and synchronization checker.

Usage (the Session flag is the normal entry point)::

    import repro

    session = repro.Session(repro.HB_16x8, sanitize=True)
    session.launch(kernel, args)
    session.run()
    print(session.sanitizer.summary())
    assert session.sanitizer.clean

or, from a shell::

    python -m repro sanitize PR --size small
    python -m repro sanitize fixture --json

See :mod:`repro.sanitize.checker` for the happens-before model and
``docs/MODEL.md`` ("Memory model & synchronization") for the rules the
checker enforces.
"""

from .checker import Finding, SanitizeConfig, Sanitizer
from .fixture import DEADLOCK_FIXTURE, FIXTURE, fixture_args
from .instrument import attach
from .report import format_report, sanitize_report

__all__ = [
    "DEADLOCK_FIXTURE",
    "FIXTURE",
    "Finding",
    "SanitizeConfig",
    "Sanitizer",
    "attach",
    "fixture_args",
    "format_report",
    "sanitize_report",
]
