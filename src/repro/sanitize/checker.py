"""The happens-before engine behind ``repro sanitize``.

A :class:`Sanitizer` is a passive observer wired into a live machine by
:func:`repro.sanitize.attach` (the ``Session(sanitize=True)`` path).
Components carry a ``_san`` attribute that defaults to ``None``; every
hot path guards its notification behind one ``is not None`` check, so a
sanitize-off run executes the seed's exact instruction stream and cycle
counts (the golden tests pin this).  The sanitizer never schedules
events or touches component state -- sanitize-on runs are also
cycle-identical to sanitize-off runs.

The model (documented for users in ``docs/MODEL.md``):

* every tile is a thread with a vector clock; the host runtime is
  thread 0;
* program order within a tile orders that tile's accesses;
* a **fence** releases the tile's outstanding remote accesses: only
  released accesses are ordered by a later barrier or atomic release
  (HB's non-blocking remote stores are *not* ordered by a barrier join
  alone -- the exact discipline the paper's kernels must get right);
* a **barrier** epoch is a release/acquire over the whole group: every
  member leaves with the join of all members' clocks.  Remote loads are
  assumed consumed (and therefore complete) by the join; remote stores
  need the explicit fence;
* a **remote atomic** serializes at its cache bank.  It acquires the
  word's release clock and releases the issuing tile's clock into it,
  so amoadd work distribution and fence-then-amoswap flag publication
  create real edges.  AMO-written words are *atomic words*: plain reads
  of them never race and inherit the word's release clock (word
  accesses are single-copy atomic in this architecture);
* conflicting accesses (same word, at least one write, different tiles)
  with no such path between them are **data races**;
* a remote read of a scratchpad word that no one ever wrote is an
  **uninitialized read** (DRAM words are exempt: input arrays are
  host-initialized by convention);
* barrier misuse: joining a group the tile is not a member of, and
  epochs still incomplete when the run ends (deadlocked / divergent
  join counts).

Suppression, in order of preference: fix the kernel; annotate the
intentionally-racy access (``t.load(addr, racy=True)``); exempt an
address range (:meth:`Sanitizer.allow`); drop a finding kind
(``SanitizeConfig(suppress=("data-race",))``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..pgas.spaces import (
    FIELD_A_SHIFT,
    FIELD_B_SHIFT,
    FIELD_MASK,
    OFFSET_MASK,
    TAG_SHIFT,
    Space,
)

_LOCAL_SPM = int(Space.LOCAL_SPM)
_GROUP_SPM = int(Space.GROUP_SPM)

#: Thread id of the host runtime (pokes, DMA, result collection).
HOST = 0


@dataclass(frozen=True)
class SanitizeConfig:
    """Knobs for one sanitized run.

    ``suppress`` drops whole finding kinds (``"data-race"``,
    ``"uninit-read"``, ``"barrier-deadlock"``, ``"barrier-non-member"``).
    ``max_findings`` caps the *recorded* findings; occurrence counting
    continues past the cap (see :attr:`Sanitizer.counts`).
    """

    races: bool = True
    uninit: bool = True
    barriers: bool = True
    max_findings: int = 64
    suppress: Tuple[str, ...] = ()


class _Access:
    """One observed memory access (the shadow state's unit).

    ``clock`` and ``released_at`` are only populated in cross-shard
    (xshard) mode: the offline stitcher needs a point-in-time vector
    clock per exported access, and the *time* a fence released it (the
    live checker only needs the boolean).
    """

    __slots__ = ("tid", "epoch", "released", "node", "op", "addr",
                 "write", "atomic", "racy", "time", "clock",
                 "released_at")

    def __init__(self, tid: int, epoch: int, released: bool, node, op,
                 addr: int, write: bool, atomic: bool, racy: bool,
                 time: float) -> None:
        self.tid = tid
        self.epoch = epoch
        self.released = released
        self.node = node
        self.op = op
        self.addr = addr
        self.write = write
        self.atomic = atomic
        self.racy = racy
        self.time = time
        self.clock: Optional[List[int]] = None
        self.released_at: Optional[float] = time if released else None


class _Word:
    """Shadow state of one 4-byte word: last write + last read per tile."""

    __slots__ = ("write", "reads", "amo_clock", "uninit_reported")

    def __init__(self) -> None:
        self.write: Optional[_Access] = None
        self.reads: Dict[int, _Access] = {}
        self.amo_clock: Optional[List[int]] = None
        self.uninit_reported = False


@dataclass
class Finding:
    """One reported problem, deduplicated by (kind, code locations)."""

    kind: str  # data-race | uninit-read | barrier-deadlock | barrier-non-member
    detail: str  # e.g. "store-store", "load vs amoadd", free text
    addr: Optional[str] = None  # decoded address of the first occurrence
    access: Optional[Dict[str, Any]] = None  # current access
    other: Optional[Dict[str, Any]] = None  # prior conflicting access
    count: int = 1  # occurrences collapsed into this finding

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "detail": self.detail,
                               "count": self.count}
        if self.addr is not None:
            out["addr"] = self.addr
        if self.access is not None:
            out["access"] = self.access
        if self.other is not None:
            out["other"] = self.other
        return out


def _describe(acc: _Access) -> Dict[str, Any]:
    """JSON-able description of one access (disassembly included)."""
    if acc.tid == HOST:
        where: Any = "host"
    else:
        where = list(acc.node)
    out: Dict[str, Any] = {"tile": where, "time": acc.time,
                           "released": acc.released}
    if acc.op is not None:
        from ..isa.disasm import format_op

        out["op"] = format_op(acc.op).strip()
        out["pc"] = acc.op.pc
    else:
        out["op"] = "host access"
        out["pc"] = -1
    return out


def _format_key(key: Tuple) -> str:
    if key[0] == "S":
        return f"spm[{key[1]},{key[2]}]+{4 * key[3]:#x}"
    return f"dram({key[1]},{key[2]})+{4 * key[3]:#x}"


def _site(acc: _Access) -> Tuple:
    """Dedup signature of an access: its code location, not its data."""
    if acc.op is None:
        return ("host",)
    return (type(acc.op).__name__, acc.op.pc)


def _site_op(op: Any) -> Tuple:
    """Dedup signature of a bare op (no access record)."""
    if op is None:
        return ("host",)
    return (type(op).__name__, op.pc)


class Sanitizer:
    """Dynamic PGAS race and synchronization checker for one machine."""

    def __init__(self, config: Optional[SanitizeConfig] = None) -> None:
        self.config = config or SanitizeConfig()
        self.findings: List[Finding] = []
        #: Occurrences per kind, counted even past ``max_findings``.
        self.counts: Dict[str, int] = {}
        self._by_sig: Dict[Tuple, Finding] = {}
        self._suppress = frozenset(self.config.suppress)
        self._allowed: set = set()
        self._shadow: Dict[Tuple, _Word] = {}
        self._canon_memo: Dict[Tuple, Tuple] = {}
        self._machine: Any = None
        self._translator: Any = None
        self._tids: Dict[Tuple[int, int], int] = {}
        self._clocks: List[List[int]] = []
        self._pending_stores: List[List[_Access]] = []
        self._pending_loads: List[List[_Access]] = []
        self._pending_pim: List[List[Any]] = []
        self._amo_ops: List[Optional[Any]] = []
        self._barrier_pending: Dict[int, Dict[int, List[int]]] = {}
        self._barriers: List[Tuple[Any, str]] = []
        #: Host-side bulk ranges: (cell_xy, lo_word, hi_word, write, _Access).
        self._host_ranges: List[Tuple[Tuple[int, int], int, int, bool, _Access]] = []
        self.ops_checked = 0
        #: Cross-shard (xshard) mode: set by :meth:`enable_xshard` on
        #: PDES shards.  Accesses to Cell-DRAM words then snapshot the
        #: issuing thread's vector clock, fences stamp release times,
        #: and AMO serializations are logged -- everything the offline
        #: cross-shard stitcher (:mod:`repro.sanitize.xshard`) needs.
        self._xshard_cell: Optional[Tuple[int, int]] = None
        self._out_amos: List[Dict[str, Any]] = []
        self._sync_log: List[Dict[str, Any]] = []

    # -- wiring (see sanitize/instrument.py) --------------------------------

    def bind(self, machine: Any) -> None:
        """Build the thread table for ``machine``'s tiles (host is 0)."""
        self._machine = machine
        self._translator = machine.memsys.translator
        nodes = sorted(machine.cores, key=lambda xy: (xy[1], xy[0]))
        self._tids = {node: i + 1 for i, node in enumerate(nodes)}
        n = len(nodes) + 1
        self._clocks = [[0] * n for _ in range(n)]
        self._pending_stores = [[] for _ in range(n)]
        self._pending_loads = [[] for _ in range(n)]
        self._pending_pim = [[] for _ in range(n)]
        self._amo_ops = [None] * n

    def register_barrier(self, group: Any, label: str) -> None:
        """Track a barrier group for end-of-run deadlock checks."""
        self._barriers.append((group, label))

    # -- suppression --------------------------------------------------------

    def allow(self, addr: int, nbytes: int = 4,
              node: Optional[Tuple[int, int]] = None) -> None:
        """Exempt an address range from race/uninit checks.

        ``node`` resolves LOCAL_* spaces (any tile of the owning Cell);
        it defaults to the machine's first tile.
        """
        if node is None:
            node = next(iter(self._tids))
        for off in range(0, max(nbytes, 4), 4):
            self._allowed.add(self._canon(addr + off, node))

    # -- address canonicalization -------------------------------------------

    def _canon(self, addr: int, node: Tuple[int, int]) -> Tuple:
        """Physical identity of a word: one key per (memory, word)."""
        memo = self._canon_memo
        mkey = (addr, node)
        hit = memo.get(mkey)
        if hit is not None:
            return hit
        tag = addr >> TAG_SHIFT
        if tag == _LOCAL_SPM:
            hit = ("S", node[0], node[1], (addr & OFFSET_MASK) >> 2)
        elif tag == _GROUP_SPM:
            hit = ("S", (addr >> FIELD_A_SHIFT) & FIELD_MASK,
                   (addr >> FIELD_B_SHIFT) & FIELD_MASK,
                   (addr & OFFSET_MASK) >> 2)
        else:
            dest = self._translator.translate(addr, node)
            hit = ("D", dest.cell_xy[0], dest.cell_xy[1], dest.mem_addr >> 2)
        if len(memo) >= (1 << 16):
            memo.clear()
        memo[mkey] = hit
        return hit

    # -- findings -----------------------------------------------------------

    def _record(self, kind: str, detail: str, sig: Tuple,
                addr: Optional[str] = None,
                access: Optional[Dict[str, Any]] = None,
                other: Optional[Dict[str, Any]] = None) -> None:
        if kind in self._suppress:
            return
        self.counts[kind] = self.counts.get(kind, 0) + 1
        known = self._by_sig.get(sig)
        if known is not None:
            known.count += 1
            return
        finding = Finding(kind=kind, detail=detail, addr=addr,
                          access=access, other=other)
        self._by_sig[sig] = finding
        if len(self.findings) < self.config.max_findings:
            self.findings.append(finding)

    def _race(self, prior: _Access, acc: _Access, key: Tuple) -> None:
        if not self.config.races or prior.racy or acc.racy:
            return
        kinds = ("atomic" if prior.atomic else
                 ("store" if prior.write else "load"),
                 "atomic" if acc.atomic else
                 ("store" if acc.write else "load"))
        detail = f"{kinds[0]}-{kinds[1]}"
        if prior.write and not prior.released and prior.tid != HOST:
            detail += " (prior store never fenced)"
        self._record(
            "data-race", detail,
            ("data-race", _site(prior), _site(acc)),
            addr=_format_key(key),
            access=_describe(acc), other=_describe(prior))

    # -- happens-before core ------------------------------------------------

    def _hb(self, acc: _Access, tid: int, clock: List[int]) -> bool:
        return acc.tid == tid or (acc.released
                                  and clock[acc.tid] >= acc.epoch)

    def _next_epoch(self, tid: int) -> int:
        clock = self._clocks[tid]
        epoch = clock[tid] + 1
        clock[tid] = epoch
        return epoch

    @staticmethod
    def _join(into: List[int], other: List[int]) -> None:
        for i, v in enumerate(other):
            if v > into[i]:
                into[i] = v

    # -- tile access hooks (called from the core hot path) -------------------

    def load(self, node: Tuple[int, int], op: Any, time: float) -> None:
        self._access(node, op, op.addr, False, getattr(op, "racy", False),
                     time)

    def vload(self, node: Tuple[int, int], op: Any, time: float) -> None:
        racy = getattr(op, "racy", False)
        for i in range(len(op.dsts)):
            self._access(node, op, op.addr + 4 * i, False, racy, time)

    def store(self, node: Tuple[int, int], op: Any, time: float) -> None:
        self._access(node, op, op.addr, True, getattr(op, "racy", False),
                     time)

    def _access(self, node: Tuple[int, int], op: Any, addr: int,
                write: bool, racy: bool, time: float) -> None:
        self.ops_checked += 1
        tid = self._tids[node]
        key = self._canon(addr, node)
        local = key[0] == "S" and key[1] == node[0] and key[2] == node[1]
        acc = _Access(tid, self._next_epoch(tid), local, node, op, addr,
                      write, False, racy, time)
        if not local:
            (self._pending_stores if write
             else self._pending_loads)[tid].append(acc)
        if key in self._allowed:
            return
        word = self._shadow.get(key)
        if word is None:
            word = self._shadow[key] = _Word()
        self._check_ranges(key, acc)
        if write:
            self._on_write(word, acc, key)
        else:
            self._on_read(word, acc, key, remote_spm=(key[0] == "S"
                                                      and not local))
        if self._xshard_cell is not None and key[0] == "D":
            # Snapshot *after* the handlers: an atomic-word read just
            # joined the word's release clock, and the exported clock
            # must include that acquisition.
            acc.clock = list(self._clocks[tid])

    def _on_write(self, word: _Word, acc: _Access, key: Tuple) -> None:
        tid, clock = acc.tid, self._clocks[acc.tid]
        prior = word.write
        if prior is not None and prior.tid != tid \
                and not self._hb(prior, tid, clock):
            self._race(prior, acc, key)
        for rtid, read in word.reads.items():
            if rtid != tid and not self._hb(read, tid, clock):
                self._race(read, acc, key)
        word.write = acc
        word.reads.clear()
        word.amo_clock = None  # a plain write demotes an atomic word

    def _on_read(self, word: _Word, acc: _Access, key: Tuple,
                 remote_spm: bool) -> None:
        tid, clock = acc.tid, self._clocks[acc.tid]
        if word.amo_clock is not None:
            # Atomic word: single-copy atomic read acquires its clock.
            self._join(clock, word.amo_clock)
            acc.atomic = True
        prior = word.write
        if prior is None:
            if remote_spm and self.config.uninit and not word.uninit_reported:
                word.uninit_reported = True
                self._record(
                    "uninit-read",
                    "remote scratchpad word read before any write",
                    ("uninit-read", _site(acc)),
                    addr=_format_key(key), access=_describe(acc))
        elif not prior.atomic and prior.tid != tid \
                and not self._hb(prior, tid, clock):
            self._race(prior, acc, key)
        word.reads[tid] = acc

    # -- atomics (serialized at the owning bank, via the memsys hook) --------

    def amo_issue(self, node: Tuple[int, int], op: Any) -> None:
        """Core-side handoff: remember the op until the bank serializes it."""
        self._amo_ops[self._tids[node]] = op

    def amo_serialized(self, node: Tuple[int, int], dest: Any,
                       time: float) -> None:
        """The AMO's functional point: acquire + check + release."""
        self.ops_checked += 1
        tid = self._tids[node]
        op = self._amo_ops[tid]
        self._amo_ops[tid] = None
        key = ("D", dest.cell_xy[0], dest.cell_xy[1], dest.mem_addr >> 2)
        clock = self._clocks[tid]
        acc = _Access(tid, self._next_epoch(tid), True, node, op,
                      getattr(op, "addr", 0), True, True,
                      getattr(op, "racy", False), time)
        if key in self._allowed:
            return
        word = self._shadow.get(key)
        if word is None:
            word = self._shadow[key] = _Word()
        self._check_ranges(key, acc)
        if word.amo_clock is not None:
            self._join(clock, word.amo_clock)
        prior = word.write
        if prior is not None and not prior.atomic and prior.tid != tid \
                and not self._hb(prior, tid, clock):
            self._race(prior, acc, key)
        for rtid, read in word.reads.items():
            if rtid != tid and not read.atomic \
                    and not self._hb(read, tid, clock):
                self._race(read, acc, key)
        word.write = acc
        word.reads.clear()
        release = list(clock)
        if word.amo_clock is None:
            word.amo_clock = release
        else:
            self._join(word.amo_clock, release)
        if self._xshard_cell is not None:
            acc.clock = list(clock)
            self._sync_log.append(
                {"time": time, "key": [key[1], key[2], key[3]],
                 "tid": tid, "epoch": acc.epoch, "clock": list(clock)})

    def xshard_amo_out(self, node: Tuple[int, int], dest: Any, kind: str,
                       seq: int, time: float) -> None:
        """Issuing-side record of a cross-Cell AMO (PDES shards only).

        The functional serialization happens at the *owning* shard, whose
        checker has no vector clock for this tile -- so neither side can
        check it live.  Instead the issuer snapshots its clock here, the
        owner logs the serialization order (the channel's ``served_amos``),
        and the coordinator's offline stitcher replays both.
        """
        tid = self._tids[node]
        op = self._amo_ops[tid]
        self._amo_ops[tid] = None
        if self._xshard_cell is None:
            return
        self.ops_checked += 1
        key = ("D", dest.cell_xy[0], dest.cell_xy[1], dest.mem_addr >> 2)
        if key in self._allowed:
            return
        acc = _Access(tid, self._next_epoch(tid), True, node, op,
                      getattr(op, "addr", 0), True, True,
                      getattr(op, "racy", False), time)
        acc.clock = list(self._clocks[tid])
        rec = self._export_acc(key, acc)
        rec["seq"] = seq
        rec["kind"] = kind
        self._out_amos.append(rec)

    # -- ordering edges ------------------------------------------------------

    def fence(self, node: Tuple[int, int], time: float) -> None:
        """A fence (or the kernel-end drain) releases every remote access."""
        tid = self._tids[node]
        for acc in self._pending_stores[tid]:
            acc.released = True
            acc.released_at = time
        for acc in self._pending_loads[tid]:
            acc.released = True
            acc.released_at = time
        del self._pending_stores[tid][:]
        del self._pending_loads[tid][:]

    def pim_issue(self, node: Tuple[int, int], op: Any,
                  time: float) -> None:
        """A fire-and-forget PIM command left in flight by ``node``."""
        self.ops_checked += 1
        self._pending_pim[self._tids[node]].append(op)

    def pim_fence(self, node: Tuple[int, int], time: float) -> None:
        """A ``pim_fence`` completes every PIM command the tile issued.

        This is the *only* completion edge for PIM commands: ordinary
        fences and barriers do not cover the PIM window (the command ack
        returns through the response network like a store ack, but
        nothing in the memory model waits for it implicitly).
        """
        del self._pending_pim[self._tids[node]][:]

    def kernel_end(self, node: Tuple[int, int], time: float) -> None:
        pending = self._pending_pim[self._tids[node]]
        if pending:
            op = pending[-1]
            self._record(
                "pim-unfenced-commands",
                f"tile {node} finished with {len(pending)} PIM command(s) "
                f"never completed by a pim_fence; their bank writes are "
                f"not ordered before anything that follows the kernel",
                ("pim-unfenced-commands", _site_op(op)))
            del pending[:]
        self.fence(node, time)

    def barrier_join(self, group: Any, node: Tuple[int, int],
                     time: float) -> None:
        tid = self._tids.get(node)
        members = getattr(group, "members", ())
        if tid is None or node not in members:
            if self.config.barriers:
                self._record(
                    "barrier-non-member",
                    f"tile {node} joined a barrier group it is not a "
                    f"member of (members: {list(members)[:8]})",
                    ("barrier-non-member", node))
            return
        # Loads are consumed (complete) by the join; stores need a fence.
        for acc in self._pending_loads[tid]:
            acc.released = True
            acc.released_at = time
        del self._pending_loads[tid][:]
        pend = self._barrier_pending.setdefault(id(group), {})
        pend[tid] = list(self._clocks[tid])

    def barrier_release(self, group: Any) -> None:
        pend = self._barrier_pending.pop(id(group), None)
        if not pend:
            return
        merged = [0] * len(self._clocks[0])
        for published in pend.values():
            self._join(merged, published)
        for tid in pend:
            self._join(self._clocks[tid], merged)

    def launch_started(self, handle: Any) -> None:
        """Host -> tiles edge: machine state set up before the launch."""
        host = self._clocks[HOST]
        host[HOST] += 1
        for core in handle.cores:
            tid = self._tids[core.node]
            self._join(self._clocks[tid], host)

    # -- host-side accesses --------------------------------------------------

    def _host_access(self, addr: int, node: Tuple[int, int],
                     write: bool) -> None:
        key = self._canon(addr, node)
        if key in self._allowed:
            return
        acc = _Access(HOST, self._next_epoch(HOST), True, None, None, addr,
                      write, False, False,
                      self._machine.sim.now if self._machine else 0.0)
        word = self._shadow.get(key)
        if word is None:
            word = self._shadow[key] = _Word()
        if write:
            self._on_write(word, acc, key)
        else:
            self._on_read(word, acc, key, remote_spm=False)
        if self._xshard_cell is not None and key[0] == "D":
            acc.clock = list(self._clocks[HOST])

    def host_write(self, addr: int, node: Tuple[int, int]) -> None:
        self._host_access(addr, node, True)

    def host_read(self, addr: int, node: Tuple[int, int]) -> None:
        self._host_access(addr, node, False)

    def host_range(self, cell_xy: Tuple[int, int], offset: int,
                   nbytes: int, write: bool) -> None:
        """A bulk host transfer (DMA) over a Cell-DRAM range.

        Recorded as one range access: later tile accesses in the range
        check against it lazily, and words already in the shadow are
        checked now.
        """
        acc = _Access(HOST, self._next_epoch(HOST), True, None, None,
                      offset, write, False, False,
                      self._machine.sim.now if self._machine else 0.0)
        lo, hi = offset >> 2, (offset + max(nbytes, 4) + 3) >> 2
        self._host_ranges.append((cell_xy, lo, hi, write, acc))
        host_clock = self._clocks[HOST]
        for key, word in self._shadow.items():
            if key[0] != "D" or (key[1], key[2]) != cell_xy \
                    or not lo <= key[3] < hi or key in self._allowed:
                continue
            prior = word.write
            if prior is not None and prior.tid != HOST \
                    and not self._hb(prior, HOST, host_clock):
                self._race(prior, acc, key)
            if write:
                for rtid, read in word.reads.items():
                    if rtid != HOST and not self._hb(read, HOST, host_clock):
                        self._race(read, acc, key)

    def _check_ranges(self, key: Tuple, acc: _Access) -> None:
        """Race-check one tile access against recorded host DMA ranges."""
        if not self._host_ranges or key[0] != "D":
            return
        clock = self._clocks[acc.tid]
        for cell_xy, lo, hi, range_write, host_acc in self._host_ranges:
            if (key[1], key[2]) != cell_xy or not lo <= key[3] < hi:
                continue
            if not (range_write or acc.write):
                continue
            if not self._hb(host_acc, acc.tid, clock):
                self._race(host_acc, acc, key)

    # -- cross-shard export (PDES, see sanitize/xshard.py) -------------------

    def enable_xshard(self, cell_xy: Tuple[int, int]) -> None:
        """Turn on cross-shard recording for the shard owning ``cell_xy``.

        Costs one clock copy per Cell-DRAM access and a log entry per
        AMO serialization -- only PDES shards pay it.
        """
        self._xshard_cell = tuple(cell_xy)

    def _export_acc(self, key: Tuple, acc: _Access) -> Dict[str, Any]:
        return {
            "key": [key[1], key[2], key[3]],
            "tid": acc.tid,
            "epoch": acc.epoch,
            "time": acc.time,
            "write": acc.write,
            "atomic": acc.atomic,
            "racy": acc.racy,
            "released_at": acc.released_at if acc.released else None,
            "clock": acc.clock,
            "site": list(_site(acc)),
            "desc": _describe(acc),
        }

    def export_xshard(self, inbound_words: Any,
                      served_amos: Any) -> Dict[str, Any]:
        """The shard's deterministic contribution to the offline
        cross-shard happens-before pass.

        ``inbound_words`` / ``served_amos`` come from the shard's
        :class:`~repro.pdes.channel.ShardChannel` (the owner side knows
        which of its words foreigners touched, and in what order it
        serialized their AMOs).  Exported are the shadow's surviving
        access records on foreign-Cell words (this shard's outbound
        traffic) and on own-Cell words foreigners touched -- last write
        plus last read per tile, the same granularity the live checker
        keeps, which is a documented limit of the stitched pass too.
        """
        cell = self._xshard_cell
        foreign: List[Dict[str, Any]] = []
        home: List[Dict[str, Any]] = []
        inbound = set(inbound_words)
        for key, word in sorted(self._shadow.items()):
            if key[0] != "D":
                continue
            if (key[1], key[2]) != cell:
                out = foreign
            elif (key[1], key[2], key[3]) in inbound:
                out = home
            else:
                continue
            if word.write is not None:
                out.append(self._export_acc(key, word.write))
            for acc in word.reads.values():
                out.append(self._export_acc(key, acc))
        return {
            "cell": list(cell) if cell is not None else None,
            "ntids": len(self._clocks),
            "foreign": foreign,
            "home": home,
            "out_amos": list(self._out_amos),
            "sync_log": list(self._sync_log),
            "served_amos": [[t, list(src), seq, kind]
                            for t, src, seq, kind in served_amos],
        }

    # -- end of run ----------------------------------------------------------

    def finalize(self, now: Optional[float] = None) -> None:
        """Join the host with every tile and run the end-of-run checks.

        Safe to call after every ``Session.run`` batch.
        """
        host = self._clocks[HOST]
        for tid in range(1, len(self._clocks)):
            self._join(host, self._clocks[tid])
        if self.config.barriers:
            for group, label in self._barriers:
                pending = getattr(group, "_pending", None)
                if not pending:
                    continue
                arrived = sorted(pending)
                missing = sorted(set(group.members) - set(arrived))
                self._record(
                    "barrier-deadlock",
                    f"barrier {label} epoch {group.epochs} incomplete: "
                    f"{len(arrived)}/{len(group.members)} joined, waiting "
                    f"on {missing[:8]}",
                    ("barrier-deadlock", id(group), group.epochs))

    # -- results -------------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.counts

    def report(self) -> Dict[str, Any]:
        from .report import sanitize_report

        return sanitize_report(self)

    def summary(self) -> str:
        from .report import format_report, sanitize_report

        return format_report(sanitize_report(self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "clean" if self.clean else \
            ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"Sanitizer({self.ops_checked} ops checked, {state})"
