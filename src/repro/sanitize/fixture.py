"""Diagnostic kernels with *seeded* synchronization bugs.

``FIXTURE`` is the kernel behind ``repro sanitize fixture``: in its
default (racy) mode it commits three textbook violations of the HB
memory model, each of which the sanitizer must flag --

1. every tile stores to the same Local-DRAM word with no ordering at
   all (a store-store race);
2. tile 0 publishes a word and joins the barrier *without fencing*, so
   the non-blocking store is still in flight when tile 1 reads it after
   the barrier (the fence-before-barrier discipline, Section IV);
3. tile 0 reads a neighbour scratchpad word that no tile ever wrote.

With ``{"clean": True}`` the same kernel runs the corrected versions
(disjoint words, fence before the barrier, write-then-sync-then-read)
and must produce zero findings -- the CI smoke job checks both modes.

``DEADLOCK_FIXTURE`` additionally leaves one tile out of the barrier,
driving the machine into the deadlock diagnostic so tests can assert
the sanitizer's end-of-run barrier check fires.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from ..isa.context import KernelContext
from ..isa.program import kernel
from ..kernels.base import tile_id

#: Local-DRAM offsets, clear of the runtime's reserved page and of the
#: suite kernels' Layout base (0x10000).
SHARED_OFF = 0x8000  # the word every tile races on
STAGE_OFF = 0x8100  # the producer/consumer handoff word
SPREAD_OFF = 0x8200  # per-tile words for the clean variant
SPM_OFF = 0x800  # scratchpad handoff word (clean mode writes it)
SPM_UNWRITTEN_OFF = 0xc00  # scratchpad word nobody ever writes


def fixture_args(clean: bool = False) -> Dict[str, Any]:
    return {"clean": clean}


@kernel("SanFixture", dwarf="diagnostic", category="fixture")
def FIXTURE(t: KernelContext, args: Optional[Dict[str, Any]]) -> Iterator:
    clean = bool(args and args.get("clean"))
    tid = tile_id(t)
    v = t.reg()
    yield t.alu(dst=v)

    # 1. All tiles hit one word (racy) vs. one word per tile (clean).
    if clean:
        yield t.store(t.local_dram(SPREAD_OFF + 4 * tid), srcs=[v])
    else:
        yield t.store(t.local_dram(SHARED_OFF), srcs=[v])

    # 2. Producer/consumer across the barrier; the racy mode forgets
    # the fence, so the store is unreleased when the consumer reads.
    if tid == 0:
        yield t.store(t.local_dram(STAGE_OFF), srcs=[v])
        if clean:
            yield t.fence()
    yield t.barrier()
    if tid == 1:
        yield t.load(t.local_dram(STAGE_OFF))

    # 3. Remote scratchpad read: of a word tile 1 published (clean) or
    # of a word nobody ever wrote (racy).
    if clean:
        if tid == 1:
            yield t.store(t.spm(SPM_OFF), srcs=[v])
        yield t.barrier()  # SPM stores are pipeline-local: no fence needed
        if tid == 0:
            yield t.load(t.tile_spm_ptr(1, 0, SPM_OFF))
    elif tid == 0:
        yield t.load(t.tile_spm_ptr(1, 0, SPM_UNWRITTEN_OFF))

    yield t.fence()
    yield t.barrier()


@kernel("SanDeadlockFixture", dwarf="diagnostic", category="fixture")
def DEADLOCK_FIXTURE(t: KernelContext, args: Any) -> Iterator:
    """Tile 0 skips the barrier; everyone else waits forever."""
    v = t.reg()
    yield t.alu(dst=v)
    if tile_id(t) != 0:
        yield t.barrier()
