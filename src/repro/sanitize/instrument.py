"""Wire a :class:`Sanitizer` into a live machine.

:func:`attach` is the single place that knows which components carry
``_san`` hooks: the tile cores (every load/store/vload/AMO/fence plus
the kernel-end drain), the memory system (AMO bank serialization, host
poke/peek), the DMA helpers, and -- at launch time, via
``sim.sanitizer`` -- the barrier groups built by ``partition_cell`` and
the launch edges from ``Cell.launch``.

Attach before launching kernels; detaching is not supported -- build a
fresh machine (or ``Session``) for an unsanitized run.  The sanitizer
is purely observational: sanitize-on runs are cycle-identical to
sanitize-off runs (pinned by tests/test_sanitize.py).
"""

from __future__ import annotations

from typing import Any


def attach(machine: Any, sanitizer: Any) -> Any:
    """Instrument ``machine`` with ``sanitizer``; returns the sanitizer."""
    sim = machine.sim
    if getattr(sim, "sanitizer", None) is not None:
        raise RuntimeError("machine already has a sanitizer attached")
    sanitizer.bind(machine)
    sim.sanitizer = sanitizer
    for core in machine.cores.values():
        core._san = sanitizer
    machine.memsys._san = sanitizer
    return sanitizer
