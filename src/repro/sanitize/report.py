"""Text and JSON rendering of sanitizer results."""

from __future__ import annotations

from typing import Any, Dict


def sanitize_report(san: Any) -> Dict[str, Any]:
    """JSON-able report for one sanitized run."""
    return {
        "clean": san.clean,
        "ops_checked": san.ops_checked,
        "counts": dict(sorted(san.counts.items())),
        "findings": [f.to_dict() for f in san.findings],
        "findings_recorded": len(san.findings),
    }


def _access_line(label: str, access: Dict[str, Any],
                 mark_unfenced: bool = False) -> str:
    tile = access.get("tile")
    where = "host" if tile == "host" else f"tile ({tile[0]},{tile[1]})"
    line = f"    {label}: {where} @ cycle {access['time']:.0f}  {access['op']}"
    if mark_unfenced and not access.get("released", True):
        line += "  [never fenced]"
    return line


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable sanitizer report."""
    lines = []
    if report["clean"]:
        lines.append(f"sanitize: clean "
                     f"({report['ops_checked']} memory ops checked)")
        return "\n".join(lines)
    total = sum(report["counts"].values())
    counts = ", ".join(f"{k} x{v}" for k, v in report["counts"].items())
    lines.append(f"sanitize: {total} finding(s) "
                 f"({counts}; {report['ops_checked']} memory ops checked)")
    for i, finding in enumerate(report["findings"], 1):
        head = f"  #{i} {finding['kind']}: {finding['detail']}"
        if finding.get("count", 1) > 1:
            head += f"  (x{finding['count']} occurrences)"
        lines.append(head)
        if finding.get("addr"):
            lines.append(f"    word: {finding['addr']}")
        if finding.get("access"):
            lines.append(_access_line("access", finding["access"]))
        if finding.get("other"):
            lines.append(_access_line("conflicts with", finding["other"],
                                      mark_unfenced=True))
    recorded = report["findings_recorded"]
    if total > recorded and recorded:
        lines.append(f"  ... further occurrences collapsed into the "
                     f"{recorded} site(s) above")
    return "\n".join(lines)
