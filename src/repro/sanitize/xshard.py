"""Cross-shard sanitizer stitching: the offline PDES happens-before pass.

Each PDES shard runs a full per-Cell :class:`~repro.sanitize.checker.Sanitizer`,
but its vector clocks only name the tiles it simulates -- conflicts
*between* shards (a producer Cell storing into a consumer Cell's DRAM)
were invisible.  This module stitches the per-shard happens-before
graphs through the cross-Cell channel's own synchronization points:

* every shard exports its surviving shadow records on foreign-Cell words
  (its outbound traffic) and on own-Cell words foreigners touched, each
  with a point-in-time vector clock and the fence time that released it;
* cross-Cell AMOs -- the only cross-shard release/acquire primitive --
  are exported twice: the issuer snapshots its clock at issue
  (``Sanitizer.xshard_amo_out``), and the owner logs the serialization
  order and time (``ShardChannel.served_amos``);
* this pass replays all AMO serializations (cross-Cell and Cell-local)
  in one global time order, building a *composite clock* per atomic
  word: a ``{cell -> vector clock}`` map that accumulates every clock
  released into the word, transitively through chains of acquisitions.

An access ``Q`` then inherits the composite knowledge of every
acquisition its own clock dominates, and ``P happens-before Q`` iff
``P`` was released by ``Q``'s time and ``Q``'s composite clock covers
``P``'s epoch in ``P``'s shard.  Conflicting cross-shard accesses with
no such path either way are ``xcell-race`` findings.

Granularity caveat (same as the live checker's shadow): only the last
write and the last read per tile of each word survive to the export, so
an overwritten racy access can go unreported.  Everything here is a pure
function of the deterministic shard payloads -- the stitched report is
itself bit-identical across worker counts and window sizes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .checker import HOST, _format_key

#: Cap on recorded findings (occurrence counting continues past it).
MAX_FINDINGS = 64


def _merge(into: Dict[int, List[int]], cell: int, vec: List[int]) -> None:
    have = into.get(cell)
    if have is None:
        into[cell] = list(vec)
        return
    if len(vec) > len(have):
        have.extend([0] * (len(vec) - len(have)))
    for i, v in enumerate(vec):
        if v > have[i]:
            have[i] = v


class _Stitcher:
    def __init__(self, exports: List[Dict[str, Any]]) -> None:
        self.exports = exports
        self.cells = [tuple(e["cell"]) for e in exports]
        self.index_of = {xy: i for i, xy in enumerate(self.cells)}
        #: Per-cell acquisition history: (tid, epoch, composite snapshot).
        self.acq: List[List[Tuple[int, int, Dict[int, List[int]]]]] = \
            [[] for _ in exports]
        self.events = 0
        self._replay()

    # -- the global AMO serialization replay --------------------------------

    def _replay(self) -> None:
        events: List[Tuple] = []
        out_by: List[Dict[int, Dict[str, Any]]] = []
        for i, export in enumerate(self.exports):
            out_by.append({rec["seq"]: rec for rec in export["out_amos"]})
        for j, export in enumerate(self.exports):
            for t, src, seq, _kind in export["served_amos"]:
                i = self.index_of.get(tuple(src))
                rec = out_by[i].get(seq) if i is not None else None
                if rec is None:
                    continue  # suppressed (allow-listed) at the issuer
                # Served foreign AMOs sort *before* same-time local ones:
                # a poll that functionally read the new value at the same
                # cycle must see the release.
                events.append((t, 0, j, i, rec["tid"], rec["epoch"],
                               tuple(rec["key"]), rec["clock"]))
            for rec in export["sync_log"]:
                events.append((rec["time"], 1, j, j, rec["tid"],
                               rec["epoch"], tuple(rec["key"]),
                               rec["clock"]))
        events.sort(key=lambda e: e[:6])
        self.events = len(events)
        word_cc: Dict[Tuple, Dict[int, List[int]]] = {}
        acq = self.acq
        for _t, _prio, _owner, i, tid, epoch, key, clock in events:
            wcc = word_cc.setdefault(key, {})
            if wcc:  # acquire: remember what this tile learned, and when
                acq[i].append((tid, epoch,
                               {ci: list(v) for ci, v in wcc.items()}))
            release: Dict[int, List[int]] = {}
            _merge(release, i, clock)
            for t2, e2, snap in acq[i]:
                # Everything this cell's tiles acquired *and* this clock
                # dominates travels with the release (transitivity).
                if t2 < len(clock) and clock[t2] >= e2:
                    for ci, v in snap.items():
                        _merge(release, ci, v)
            for ci, v in release.items():
                _merge(wcc, ci, v)

    # -- happens-before over stitched clocks --------------------------------

    def composite(self, cell: int, clock: List[int]) -> Dict[int, List[int]]:
        """All foreign knowledge an access with ``clock`` in ``cell`` has:
        the merge of every same-cell acquisition it dominates."""
        out: Dict[int, List[int]] = {}
        for tid, epoch, snap in self.acq[cell]:
            if tid < len(clock) and clock[tid] >= epoch:
                for ci, v in snap.items():
                    _merge(out, ci, v)
        return out

    def hb(self, p: Dict[str, Any], pcell: int,
           q: Dict[str, Any], qcell: int) -> bool:
        """True when exported access ``p`` happens-before ``q``."""
        if p["tid"] == HOST and p["time"] <= 0.0:
            # Pre-launch host setup: the coordinator builds and pokes
            # every shard before any of them runs a cycle.
            return True
        if not p["atomic"]:
            released_at = p["released_at"]
            if released_at is None or released_at > q["time"]:
                return False
        qclock = q["clock"]
        if qclock is None:
            return False
        if pcell == qcell:
            return p["tid"] < len(qclock) and \
                qclock[p["tid"]] >= p["epoch"]
        vec = self.composite(qcell, qclock).get(pcell)
        return vec is not None and p["tid"] < len(vec) and \
            vec[p["tid"]] >= p["epoch"]


def _conflict(a: Dict[str, Any], acell: int,
              b: Dict[str, Any], bcell: int) -> bool:
    if not (a["write"] or b["write"]):
        return False
    if a["atomic"] and b["atomic"]:
        return False
    if a["racy"] or b["racy"]:
        return False
    if acell == bcell:
        if a["tid"] == b["tid"]:
            return False
        # Same-shard pairs were fully checked live unless one side is an
        # outbound AMO (absent from the issuer's shadow).
        if "seq" not in a and "seq" not in b:
            return False
    if a["tid"] == HOST and b["tid"] == HOST:
        return False
    return True


def stitch_shards(payloads: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Run the cross-shard happens-before pass over collected payloads.

    Returns a JSON-able report (``clean``, ``counts``, ``findings``,
    coverage stats), or ``None`` when the payloads carry no xshard
    exports (sanitize was off).
    """
    exports = [p.get("xshard") for p in payloads]
    if any(e is None for e in exports):
        return None
    stitcher = _Stitcher(exports)
    by_word: Dict[Tuple, List[Tuple[int, Dict[str, Any]]]] = {}
    for i, export in enumerate(exports):
        for rec in export["foreign"]:
            by_word.setdefault(tuple(rec["key"]), []).append((i, rec))
        for rec in export["home"]:
            by_word.setdefault(tuple(rec["key"]), []).append((i, rec))
        for rec in export["out_amos"]:
            by_word.setdefault(tuple(rec["key"]), []).append((i, rec))
    counts: Dict[str, int] = {}
    findings: List[Dict[str, Any]] = []
    by_sig: Dict[Tuple, Dict[str, Any]] = {}
    pairs = 0
    for key in sorted(by_word):
        recs = by_word[key]
        for x in range(len(recs)):
            icell, a = recs[x]
            for y in range(x + 1, len(recs)):
                jcell, b = recs[y]
                if not _conflict(a, icell, b, jcell):
                    continue
                pairs += 1
                if stitcher.hb(a, icell, b, jcell) or \
                        stitcher.hb(b, jcell, a, icell):
                    continue
                # Report with the earlier access as "prior".
                p, pcell, q, qcell = a, icell, b, jcell
                if (q["time"], qcell) < (p["time"], pcell):
                    p, pcell, q, qcell = b, jcell, a, icell
                kinds = ("atomic" if p["atomic"] else
                         ("store" if p["write"] else "load"),
                         "atomic" if q["atomic"] else
                         ("store" if q["write"] else "load"))
                detail = f"{kinds[0]}-{kinds[1]}"
                if p["write"] and p["released_at"] is None \
                        and p["tid"] != HOST and not p["atomic"]:
                    detail += " (prior store never fenced)"
                counts["xcell-race"] = counts.get("xcell-race", 0) + 1
                sig = ("xcell-race", tuple(p["site"]), tuple(q["site"]))
                known = by_sig.get(sig)
                if known is not None:
                    known["count"] += 1
                    continue
                access = dict(q["desc"])
                access["cell"] = list(stitcher.cells[qcell])
                other = dict(p["desc"])
                other["cell"] = list(stitcher.cells[pcell])
                finding = {
                    "kind": "xcell-race", "detail": detail,
                    "addr": _format_key(("D",) + key),
                    "access": access, "other": other, "count": 1,
                }
                by_sig[sig] = finding
                if len(findings) < MAX_FINDINGS:
                    findings.append(finding)
    return {
        "clean": not counts,
        "counts": counts,
        "findings": findings,
        "words": len(by_word),
        "pairs": pairs,
        "sync_events": stitcher.events,
    }
