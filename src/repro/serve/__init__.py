"""repro.serve: simulation-as-a-service.

The sweep orchestrator (:mod:`repro.orch`) runs one plan and exits;
this package keeps its three assets -- the worker pool, the
content-addressed result store, and the JSONL journal -- alive behind
a small daemon, so many clients share one warm backend:

* :mod:`scheduler` -- the asyncio scheduler owning pool + cache +
  journal: priority queue, per-client quotas, cross-client dedup,
  journal recovery (:class:`Scheduler`, :class:`ServeConfig`);
* :mod:`daemon` -- the NDJSON-over-TCP front end
  (:class:`Daemon`, :class:`BackgroundDaemon`, :func:`run_daemon`);
* :mod:`client` -- the synchronous :class:`Client` (and the
  :class:`AsyncClient` transport) the ``repro sweep``/``repro
  submit`` thin clients use;
* :mod:`protocol` -- the wire format and the machine-checkable event
  schema (:func:`validate_event`);
* :mod:`quotas` -- per-client identity, priority and in-flight budget.

``repro serve`` starts the daemon; ``repro sweep --server HOST:PORT``
and ``repro submit`` talk to it.  ``Client`` and ``ServeConfig`` are
re-exported from the package root.
"""

from .client import AsyncClient, Client, ConnectionLost, ServerError
from .daemon import BackgroundDaemon, Daemon, run_daemon
from .protocol import (
    EVENT_SCHEMA,
    PROTOCOL_VERSION,
    parse_address,
    validate_event,
    validate_events,
)
from .quotas import ClientState, QuotaError, QuotaPolicy
from .scheduler import Scheduler, ServeConfig

__all__ = [
    "AsyncClient",
    "BackgroundDaemon",
    "Client",
    "ClientState",
    "ConnectionLost",
    "Daemon",
    "EVENT_SCHEMA",
    "PROTOCOL_VERSION",
    "QuotaError",
    "QuotaPolicy",
    "Scheduler",
    "ServeConfig",
    "ServerError",
    "parse_address",
    "run_daemon",
    "validate_event",
    "validate_events",
]
