"""Client API of the serve daemon.

:class:`AsyncClient` is the transport: one connection, a reader task
that pairs responses to requests by ``id`` and queues pushed events.
:class:`Client` is the public face -- synchronous wrappers driving a
private event loop, so callers (the ``repro sweep`` thin client,
notebooks, scripts) never touch asyncio:

>>> with Client(address="127.0.0.1:9178") as client:
...     sub = client.submit(jobs)
...     for event in client.stream(sub["sub"]):
...         print(event)
...     results = client.results(sub["sub"])

Results come back as envelopes: the *payload* is byte-identical to
what the in-process pool computes (that is pinned by tests), and the
*provenance* (cache hit/miss/dedup, code fingerprint, server run id)
rides alongside it.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..orch.job import Job
from .protocol import PROTOCOL_VERSION, decode, encode, parse_address

#: Default seconds a synchronous call waits for the daemon before
#: giving up (results(wait=True) uses its own, per-call timeout).
DEFAULT_TIMEOUT = 30.0

_DEFAULT = object()  # "use self.timeout" sentinel


class ServerError(RuntimeError):
    """The daemon answered ``ok: false`` (quota, unknown sub, bad op)."""


class ConnectionLost(ConnectionError):
    """The daemon hung up while requests or streams were outstanding."""


class AsyncClient:
    """The asyncio transport; prefer :class:`Client` unless you already
    live on an event loop."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._events: "asyncio.Queue[Optional[Dict[str, Any]]]" = \
            asyncio.Queue()
        self._ids = itertools.count(1)
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    async def request(self, op: str, **params: Any) -> Dict[str, Any]:
        if self._writer is None or self._closed:
            raise ConnectionLost("not connected")
        rid = next(self._ids)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        record = {"id": rid, "op": op}
        record.update(params)
        self._writer.write(encode(record))
        await self._writer.drain()
        try:
            response = await fut
        finally:
            self._pending.pop(rid, None)
        if not response.get("ok"):
            raise ServerError(response.get("error", "request failed"))
        return response

    async def next_event(self) -> Dict[str, Any]:
        """The next pushed event (``watch`` first); raises
        :class:`ConnectionLost` when the daemon hangs up."""
        event = await self._events.get()
        if event is None:
            raise ConnectionLost("server closed the connection")
        return event

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    record = decode(line)
                except ValueError:
                    continue  # tolerate garbage rather than killing all
                # Responses always carry "id"; pushed events never do
                # (a response may still contain an "event" field, e.g.
                # cancel echoes its journal record).
                if "id" in record:
                    fut = self._pending.get(record["id"])
                    if fut is not None and not fut.done():
                        fut.set_result(record)
                elif "event" in record:
                    self._events.put_nowait(record)
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            self._fail_pending()

    def _fail_pending(self) -> None:
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(
                    ConnectionLost("server closed the connection"))
        self._pending.clear()
        self._events.put_nowait(None)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


AddressLike = Union[str, Tuple[str, int]]


class Client:
    """Synchronous client of a ``repro serve`` daemon.

    ``address`` is ``"host:port"`` (or a tuple); ``name``/``priority``
    are this client's identity at the server.  Construction connects
    and performs the ``hello`` handshake; use as a context manager (or
    call :meth:`close`) to hang up.
    """

    def __init__(self, address: AddressLike, name: Optional[str] = None,
                 priority: int = 0,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        if isinstance(address, str):
            host, port = parse_address(address)
        else:
            host, port = address[0], int(address[1])
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._async = AsyncClient(host, port)
        self._call(self._async.connect())
        self.server = self._call(self._async.request(
            "hello", name=name, priority=priority))
        if self.server.get("protocol") != PROTOCOL_VERSION:
            self.close()
            raise ServerError(
                f"protocol mismatch: server speaks "
                f"{self.server.get('protocol')}, client {PROTOCOL_VERSION}")
        self.client_id = self.server["client"]
        self._watching = False
        self._closed = False

    # -- plumbing -----------------------------------------------------------

    def _call(self, coro, timeout: Any = _DEFAULT) -> Any:
        if timeout is _DEFAULT:
            timeout = self.timeout
        if timeout is not None:
            coro = asyncio.wait_for(coro, timeout)
        return self._loop.run_until_complete(coro)

    def _request(self, op: str, timeout: Any = _DEFAULT,
                 **params: Any) -> Dict[str, Any]:
        return self._call(self._async.request(op, **params), timeout)

    # -- the API ------------------------------------------------------------

    def submit(self, jobs: List[Union[Job, Dict[str, Any]]],
               use_cache: bool = True) -> Dict[str, Any]:
        """Submit a plan; returns the admission record (``sub`` id plus
        per-job cache keys/statuses, aligned with ``jobs``)."""
        wire = [job.to_wire() if isinstance(job, Job) else dict(job)
                for job in jobs]
        return self._request("submit", jobs=wire, use_cache=use_cache)

    def status(self, sub: str) -> Dict[str, Any]:
        return self._request("status", sub=sub)

    def results(self, sub: str, wait: bool = True,
                timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """Result envelopes aligned with the submitted jobs; with
        ``wait`` (default) blocks until the submission completes
        (``timeout=None`` = forever)."""
        params: Dict[str, Any] = {"sub": sub, "wait": wait}
        if timeout is not None:
            params["timeout"] = timeout
        if not wait:
            call_timeout: Any = _DEFAULT
        elif timeout is not None:
            call_timeout = timeout + self.timeout  # server enforces first
        else:
            call_timeout = None
        response = self._request("results", timeout=call_timeout, **params)
        return response["results"]

    def result(self, cache_key: str) -> Dict[str, Any]:
        return self._request("result", cache_key=cache_key)

    def cancel(self, sub: str) -> Dict[str, Any]:
        return self._request("cancel", sub=sub)

    def stats(self) -> Dict[str, Any]:
        return self._request("stats")

    def ping(self) -> bool:
        return bool(self._request("ping").get("pong"))

    def watch(self) -> None:
        """Start the pushed event stream on this connection."""
        if not self._watching:
            self._request("watch")
            self._watching = True

    def next_event(self, timeout: Any = _DEFAULT) -> Dict[str, Any]:
        """One pushed event (implies :meth:`watch`)."""
        self.watch()
        return self._call(self._async.next_event(), timeout)

    def stream(self, sub: Optional[str] = None,
               timeout: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Yield events as they arrive; with ``sub``, stops after that
        submission's ``sub-done`` (else iterate until you break)."""
        self.watch()
        while True:
            event = self._call(self._async.next_event(), timeout)
            yield event
            if (sub is not None and event.get("event") == "sub-done"
                    and event.get("sub") == sub):
                return

    def shutdown_server(self) -> None:
        self._request("shutdown")

    def close(self) -> None:
        if getattr(self, "_closed", True):
            return
        self._closed = True
        try:
            self._call(self._async.close(), timeout=5.0)
        except Exception:  # noqa: BLE001 -- closing is best-effort
            pass
        finally:
            self._loop.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover -- gc-order dependent
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass
