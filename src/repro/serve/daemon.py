"""The network front end: NDJSON over ``asyncio.start_server``.

One :class:`Daemon` owns one :class:`~.scheduler.Scheduler` and a TCP
listener.  Each connection is a request loop (one JSON object per
line, see :mod:`.protocol`); all writes -- responses and pushed events
alike -- go through a per-connection outbox task, so a slow client
never interleaves bytes or blocks the scheduler.

:class:`BackgroundDaemon` runs the whole thing on a thread with its
own event loop; it is what the tests and the in-process ``--server
auto`` escape hatch use, and doubles as the reference for embedding
the daemon in a larger program.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional, Set, Tuple

from .protocol import MAX_LINE_BYTES, OPS, PROTOCOL_VERSION, decode, encode
from .quotas import QuotaError
from .scheduler import Scheduler, ServeConfig


class Daemon:
    """Scheduler + listener; drive with ``start``/``wait_stopped``/``stop``."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.scheduler = Scheduler(self.config)
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: Set["_Connection"] = set()
        self._stop_event = asyncio.Event()
        self._stopped = False

    async def start(self) -> Tuple[str, int]:
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def wait_stopped(self) -> None:
        await self._stop_event.wait()

    def request_stop(self) -> None:
        """Thread-safe-from-the-loop stop signal (``shutdown`` op,
        signal handlers, :class:`BackgroundDaemon`)."""
        self._stop_event.set()

    async def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._stop_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._conns):
            await conn.close()
        await self.scheduler.shutdown()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Connection(self, reader, writer)
        self._conns.add(conn)
        try:
            await conn.run()
        finally:
            self._conns.discard(conn)
            await conn.close()


class _Connection:
    """One client connection: request loop + outbox writer task."""

    def __init__(self, daemon: Daemon, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.daemon = daemon
        self.reader = reader
        self.writer = writer
        self.client_id: Optional[str] = None
        self._watch_token: Optional[int] = None
        self._outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self._sender = asyncio.get_running_loop().create_task(
            self._drain_outbox())
        self._closed = False

    async def run(self) -> None:
        while True:
            try:
                line = await self.reader.readline()
            except (ConnectionError, asyncio.LimitOverrunError):
                break
            if not line:
                break
            try:
                record = decode(line)
            except ValueError as exc:
                self.send({"ok": False, "error": f"bad request: {exc}"})
                continue
            await self._dispatch(record)

    async def _dispatch(self, record: Dict[str, Any]) -> None:
        rid = record.get("id")
        op = record.get("op")
        scheduler = self.daemon.scheduler
        try:
            if op not in OPS:
                raise ValueError(f"unknown op {op!r} (protocol "
                                 f"{PROTOCOL_VERSION} speaks: "
                                 f"{', '.join(OPS)})")
            if op != "hello" and op not in ("ping",) \
                    and self.client_id is None:
                raise QuotaError("send hello before any other op")
            payload = await self._handle_op(op, record, scheduler)
        except (QuotaError, KeyError, ValueError) as exc:
            message = str(exc)
            if isinstance(exc, KeyError):
                message = exc.args[0] if exc.args else message
            self.send({"id": rid, "ok": False, "error": message})
        except asyncio.TimeoutError:
            self.send({"id": rid, "ok": False,
                       "error": "timed out waiting"})
        else:
            response = {"id": rid, "ok": True}
            response.update(payload)
            self.send(response)

    async def _handle_op(self, op: str, record: Dict[str, Any],
                         scheduler) -> Dict[str, Any]:
        if op == "hello":
            state = scheduler.register_client(
                name=record.get("name"),
                priority=int(record.get("priority", 0)))
            self.client_id = state.client_id
            return {"client": state.client_id, "name": state.name,
                    "priority": state.priority,
                    "run_id": scheduler.run_id,
                    "fingerprint": scheduler.fingerprint,
                    "cache_dir": scheduler.cache_dir,
                    "protocol": PROTOCOL_VERSION,
                    "version": _package_version()}
        if op == "ping":
            return {"pong": True}
        if op == "submit":
            jobs = record.get("jobs")
            if not isinstance(jobs, list) or not jobs:
                raise ValueError("submit needs a non-empty 'jobs' list")
            return scheduler.submit(
                self.client_id, jobs,
                use_cache=bool(record.get("use_cache", True)))
        if op == "status":
            return scheduler.status(_required(record, "sub"))
        if op == "result":
            return scheduler.result_of(_required(record, "cache_key"))
        if op == "results":
            sub = _required(record, "sub")
            if record.get("wait", True):
                await scheduler.wait_submission(
                    sub, timeout=record.get("timeout"))
            return {"sub": sub, "results": scheduler.results(sub)}
        if op == "watch":
            if self._watch_token is None:
                self._watch_token = scheduler.add_listener(
                    lambda event: self.send(event))
            return {"watching": True}
        if op == "unwatch":
            if self._watch_token is not None:
                scheduler.remove_listener(self._watch_token)
                self._watch_token = None
            return {"watching": False}
        if op == "cancel":
            return dict(scheduler.cancel(self.client_id,
                                         _required(record, "sub")))
        if op == "stats":
            return scheduler.stats()
        if op == "shutdown":
            asyncio.get_running_loop().call_soon(self.daemon.request_stop)
            return {"stopping": True}
        raise ValueError(f"unhandled op {op!r}")  # unreachable

    # -- outbox -------------------------------------------------------------

    def send(self, record: Dict[str, Any]) -> None:
        if not self._closed:
            self._outbox.put_nowait(encode(record))

    async def _drain_outbox(self) -> None:
        try:
            while True:
                item = await self._outbox.get()
                if item is None:
                    break
                self.writer.write(item)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._watch_token is not None:
            self.daemon.scheduler.remove_listener(self._watch_token)
            self._watch_token = None
        self._outbox.put_nowait(None)
        try:
            await asyncio.wait_for(self._sender, timeout=5.0)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._sender.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _required(record: Dict[str, Any], name: str) -> Any:
    value = record.get(name)
    if value is None:
        raise ValueError(f"op {record.get('op')!r} needs {name!r}")
    return value


async def _amain(config: ServeConfig, echo=print) -> None:
    daemon = Daemon(config)
    host, port = await daemon.start()
    echo(f"repro serve: listening on {host}:{port} "
         f"(run {daemon.scheduler.run_id}, workers={config.workers}, "
         f"cache={daemon.scheduler.cache_dir})")
    try:
        await daemon.wait_stopped()
    finally:
        await daemon.stop()
        echo(f"repro serve: stopped (run {daemon.scheduler.run_id})")


def run_daemon(config: Optional[ServeConfig] = None, echo=print) -> int:
    """Blocking entry point of the ``repro serve`` CLI command."""
    try:
        asyncio.run(_amain(config or ServeConfig(), echo))
    except KeyboardInterrupt:
        echo("repro serve: interrupted")
        return 130
    return 0


class BackgroundDaemon:
    """A daemon on its own thread + event loop (tests, embedding).

    >>> with BackgroundDaemon(ServeConfig()) as bg:
    ...     client = Client(address=bg.address)

    ``start`` returns once the listener is bound; ``stop`` requests a
    graceful shutdown and joins the thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.daemon: Optional[Daemon] = None
        self.address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def start(self) -> "BackgroundDaemon":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-daemon", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("serve daemon did not come up in 30s")
        if self._error is not None:
            raise RuntimeError(
                f"serve daemon failed to start: {self._error}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self.daemon is not None:
            try:
                self._loop.call_soon_threadsafe(self.daemon.request_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 -- reported to start()
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self.daemon = Daemon(self.config)
        self._loop = asyncio.get_running_loop()
        try:
            self.address = await self.daemon.start()
        finally:
            self._ready.set()
        try:
            await self.daemon.wait_stopped()
        finally:
            await self.daemon.stop()

    def __enter__(self) -> "BackgroundDaemon":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()


def _package_version() -> str:
    from .. import __version__

    return __version__
