"""Wire protocol of the serve daemon: newline-delimited JSON.

One TCP connection carries two interleaved record streams, told apart
by one key:

* **requests/responses** -- the client sends ``{"id": n, "op": ...,
  ...params}``; the daemon answers with ``{"id": n, "ok": true, ...}``
  or ``{"id": n, "ok": false, "error": "..."}``.  Responses may arrive
  out of order; ``id`` pairs them up.
* **events** -- after a ``watch`` request the daemon pushes
  ``{"event": ...}`` records: the live feed of everything the
  scheduler writes to its run journal (job starts/completions, dedup
  hits, quota denials, submission completions, periodic stats).

Both directions are UTF-8 JSON, one record per ``\\n``-terminated line,
no length prefixes -- trivially debuggable with ``nc``.

The event stream *is* the journal format: :data:`EVENT_SCHEMA` below
names every record type and its required fields, and
:func:`validate_event` is the machine-checkable contract (used by the
tests and the ``serve-smoke`` CI job).  The prose version lives in the
"Simulation service" section of ``docs/MODEL.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

#: Bumped when requests/responses change incompatibly; the daemon
#: reports its version in the ``hello`` response so clients can bail
#: out early instead of misparsing.
PROTOCOL_VERSION = 1

#: Hard cap on one encoded record (sanity guard against a confused
#: client streaming a giant artifact down the control channel).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Request operations the daemon understands.
OPS = ("hello", "submit", "status", "result", "results", "watch",
       "unwatch", "cancel", "stats", "ping", "shutdown")

#: Every event record type and its required fields.  Records may carry
#: extra fields; these must be present.  ``header``/``footer``/``job``
#: are the classic sweep-journal records (shared with ``repro sweep``),
#: the rest are serve-daemon intake events.
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "header": ("started",),
    "recover": ("run_id", "prior_records", "interrupted"),
    "client": ("client", "name", "priority"),
    "submit": ("client", "sub", "jobs", "queued", "cached", "deduped"),
    "start": ("cache_key", "experiment", "key", "client", "attempt"),
    "job": ("cache_key", "experiment", "key", "outcome", "wall_s",
            "attempts"),
    "dedup": ("cache_key", "client", "source"),
    "quota": ("client", "limit", "inflight", "denied"),
    "cancel": ("client", "sub", "dropped"),
    "stats": ("queued", "running", "done", "dedup_hits", "cache_hits"),
    "sub-done": ("sub", "client", "counts"),
    "footer": ("finished",),
}


def encode(record: Dict[str, Any]) -> bytes:
    """One wire line (compact JSON + newline)."""
    return (json.dumps(record, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises ``ValueError`` on garbage."""
    record = json.loads(line.decode("utf-8"))
    if not isinstance(record, dict):
        raise ValueError(f"wire record must be a JSON object, got "
                         f"{type(record).__name__}")
    return record


def validate_event(record: Dict[str, Any]) -> List[str]:
    """Problems with one event record against :data:`EVENT_SCHEMA`.

    Empty list means valid.  Used by tests and the CI smoke job to hold
    the streamed events to the documented contract.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"not an object: {type(record).__name__}"]
    kind = record.get("event")
    if not isinstance(kind, str):
        return [f"missing/non-string 'event' field: {kind!r}"]
    required = EVENT_SCHEMA.get(kind)
    if required is None:
        return [f"unknown event type {kind!r}"]
    for fname in required:
        if fname not in record:
            problems.append(f"{kind}: missing required field {fname!r}")
    return problems


def validate_events(records: List[Dict[str, Any]]) -> List[str]:
    """Flattened problems across a whole stream (prefixed by index)."""
    problems = []
    for i, record in enumerate(records):
        for p in validate_event(record):
            problems.append(f"[{i}] {p}")
    return problems


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (bare ``":port"`` = loopback)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad server address {address!r}: want HOST:PORT")
    return host or "127.0.0.1", int(port)
