"""Per-client accounting: identity, priority, in-flight quota.

The scheduler is multi-tenant in the small: several clients share one
warm backend, so two fairness levers exist.  **Priority** orders the
ready queue -- a client registers with ``hello(priority=p)`` (clamped
to the server's ``max_priority``) and its jobs sort ahead of
lower-priority work; ties run in submission order.  **Quota** bounds
how many *originated* jobs (queued or running, not yet terminal) one
client may hold at once; a submission that would exceed it is rejected
whole (atomic: no partial plans) and journaled as a ``quota`` event.
Dedup attachments are free -- riding on another client's identical job
costs nothing, which is the whole point of the shared backend.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional


class QuotaError(Exception):
    """A submission was rejected by the per-client in-flight quota."""


@dataclass
class ClientState:
    """One registered client of the daemon."""

    client_id: str
    name: str
    priority: int
    #: Originated jobs currently queued or running (terminal jobs and
    #: dedup attachments excluded).
    inflight: int = 0
    #: Lifetime counters (reported by ``stats`` and ``repro journal``).
    submitted: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    denied: int = 0


class QuotaPolicy:
    """Registry of clients plus the admission rule."""

    def __init__(self, quota: Optional[int] = None,
                 max_priority: int = 9) -> None:
        self.quota = quota
        self.max_priority = max_priority
        self.clients: Dict[str, ClientState] = {}
        self._ids = itertools.count(1)

    def register(self, name: Optional[str], priority: int) -> ClientState:
        client_id = f"c{next(self._ids)}"
        state = ClientState(
            client_id=client_id,
            name=name or client_id,
            priority=max(0, min(int(priority), self.max_priority)))
        self.clients[client_id] = state
        return state

    def get(self, client_id: str) -> ClientState:
        try:
            return self.clients[client_id]
        except KeyError:
            raise QuotaError(f"unknown client {client_id!r}; "
                             "send hello first") from None

    def admit(self, client_id: str, new_jobs: int) -> None:
        """Raise :class:`QuotaError` if the submission would exceed the
        client's in-flight budget (whole-submission admission)."""
        state = self.get(client_id)
        if self.quota is None or new_jobs == 0:
            return
        if state.inflight + new_jobs > self.quota:
            state.denied += new_jobs
            raise QuotaError(
                f"quota exceeded for {state.name}: {state.inflight} "
                f"in flight + {new_jobs} new > limit {self.quota}")
