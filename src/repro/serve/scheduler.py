"""The asyncio scheduler: orch pool + cache + journal behind one object.

This is the long-lived heart of ``repro serve``.  It owns exactly the
three pieces :mod:`repro.orch` already had -- the content-addressed
:class:`~repro.orch.cache.ResultStore`, the JSONL
:class:`~repro.orch.journal.RunJournal`, and the multiprocessing worker
machinery of :mod:`repro.orch._pool` -- and turns the fire-and-forget
per-sweep pool into a service:

* **streaming intake** -- clients submit job plans at any time; jobs
  enter one priority queue (client priority, then submission order);
* **cross-client dedup** -- jobs are identified by the same cache key
  the sweep orchestrator uses (spec + arch config + code fingerprint).
  A job identical to a cached artifact is served from the store; one
  identical to an in-flight or completed job of *any* client attaches
  as a waiter and shares the single execution's result bit-for-bit;
* **quotas** -- per-client in-flight budgets (:mod:`.quotas`);
* **events** -- every journal record is also fanned out live to
  ``watch``-ing connections (the stream *is* the journal format; see
  :mod:`.protocol`);
* **recovery** -- the journal is opened in append mode; on restart the
  prior run's records are scanned, interrupted jobs are counted into a
  ``recover`` record, and their completed siblings keep being served
  from the store (artifact writes are atomic, so a killed daemon never
  leaves a torn cache).

Execution backends: ``workers >= 1`` drives the orch pool's own worker
processes (job assignment over pipes, per-job timeout, bounded retry,
crash replacement) through ``loop.add_reader``; ``workers <= 0`` runs
jobs on a single in-daemon thread (no timeout enforcement -- same
contract as the pool's in-process mode), which is what tests and 1-CPU
hosts use.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..orch._pool import (
    CANCELLED,
    FAILED,
    OK,
    TIMEOUT,
    WORKER_BUDGET_ENV,
    _context,
    _cycles_of,
    _Worker,
)
from ..orch.cache import ResultStore, cache_key, default_cache_dir
from ..orch.fingerprint import code_fingerprint
from ..orch.job import Job, execute
from ..orch.journal import RunJournal, _utcnow, read_journal
from .quotas import ClientState, QuotaError, QuotaPolicy

#: Additional entry states next to the orch pool's terminal ones.
QUEUED, RUNNING, CACHED = "queued", "running", "cached"

_TERMINAL = (OK, CACHED, FAILED, TIMEOUT, CANCELLED)


@dataclass
class ServeConfig:
    """Knobs of the scheduler daemon (``repro serve``).

    ``cache_dir=None`` resolves through
    :func:`repro.orch.default_cache_dir` (``$REPRO_CACHE_DIR`` or
    ``.repro-cache``) so daemon and clients agree on one store.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is printed/returned)
    workers: int = 0  # >=1: orch pool worker processes; <=0: one thread
    cache_dir: Optional[str] = None
    journal: Optional[str] = None
    use_cache: bool = True
    default_timeout: Optional[float] = None  # per-job, process backend only
    quota: Optional[int] = None  # max in-flight originated jobs per client
    max_priority: int = 9
    stats_interval: float = 0.0  # seconds between stats events (0 = off)
    fingerprint: Optional[str] = None  # override for tests

    def resolved_cache_dir(self) -> str:
        return self.cache_dir if self.cache_dir is not None \
            else default_cache_dir()


class _Entry:
    """One unique job spec known to the scheduler (any number of
    submissions may wait on it)."""

    __slots__ = ("key", "job", "priority", "seq", "status", "payload",
                 "error", "wall_s", "attempts", "worker", "origin",
                 "waiters", "done", "counted")

    def __init__(self, key: str, job: Job, priority: int, seq: int,
                 origin: str) -> None:
        self.key = key
        self.job = job
        self.priority = priority
        self.seq = seq
        self.status = QUEUED
        self.payload: Any = None
        self.error: Optional[str] = None
        self.wall_s = 0.0
        self.attempts = 0
        self.worker: Optional[int] = None
        self.origin = origin
        self.waiters: List[Tuple[str, str]] = []  # (client_id, sub_id)
        self.done = asyncio.Event()
        self.counted = False  # charged against origin's in-flight quota


@dataclass
class _Submission:
    """One client's submitted plan: its view onto shared entries."""

    sub_id: str
    client: str
    keys: List[str]  # cache keys aligned with the submitted jobs
    modes: List[str]  # per-job cache mode: "miss" | "hit" | "dedup"
    remaining: set = field(default_factory=set)
    done: asyncio.Event = field(default_factory=asyncio.Event)


class Scheduler:
    """See the module docstring.  All methods must run on the event
    loop's thread (the daemon guarantees this); ``start`` first."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.run_id = os.urandom(6).hex()
        self.fingerprint = self.config.fingerprint or code_fingerprint()
        self.cache_dir = self.config.resolved_cache_dir()
        self.store: Optional[ResultStore] = (
            ResultStore(self.cache_dir) if self.config.use_cache else None)
        self.journal: Optional[RunJournal] = None
        self.quotas = QuotaPolicy(self.config.quota,
                                  self.config.max_priority)
        self._entries: Dict[str, _Entry] = {}
        self._queue: List[Tuple[int, int, str]] = []  # (-prio, seq, key)
        self._subs: Dict[str, _Submission] = {}
        self._listeners: Dict[int, Callable[[Dict[str, Any]], None]] = {}
        self._seq = itertools.count()
        self._sub_ids = itertools.count(1)
        self._listener_ids = itertools.count(1)
        self.dedup_hits = 0
        self.cache_hits = 0
        self.executed = 0
        self._stopping = False
        self._tasks: List[asyncio.Task] = []
        self._kick: Optional[asyncio.Event] = None
        self._backend: Optional[Any] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._kick = asyncio.Event()
        recovery = self._scan_prior_journal()
        self.journal = RunJournal(self.config.journal, append=True)
        if recovery is not None:
            self._emit("recover", run_id=self.run_id, **recovery)
        self._emit(
            "header", started=_utcnow(), server=True, run_id=self.run_id,
            fingerprint=self.fingerprint, version=_package_version(),
            workers=self.config.workers, cache_dir=self.cache_dir,
            cache=self.config.use_cache, quota=self.config.quota)
        if self.config.workers >= 1:
            self._backend = _ProcessBackend(self, self.config.workers,
                                            self.config.default_timeout)
        else:
            self._backend = _ThreadBackend(self)
        self._tasks.append(self._loop.create_task(self._dispatch()))
        if self.config.stats_interval > 0:
            self._tasks.append(
                self._loop.create_task(self._stats_loop()))

    async def shutdown(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        self._kick.set()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self._backend is not None:
            await self._backend.stop()
        counts: Dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.status] = counts.get(entry.status, 0) + 1
        self._emit("footer", finished=_utcnow(), run_id=self.run_id,
                   **counts)
        if self.journal is not None:
            self.journal.close()

    def _scan_prior_journal(self) -> Optional[Dict[str, Any]]:
        """What an earlier daemon run left in the journal, if anything."""
        path = self.config.journal
        if not path or not os.path.exists(path):
            return None
        try:
            if os.path.getsize(path) == 0:
                return None
            records = read_journal(path)
        except OSError:
            return None
        if not records:
            return None
        submitted: set = set()
        completed: set = set()
        for rec in records:
            event = rec.get("event")
            if event == "submit":
                submitted.update(rec.get("keys") or [])
            elif event == "job":
                completed.add(rec.get("cache_key"))
        return {"prior_records": len(records),
                "interrupted": len(submitted - completed)}

    # -- event fan-out ------------------------------------------------------

    def add_listener(self, callback: Callable[[Dict[str, Any]], None]
                     ) -> int:
        token = next(self._listener_ids)
        self._listeners[token] = callback
        return token

    def remove_listener(self, token: int) -> None:
        self._listeners.pop(token, None)

    def _emit(self, event: str, *, journal: bool = True,
              **fields: Any) -> Dict[str, Any]:
        """Journal one record and push it to every live listener."""
        record = {"event": event, **fields}
        if journal and self.journal is not None:
            self.journal.write_event(event, **fields)
        for callback in list(self._listeners.values()):
            try:
                callback(record)
            except Exception:  # noqa: BLE001 -- one dead client, not all
                pass
        return record

    # -- intake -------------------------------------------------------------

    def register_client(self, name: Optional[str] = None,
                        priority: int = 0) -> ClientState:
        state = self.quotas.register(name, priority)
        self._emit("client", client=state.client_id, name=state.name,
                   priority=state.priority)
        return state

    def submit(self, client_id: str, wire_jobs: List[Dict[str, Any]],
               use_cache: bool = True) -> Dict[str, Any]:
        """Admit one plan; returns per-job keys/statuses (atomic: a
        quota rejection admits nothing)."""
        state = self.quotas.get(client_id)
        jobs = [Job.from_wire(w) for w in wire_jobs]
        keys = [cache_key(job, self.fingerprint) for job in jobs]
        use_cache = use_cache and self.config.use_cache

        # Classification pass -- no state mutated yet.
        planned: List[Tuple[Job, str, str, Optional[Dict[str, Any]]]] = []
        seen_new: set = set()
        new_jobs = 0
        for job, key in zip(jobs, keys):
            entry = self._entries.get(key)
            if key in seen_new:
                action, record = "dedup-sub", None
            elif entry is not None and entry.status in (OK, CACHED):
                action, record = "dedup-done", None
            elif entry is not None and entry.status in (QUEUED, RUNNING):
                action, record = "dedup-inflight", None
            else:
                # No live entry (or a failed/cancelled one): (re)compute.
                record = self.store.get(key) if (use_cache and
                                                 self.store) else None
                if record is not None:
                    action = "cache-hit"
                else:
                    action = "new"
                    seen_new.add(key)
                    new_jobs += 1
            planned.append((job, key, action, record))

        try:
            self.quotas.admit(client_id, new_jobs)
        except QuotaError:
            self._emit("quota", client=client_id,
                       limit=self.quotas.quota, inflight=state.inflight,
                       denied=new_jobs)
            raise

        sub = _Submission(sub_id=f"s{next(self._sub_ids)}",
                          client=client_id, keys=keys, modes=[])
        counts = {"queued": 0, "cached": 0, "deduped": 0}
        for job, key, action, record in planned:
            if action == "new":
                entry = _Entry(key, job, state.priority,
                               next(self._seq), client_id)
                entry.counted = True
                state.inflight += 1
                self._entries[key] = entry
                heapq.heappush(self._queue,
                               (-entry.priority, entry.seq, key))
                sub.modes.append("miss")
                sub.remaining.add(key)
                counts["queued"] += 1
            elif action == "cache-hit":
                entry = _Entry(key, job, state.priority,
                               next(self._seq), client_id)
                self._entries[key] = entry
                entry.status = CACHED
                entry.payload = record["payload"]
                entry.done.set()
                state.cache_hits += 1
                self.cache_hits += 1
                self._emit("job", cache_key=key,
                           experiment=job.experiment, key=job.key,
                           outcome=CACHED, wall_s=0.0, attempts=0,
                           worker=None, error=None,
                           cycles=_cycles_of(entry.payload),
                           client=client_id)
                sub.modes.append("hit")
                counts["cached"] += 1
            else:  # dedup-sub / dedup-done / dedup-inflight
                entry = self._entries[key]
                source = {"dedup-sub": "submission",
                          "dedup-done": "done",
                          "dedup-inflight": "inflight"}[action]
                state.dedup_hits += 1
                self.dedup_hits += 1
                self._emit("dedup", cache_key=key, client=client_id,
                           source=source)
                sub.modes.append("dedup")
                if entry.status not in _TERMINAL:
                    sub.remaining.add(key)
                counts["deduped"] += 1
            if entry.status not in _TERMINAL:
                entry.waiters.append((client_id, sub.sub_id))
        state.submitted += len(jobs)
        self._subs[sub.sub_id] = sub
        self._emit("submit", client=client_id, sub=sub.sub_id,
                   jobs=len(jobs), keys=keys, **counts)
        if not sub.remaining:
            self._finish_submission(sub)
        self._kick.set()
        return {
            "sub": sub.sub_id,
            "jobs": [{"key": job.key, "cache_key": key,
                      "status": self._entries[key].status, "cache": mode}
                     for (job, key, _a, _r), mode
                     in zip(planned, sub.modes)],
            **counts,
        }

    # -- progress and results ----------------------------------------------

    def status(self, sub_id: str) -> Dict[str, Any]:
        sub = self._require_sub(sub_id)
        statuses = [self._entries[k].status for k in sub.keys]
        counts: Dict[str, int] = {}
        for status in statuses:
            counts[status] = counts.get(status, 0) + 1
        return {"sub": sub.sub_id, "done": sub.done.is_set(),
                "statuses": statuses, "counts": counts}

    def results(self, sub_id: str) -> List[Dict[str, Any]]:
        """Per-job result envelopes, aligned with the submitted order.

        Payloads are delivered verbatim (bit-identical to what the
        in-process pool computes); provenance rides in the envelope.
        """
        sub = self._require_sub(sub_id)
        out = []
        for key, mode in zip(sub.keys, sub.modes):
            entry = self._entries[key]
            out.append(self._envelope(entry, mode))
        return out

    def result_of(self, key: str) -> Dict[str, Any]:
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(f"unknown job {key!r}")
        mode = "hit" if entry.status == CACHED else "miss"
        return self._envelope(entry, mode)

    def _envelope(self, entry: _Entry, mode: str) -> Dict[str, Any]:
        return {
            "key": entry.job.key,
            "experiment": entry.job.experiment,
            "cache_key": entry.key,
            "status": entry.status,
            "payload": entry.payload,
            "error": entry.error,
            "wall_s": entry.wall_s,
            "provenance": {
                "job": entry.job.name,
                "cache_key": entry.key,
                "cache": mode,
                "fingerprint": self.fingerprint,
                "run_id": self.run_id,
            },
        }

    async def wait_submission(self, sub_id: str,
                              timeout: Optional[float] = None) -> None:
        sub = self._require_sub(sub_id)
        await asyncio.wait_for(sub.done.wait(), timeout)

    def cancel(self, client_id: str, sub_id: str) -> Dict[str, Any]:
        """Withdraw a client from a submission; queued jobs nobody else
        waits on are cancelled (running jobs finish and warm the cache)."""
        sub = self._require_sub(sub_id)
        if sub.client != client_id:
            raise QuotaError(f"submission {sub_id} belongs to another "
                             "client")
        dropped = 0
        for key in sorted(sub.remaining):
            entry = self._entries[key]
            entry.waiters = [w for w in entry.waiters
                             if w != (client_id, sub_id)]
            if not entry.waiters and entry.status == QUEUED:
                dropped += 1
                self._settle(entry, CANCELLED, None, "cancelled", 0.0,
                             None)
        sub.remaining.clear()
        record = self._emit("cancel", client=client_id, sub=sub_id,
                            dropped=dropped)
        sub.done.set()
        return record

    def stats(self) -> Dict[str, Any]:
        queued = sum(1 for e in self._entries.values()
                     if e.status == QUEUED)
        running = sum(1 for e in self._entries.values()
                      if e.status == RUNNING)
        done = sum(1 for e in self._entries.values()
                   if e.status in _TERMINAL)
        return {
            "run_id": self.run_id, "fingerprint": self.fingerprint,
            "cache_dir": self.cache_dir, "queued": queued,
            "running": running, "done": done, "executed": self.executed,
            "dedup_hits": self.dedup_hits, "cache_hits": self.cache_hits,
            "clients": {
                c.client_id: {"name": c.name, "priority": c.priority,
                              "inflight": c.inflight,
                              "submitted": c.submitted,
                              "dedup_hits": c.dedup_hits,
                              "cache_hits": c.cache_hits,
                              "denied": c.denied}
                for c in self.quotas.clients.values()},
        }

    def queue_snapshot(self) -> List[str]:
        """Cache keys in dispatch order (tests pin priority ordering)."""
        return [key for _p, _s, key in sorted(self._queue)
                if self._entries[key].status == QUEUED]

    def _require_sub(self, sub_id: str) -> _Submission:
        try:
            return self._subs[sub_id]
        except KeyError:
            raise KeyError(f"unknown submission {sub_id!r}") from None

    # -- execution ----------------------------------------------------------

    async def _dispatch(self) -> None:
        while not self._stopping:
            await self._kick.wait()
            self._kick.clear()
            while self._queue and self._backend.free() > 0:
                _prio, _seq, key = heapq.heappop(self._queue)
                entry = self._entries.get(key)
                if entry is None or entry.status != QUEUED:
                    continue  # cancelled or re-keyed meanwhile
                self._backend.launch(entry)

    async def _stats_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.config.stats_interval)
            snap = self.stats()
            # Listener-only: periodic gauges would drown the journal.
            self._emit("stats", journal=False, queued=snap["queued"],
                       running=snap["running"], done=snap["done"],
                       dedup_hits=snap["dedup_hits"],
                       cache_hits=snap["cache_hits"],
                       clients=len(snap["clients"]))

    def _emit_start(self, entry: _Entry, worker: Optional[int]) -> None:
        entry.status = RUNNING
        self._emit("start", cache_key=entry.key,
                   experiment=entry.job.experiment, key=entry.job.key,
                   client=entry.origin, attempt=entry.attempts,
                   worker=worker)

    def _settle(self, entry: _Entry, status: str, payload: Any,
                error: Optional[str], wall: float,
                worker: Optional[int]) -> None:
        entry.status = status
        entry.payload = payload
        entry.error = error
        entry.wall_s = wall
        entry.worker = worker
        entry.done.set()
        if entry.counted:
            entry.counted = False
            origin = self.quotas.clients.get(entry.origin)
            if origin is not None:
                origin.inflight = max(0, origin.inflight - 1)
        if status == OK:
            self.executed += 1
            if self.store is not None:
                self.store.put(entry.key, entry.job, payload,
                               meta={"wall_s": wall,
                                     "fingerprint": self.fingerprint,
                                     "attempts": entry.attempts,
                                     "run_id": self.run_id})
        self._emit("job", cache_key=entry.key,
                   experiment=entry.job.experiment, key=entry.job.key,
                   outcome=status, wall_s=round(wall, 6), worker=worker,
                   attempts=entry.attempts, error=error,
                   cycles=_cycles_of(payload), client=entry.origin)
        for client_id, sub_id in entry.waiters:
            sub = self._subs.get(sub_id)
            if sub is None or entry.key not in sub.remaining:
                continue
            sub.remaining.discard(entry.key)
            if not sub.remaining:
                self._finish_submission(sub)
        entry.waiters = []
        if self._kick is not None:
            self._kick.set()

    def _finish_submission(self, sub: _Submission) -> None:
        if sub.done.is_set():
            return
        sub.done.set()
        counts: Dict[str, int] = {}
        for key in sub.keys:
            status = self._entries[key].status
            counts[status] = counts.get(status, 0) + 1
        self._emit("sub-done", sub=sub.sub_id, client=sub.client,
                   counts=counts)


# ---------------------------------------------------------------------------
# Execution backends.

def _execute_budgeted(job: Job) -> Any:
    """In-thread execution with the worker-budget contract of the
    pool's in-process mode (save/restore around the job)."""
    previous = os.environ.get(WORKER_BUDGET_ENV)
    os.environ[WORKER_BUDGET_ENV] = str(max(job.procs, 1))
    try:
        return execute(job)
    finally:
        if previous is None:
            os.environ.pop(WORKER_BUDGET_ENV, None)
        else:
            os.environ[WORKER_BUDGET_ENV] = previous


class _ThreadBackend:
    """One in-daemon execution thread (``workers <= 0``): no process
    boundary, so no timeout enforcement -- the test/1-CPU mode."""

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-job")
        self._busy = 0

    def free(self) -> int:
        return 1 - self._busy

    def launch(self, entry: _Entry) -> None:
        self._busy += 1
        task = asyncio.get_running_loop().create_task(self._run(entry))
        self._scheduler._tasks.append(task)

    async def _run(self, entry: _Entry) -> None:
        sched = self._scheduler
        loop = asyncio.get_running_loop()
        try:
            while True:
                entry.attempts += 1
                sched._emit_start(entry, worker=None)
                t0 = time.perf_counter()
                try:
                    payload = await loop.run_in_executor(
                        self._executor, _execute_budgeted, entry.job)
                except Exception as exc:  # noqa: BLE001 -- retried
                    wall = time.perf_counter() - t0
                    if entry.attempts <= entry.job.retries:
                        continue
                    sched._settle(entry, FAILED, None,
                                  f"{type(exc).__name__}: {exc}", wall,
                                  None)
                    return
                else:
                    sched._settle(entry, OK, payload, None,
                                  time.perf_counter() - t0, None)
                    return
        finally:
            self._busy -= 1
            sched._kick.set()

    async def stop(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


class _ProcessBackend:
    """The orch pool's worker processes driven by the event loop
    (``loop.add_reader`` on each worker's result pipe)."""

    def __init__(self, scheduler: Scheduler, workers: int,
                 default_timeout: Optional[float]) -> None:
        self._scheduler = scheduler
        self._max = max(1, workers)
        self._default_timeout = default_timeout
        self._ctx = _context()
        self._idle: List[_Worker] = []
        self._all: List[_Worker] = []
        self._busy = 0
        self._next_wid = 0

    def free(self) -> int:
        return self._max - self._busy

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_wid)
        self._next_wid += 1
        self._all.append(worker)
        return worker

    def launch(self, entry: _Entry) -> None:
        self._busy += 1
        worker = self._idle.pop() if self._idle else self._spawn()
        task = asyncio.get_running_loop().create_task(
            self._run(entry, worker))
        self._scheduler._tasks.append(task)

    async def _run(self, entry: _Entry, worker: _Worker) -> None:
        sched = self._scheduler
        loop = asyncio.get_running_loop()
        try:
            while True:
                entry.attempts += 1
                sched._emit_start(entry, worker=worker.wid)
                fut: asyncio.Future = loop.create_future()
                fd = worker.conn.fileno()
                loop.add_reader(fd, self._on_ready, worker, fut)
                worker.assign(0, entry.job, self._default_timeout)
                handle = None
                if worker.deadline is not None:
                    handle = loop.call_later(
                        max(0.0, worker.deadline - time.monotonic()),
                        self._on_timeout, fut)
                try:
                    kind, status, result, wall, wid = await fut
                finally:
                    loop.remove_reader(fd)
                    if handle is not None:
                        handle.cancel()
                worker.task = worker.deadline = None
                if kind == "msg":
                    if status == OK:
                        self._idle.append(worker)
                        sched._settle(entry, OK, result, None, wall, wid)
                        return
                    if entry.attempts <= entry.job.retries:
                        continue  # same worker retries the job
                    self._idle.append(worker)
                    sched._settle(entry, FAILED, None, result, wall, wid)
                    return
                # The worker died or timed out: replace it either way.
                wid = worker.wid
                worker.kill()
                self._all.remove(worker)
                if kind == "died":
                    if entry.attempts <= entry.job.retries:
                        worker = self._spawn()
                        continue
                    sched._settle(entry, FAILED, None,
                                  "worker process died", 0.0, wid)
                    return
                limit = (entry.job.timeout_s
                         if entry.job.timeout_s is not None
                         else self._default_timeout)
                if entry.attempts <= entry.job.retries:
                    worker = self._spawn()
                    continue
                sched._settle(entry, TIMEOUT, None,
                              f"timed out after {limit:g}s",
                              limit or 0.0, wid)
                return
        finally:
            self._busy -= 1
            sched._kick.set()

    @staticmethod
    def _on_ready(worker: _Worker, fut: asyncio.Future) -> None:
        if fut.done():
            return
        try:
            _idx, status, result, wall, wid = worker.conn.recv()
        except (EOFError, OSError):
            fut.set_result(("died", None, None, 0.0, worker.wid))
            return
        fut.set_result(("msg", status, result, wall, wid))

    @staticmethod
    def _on_timeout(fut: asyncio.Future) -> None:
        if not fut.done():
            fut.set_result(("timeout", None, None, 0.0, None))

    async def stop(self) -> None:
        for worker in self._all:
            if worker.task is None:
                try:
                    worker.conn.send(None)  # polite shutdown
                except (OSError, BrokenPipeError):
                    pass
            worker.kill()
        self._all = []
        self._idle = []


def _package_version() -> str:
    from .. import __version__

    return __version__
