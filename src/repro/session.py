"""The public entry point: build a machine, launch kernels, collect results.

:class:`Session` is the single documented way to run kernels on the
model (the examples, experiment harnesses, profiler and CLI all go
through it)::

    import repro

    session = repro.Session(repro.HB_16x8, trace=True)
    session.launch(kernel, args, group_shape=(4, 4))
    result, = session.run()
    session.trace.write_chrome("trace.json")

:func:`run` is the one-shot convenience for the dominant pattern (one
kernel on Cell (0, 0) of a fresh machine); it constructs and drives the
machine in exactly the order the legacy ``run_on_cell`` did, so cycle
counts are bit-identical to pre-Session harnesses.

Tracing is a constructor flag: ``Session(config, trace=True)`` (or a
:class:`repro.trace.TraceConfig` for tuned windows/caps) wires the
observability layer in before any kernel starts; ``session.trace`` then
carries the timeline and metrics after :meth:`Session.run`.

Sanitizing works the same way: ``Session(config, sanitize=True)`` (or a
:class:`repro.sanitize.SanitizeConfig`) attaches the happens-before
checker; after :meth:`Session.run`, ``session.sanitizer`` holds the
findings (``session.sanitizer.clean`` / ``.summary()``).

Auditing follows the same pattern again: ``Session(config, audit=True)``
(or a :class:`repro.audit.AuditConfig`) attaches the timing-model
invariant checker and its differential reference shadows; after
:meth:`Session.run`, ``session.auditor`` holds any violations
(``session.auditor.clean`` / ``.summary()``).  All three hooks are
purely observational -- cycle counts are identical either way.

For *grids* of sessions -- sweeping kernels against machine configs --
use :mod:`repro.orch` (``repro sweep``), or point the sweep at a
``repro serve`` scheduler daemon via :class:`repro.Client` to share
one warm worker pool and result cache across many callers; payloads
are bit-identical to in-process :class:`Session` runs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .arch.config import HB_16x8, MachineConfig
from .core import stall as st
from .isa.program import Kernel
from .runtime.cell import Cell, LaunchHandle
from .runtime.machine import Machine
from .runtime.result import RunResult


def collect(machine: Machine, handle: LaunchHandle, cycles: float,
            kernel_name: str, *, keep_machine: bool = False) -> RunResult:
    """Aggregate counters from a finished launch into a :class:`RunResult`."""
    cores = handle.cores
    denom = cycles * len(cores)
    sums: Dict[str, float] = {cat: 0.0 for cat in st.ALL_CATEGORIES}
    for core in cores:
        for cat in st.ALL_CATEGORIES:
            sums[cat] += core.counters.get(cat)
        # Early finishers idle until the slowest tile completes.
        tail = (handle.launch_time + cycles) - core.finish_time
        if tail > 0:
            sums[st.STALL_IDLE] += tail
    accounted = sum(sums.values())
    other = max(0.0, denom - accounted)
    breakdown = {cat: v / denom for cat, v in sums.items() if v > 0}
    if other > 0:
        breakdown["other"] = other / denom
    int_instrs = sums[st.EXEC_INT]
    fp_instrs = sums[st.EXEC_FP]
    cell_xy = handle.cell.cell_xy
    hbm = machine.memsys.hbm[cell_xy].utilization(cycles)
    return RunResult(
        config_name=machine.config.name,
        kernel_name=kernel_name,
        cycles=cycles,
        num_tiles=len(cores),
        instructions=int_instrs + fp_instrs,
        int_instructions=int_instrs,
        fp_instructions=fp_instrs,
        core_breakdown=breakdown,
        core_utilization=(int_instrs + fp_instrs) / denom if denom else 0.0,
        hbm=hbm,
        cache_hit_rate=machine.memsys.cache_hit_rate(cell_xy),
        network=machine.memsys.req_net.counters.as_dict(),
        machine=machine if keep_machine else None,
    )


class Session:
    """One machine instance plus the launches run on it.

    Parameters (all but ``config`` keyword-only):

    * ``config`` -- a :class:`~repro.arch.config.MachineConfig`
      (default: the paper's baseline ``HB_16x8``);
    * ``trace`` -- ``True`` or a :class:`repro.trace.TraceConfig` to
      record a cycle timeline + metrics (``session.trace``); ``False``
      (default) costs nothing;
    * ``sanitize`` -- ``True`` or a
      :class:`repro.sanitize.SanitizeConfig` to attach the
      happens-before race checker (``session.sanitizer``); ``False``
      (default) costs nothing;
    * ``audit`` -- ``True`` or a :class:`repro.audit.AuditConfig` to
      attach the timing-model invariant/differential checker
      (``session.auditor``); ``False`` (default) costs nothing;
    * ``record_bin_width`` -- enable per-link time series on the NoC
      (the pre-trace recording layer some experiments use);
    * ``cells`` -- ``(X, Y)`` switches the session into PDES mode: the
      config's Cell grid is set to X x Y and :meth:`run` simulates the
      Cells as parallel shards (``workers`` processes, conservative
      windows of ``window`` cycles, default = the inter-Cell lookahead).
      ``audit``/``sanitize`` attach per shard (``sanitize`` also runs
      the cross-shard race stitcher over the collected payloads);
      ``contention`` (default on) prices deterministic inter-Cell link
      contention -- Cell-edge lane occupancy plus the intra-Cell legs
      of cross-Cell paths -- instead of the optimistic zero-load floor;
      ``trace`` is unsupported.
    """

    def __init__(self, config: Optional[MachineConfig] = None, *,
                 trace: Union[bool, Any] = False,
                 sanitize: Union[bool, Any] = False,
                 audit: Union[bool, Any] = False,
                 record_bin_width: Optional[float] = None,
                 cells: Optional[Tuple[int, int]] = None,
                 workers: int = 1,
                 window: Optional[float] = None,
                 contention: bool = True) -> None:
        self.config = HB_16x8 if config is None else config
        #: PDES state (``cells=(X, Y)`` mode): the plan before run(),
        #: the :class:`repro.pdes.CellsResult` after.
        self.pdes: Optional[Any] = None
        self._plan: Optional[Dict[str, Any]] = None
        if cells is not None:
            cx, cy = cells
            self.config = self.config.with_geometry(cells_x=cx, cells_y=cy)
            if trace or record_bin_width is not None:
                raise ValueError(
                    "trace/record_bin_width are not supported with "
                    "cells=: PDES shards run in worker processes with "
                    "no shared timeline (run per-Cell traced sessions "
                    "instead)")
            self.machine = None
            self._plan = {
                "launches": [], "pokes": [], "cells": {},
                "workers": workers, "window": window,
                "audit": bool(audit), "sanitize": bool(sanitize),
                "contention": contention,
            }
            self.trace = None
            self.sanitizer = None
            self.auditor = None
            self._pending = []
            self.results: List[RunResult] = []
            return
        self.machine = Machine(self.config, record_bin_width=record_bin_width)
        self.trace: Optional[Any] = None
        if trace:
            from .trace import Trace, TraceConfig, attach

            trace_config = trace if isinstance(trace, TraceConfig) else None
            self.trace = attach(self.machine, Trace(trace_config))
        self.sanitizer: Optional[Any] = None
        if sanitize:
            from .sanitize import SanitizeConfig, Sanitizer
            from .sanitize import attach as san_attach

            san_config = (sanitize if isinstance(sanitize, SanitizeConfig)
                          else None)
            self.sanitizer = san_attach(self.machine, Sanitizer(san_config))
        self.auditor: Optional[Any] = None
        if audit:
            from .audit import AuditConfig, Auditor
            from .audit import attach as audit_attach

            audit_config = audit if isinstance(audit, AuditConfig) else None
            self.auditor = audit_attach(self.machine, Auditor(audit_config))
        self._pending: List[Tuple[LaunchHandle, str]] = []
        #: Results of every completed :meth:`run`, in launch order.
        self.results: List[RunResult] = []

    # -- machine access -----------------------------------------------------

    def cell(self, x: int = 0, y: int = 0) -> Any:
        """A Cell of the machine (for mallocs, pokes, Group-DRAM pointers).

        In PDES mode this is a :class:`repro.pdes.shard.PlanCell`: same
        allocation/pointer arithmetic, pokes recorded for the owning
        shard, no peek until the run's payload comes back.
        """
        if self._plan is not None:
            from .pdes.shard import PlanCell

            if (x, y) not in set(self.config.chip.cells()):
                raise KeyError(
                    f"no cell ({x}, {y}); session has "
                    f"{self.config.cells_x}x{self.config.cells_y} cells")
            plan_cells = self._plan["cells"]
            if (x, y) not in plan_cells:
                plan_cells[(x, y)] = PlanCell(
                    (x, y), lambda xy, off, val:
                    self._plan["pokes"].append((xy, off, val)))
            return plan_cells[(x, y)]
        return self.machine.cell(x, y)

    @property
    def sim(self) -> Any:
        """The underlying simulator (read-only use: ``now``, stats)."""
        if self.machine is None:
            raise RuntimeError("no single simulator in PDES mode: each "
                               "shard owns its own clock")
        return self.machine.sim

    # -- launching ----------------------------------------------------------

    def launch(self, kernel: Kernel, args: Any = None, *,
               cell: Tuple[int, int] = (0, 0),
               group_shape: Optional[Tuple[int, int]] = None,
               setup: Optional[Callable[[Machine], Any]] = None,
               remote: bool = True) -> LaunchHandle:
        """Load and start ``kernel`` on every tile of ``cell``.

        ``setup(machine)`` runs first (host-side data placement); its
        return value, if not ``None``, replaces ``args``.  Launches from
        several calls run concurrently once :meth:`run` drives the clock.

        In PDES mode the launch is recorded (kernels travel to shard
        workers by import path) and returns its
        :class:`repro.pdes.LaunchSpec`; ``setup`` is unsupported there
        -- there is no monolithic machine to hand it.  ``remote=False``
        promises the kernel is Cell-local (enforced: the shard raises on
        any cross-Cell access), which lets the coordinator skip window
        barriers when every launch on the chip says so; on a monolithic
        machine there is nothing to synchronize, so it is ignored.
        """
        if self._plan is not None:
            from .pdes.shard import LaunchSpec, kernel_ref

            if setup is not None:
                raise ValueError(
                    "setup= is not supported with cells=: shard machines "
                    "are built in worker processes (poke via "
                    "session.cell(x, y) and pass offsets in args)")
            spec = LaunchSpec(cell=tuple(cell), kernel=kernel_ref(kernel),
                              args=args, group_shape=group_shape,
                              remote=remote)
            self._plan["launches"].append(spec)
            return spec
        target = self.machine.cell(*cell)
        if setup is not None:
            prepared = setup(self.machine)
            if prepared is not None:
                args = prepared
        target.load_kernel(kernel)
        handle = target.launch(args, group_shape=group_shape)
        self._pending.append((handle, kernel.name))
        return handle

    # -- running ------------------------------------------------------------

    def run(self, *, max_events: Optional[int] = None,
            keep_machine: bool = False) -> List[RunResult]:
        """Drive the clock until every pending launch finishes.

        Returns one :class:`RunResult` per pending launch (in launch
        order) and appends them to :attr:`results`.  With tracing on,
        the trace is finalized (final metrics sample, launch spans).

        In PDES mode this drives the conservative window loop instead
        and returns the :class:`repro.pdes.CellsResult` (also kept as
        ``session.pdes``).
        """
        if self._plan is not None:
            from .pdes import run_cells

            plan = self._plan
            if not plan["launches"]:
                raise RuntimeError("nothing to run; call launch() first")
            self.pdes = run_cells(
                self.config, plan["launches"], pokes=plan["pokes"],
                workers=plan["workers"], window=plan["window"],
                audit=plan["audit"], sanitize=plan["sanitize"],
                contention=plan["contention"])
            plan["launches"] = []
            plan["pokes"] = []
            return self.pdes
        if not self._pending:
            raise RuntimeError("nothing to run; call launch() first")
        handles = [handle for handle, _name in self._pending]
        try:
            self.machine.run_to_completion(handles, max_events=max_events)
        finally:
            # Finalize even on the deadlock diagnostic so the sanitizer
            # can report incomplete barrier epochs alongside it (the
            # auditor likewise sweeps for leaked MSHR entries and bad
            # utilization sums on whatever state the run reached).
            if self.sanitizer is not None:
                self.sanitizer.finalize(self.machine.sim.now)
            if self.auditor is not None:
                self.auditor.finalize(self.machine.sim.now)
        batch = [
            collect(self.machine, handle, handle.cycles(), name,
                    keep_machine=keep_machine)
            for handle, name in self._pending
        ]
        if self.trace is not None:
            self.trace.finalize(self.machine.sim.now)
            for result in batch:
                result.extra["trace"] = self.trace
        if self.sanitizer is not None:
            for result in batch:
                result.extra["sanitize"] = self.sanitizer
        if self.auditor is not None:
            for result in batch:
                self.auditor.check_result(result)
                result.extra["audit"] = self.auditor
        self._pending = []
        self.results.extend(batch)
        return batch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (f"{len(self._pending)} pending" if self._pending
                 else f"{len(self.results)} result(s)")
        traced = ", traced" if self.trace is not None else ""
        sanitized = ", sanitized" if self.sanitizer is not None else ""
        audited = ", audited" if self.auditor is not None else ""
        return (f"Session({self.config.name}, {state}"
                f"{traced}{sanitized}{audited})")


def run(config: Optional[MachineConfig] = None, kernel: Kernel = None,
        args: Any = None, *,
        cell: Tuple[int, int] = (0, 0),
        group_shape: Optional[Tuple[int, int]] = None,
        setup: Optional[Callable[[Machine], Any]] = None,
        record_bin_width: Optional[float] = None,
        keep_machine: bool = False,
        max_events: Optional[int] = None,
        trace: Union[bool, Any] = False,
        sanitize: Union[bool, Any] = False,
        audit: Union[bool, Any] = False) -> RunResult:
    """One-shot: run ``kernel`` on one Cell of a fresh machine.

    The Session-era replacement for ``run_on_cell`` -- identical machine
    construction and drive order, so cycle counts match it exactly.  New
    capabilities are keyword-only: ``cell`` picks the target Cell,
    ``trace`` records a timeline (reachable as ``result.trace``),
    ``sanitize`` attaches the race checker (``result.sanitize``), and
    ``audit`` attaches the timing-model invariant checker
    (``result.extra["audit"]``).
    """
    if kernel is None:
        raise TypeError("run() needs a kernel")
    session = Session(config, trace=trace, sanitize=sanitize, audit=audit,
                      record_bin_width=record_bin_width)
    session.launch(kernel, args, cell=cell, group_shape=group_shape,
                   setup=setup)
    return session.run(max_events=max_events, keep_machine=keep_machine)[0]
