"""Opt-in observability: cycle timelines, metrics, Perfetto export.

Usage (through the public :class:`repro.Session` facade)::

    import repro

    session = repro.Session(repro.HB_16x8, trace=True)
    session.launch(kernel, args)
    session.run()
    session.trace.write_chrome("trace.json")   # open in ui.perfetto.dev
    print(session.trace.summary())

Everything here is zero-cost when off: components carry ``_trace``
attributes that default to ``None`` and hot paths guard emissions behind
a single ``is not None`` check, so untraced runs are bit-identical in
cycles to the seed (golden tests pin this).
"""

from .instrument import attach
from .metrics import MetricSeries, MetricsRegistry
from .perfetto import to_chrome, validate_chrome, write_chrome
from .report import format_report, trace_report
from .tracer import Trace, TraceConfig

__all__ = [
    "Trace",
    "TraceConfig",
    "attach",
    "MetricsRegistry",
    "MetricSeries",
    "to_chrome",
    "write_chrome",
    "validate_chrome",
    "trace_report",
    "format_report",
]
