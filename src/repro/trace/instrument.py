"""Wire a :class:`Trace` into a live machine.

:func:`attach` is the single place that knows which components carry
trace hooks and which live quantities are worth sampling.  It sets the
``_trace`` attributes the component hot paths guard on, creates one
track per tile / cache bank / HBM pseudo-channel / wormhole channel, and
registers the metrics samplers (engine queue depth, MSHR occupancy, hit
rates, per-link-class NoC utilization, HBM bus cycles).

Attach before launching kernels; detaching is not supported -- build a
fresh machine (or ``Session``) for an untraced run.
"""

from __future__ import annotations

from typing import Any, Dict, List


def _link_class(link: Any) -> str:
    if link.ruche:
        return "ruche"
    return "mesh-h" if link.horizontal else "mesh-v"


def _attach_network(net: Any, trace: Any) -> None:
    net._trace = trace
    net._trace_track = trace.track("noc", f"{net.name}-congestion")
    net._trace_threshold = trace.config.congestion_threshold
    classes: Dict[str, List[Any]] = {}
    for link in net.topology.links():
        classes.setdefault(_link_class(link), []).append(link)

    def busy_sum(links: List[Any]) -> float:
        return sum(link.busy_cycles for link in links)

    def stall_sum(links: List[Any]) -> float:
        return sum(link.stall_cycles for link in links)

    for cls, links in sorted(classes.items()):
        trace.metrics.register(
            "noc", f"{net.name}.{cls}.busy",
            lambda links=links: busy_sum(links), mode="delta")
        trace.metrics.register(
            "noc", f"{net.name}.{cls}.stall",
            lambda links=links: stall_sum(links), mode="delta")


def attach(machine: Any, trace: Any) -> Any:
    """Instrument ``machine`` with ``trace``; returns the trace."""
    sim = machine.sim
    if sim.tracer is not None:
        raise RuntimeError("machine already has a tracer attached")
    sim.tracer = trace
    memsys = machine.memsys

    trace.metrics.register("engine", "queue_depth", sim.queue_depth)
    trace.metrics.register("engine", "events_executed",
                           lambda: float(sim.events_executed), mode="delta")

    # One track per tile, row-major so Perfetto lists them naturally.
    for node in sorted(machine.cores, key=lambda xy: (xy[1], xy[0])):
        core = machine.cores[node]
        core._trace = trace
        core._trace_track = trace.track("tiles", f"tile {node[0]},{node[1]}")

    # Cache banks: occupancy spans on the bank port + MSHR samplers.
    for (cell_xy, bank_idx), bank in sorted(memsys.banks.items()):
        bank._trace = trace
        bank._trace_track = trace.track(
            "cache", f"bank {cell_xy[0]},{cell_xy[1]}:{bank_idx}")
        trace.metrics.register(
            "cache", f"{bank.name}.mshr",
            lambda bank=bank: float(len(bank.mshr)))
    for cell_xy in sorted(memsys.hbm):
        trace.metrics.register(
            "cache", f"hit_rate{cell_xy}",
            lambda memsys=memsys, cell_xy=cell_xy:
                memsys.cache_hit_rate(cell_xy) or 0.0)

    # HBM pseudo-channels: one track each, plus bus-cycle rate samplers.
    for cell_xy, channel in sorted(memsys.hbm.items()):
        channel._trace = trace
        channel._trace_track = trace.track(
            "hbm", f"channel {cell_xy[0]},{cell_xy[1]}")
        trace.metrics.register(
            "hbm", f"{channel.name}.read_cycles",
            lambda ch=channel: ch.read_cycles, mode="delta")
        trace.metrics.register(
            "hbm", f"{channel.name}.write_cycles",
            lambda ch=channel: ch.write_cycles, mode="delta")

    # PIM engines (present only when the config enables PIM): one track
    # per engine with a span per command execution.
    for cell_xy, engine in sorted(getattr(memsys, "pim_engines", {}).items()):
        engine._trace = trace
        engine._trace_track = trace.track(
            "pim", f"channel {cell_xy[0]},{cell_xy[1]}")
        trace.metrics.register(
            "pim", f"{engine.name}.mac_bank_ops",
            lambda eng=engine: eng.counters.get("mac_bank_ops"),
            mode="delta")

    # Wormhole strips: one track per physical channel (they serialize
    # through per-channel reservation, so spans never overlap).
    for (cell_xy, side), strip in sorted(memsys.strips.items()):
        strip._trace = trace
        strip._trace_tracks = tuple(
            trace.track("wormhole",
                        f"{side} {cell_xy[0]},{cell_xy[1]} ch{idx}")
            for idx in range(strip.num_channels))

    # NoC planes: per-link-class utilization samplers + congestion
    # instants (per-packet spans on shared links would overlap, which
    # the Chrome-trace nesting model cannot represent).
    _attach_network(memsys.req_net, trace)
    _attach_network(memsys.resp_net, trace)

    # Barriers are created at launch time (partition_cell reads
    # ``sim.tracer``); the runtime/launches track exists up front.
    trace.track("runtime", "launches")
    return trace
