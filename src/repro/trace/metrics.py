"""The metrics registry: named time-series samplers on the simulator clock.

Components (or :func:`repro.trace.attach`) register zero-argument
callables that read a live quantity -- queue depth, MSHR occupancy, link
busy-cycles, hit rate.  The registry samples every series once per
``window`` cycles, driven by :meth:`Trace.engine_tick` from the event
loop (passively: no sampler events enter the queue, so sampling cannot
perturb simulated timing).

Two sampler modes:

* ``"value"`` -- record the callable's return directly (gauges:
  occupancy, depth, rate);
* ``"delta"`` -- record the increase since the previous sample
  (monotonic cycle/byte counters become per-window rates).

Each sample is also emitted as a Chrome-trace counter event, so Perfetto
renders the series under its group's process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class MetricSeries:
    """One registered sampler and its collected (time, value) samples."""

    __slots__ = ("group", "name", "fn", "mode", "track", "times", "values",
                 "_last_raw")

    def __init__(self, group: str, name: str, fn: Callable[[], float],
                 mode: str, track: int) -> None:
        self.group = group
        self.name = name
        self.fn = fn
        self.mode = mode
        self.track = track
        self.times: List[float] = []
        self.values: List[float] = []
        self._last_raw = 0.0

    @property
    def key(self) -> str:
        return f"{self.group}/{self.name}"

    def _take(self) -> float:
        raw = float(self.fn() or 0.0)
        if self.mode == "delta":
            value = raw - self._last_raw
            self._last_raw = raw
            return value
        return raw

    def stats(self) -> Dict[str, float]:
        """min/max/mean/last over the collected samples."""
        if not self.values:
            return {"samples": 0}
        values = self.values
        return {
            "samples": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "last": values[-1],
        }


class MetricsRegistry:
    """All metric series of one trace, sampled on a shared window."""

    def __init__(self, trace: Any, window: float = 100.0,
                 enabled: bool = True) -> None:
        if window <= 0:
            raise ValueError("metrics window must be positive")
        self.trace = trace
        self.window = window
        self.enabled = enabled
        self.series: List[MetricSeries] = []
        self._by_key: Dict[str, MetricSeries] = {}
        #: Next sample boundary; ``Trace.engine_tick`` compares against it.
        self.next_at: float = window if enabled else float("inf")

    def register(self, group: str, name: str, fn: Callable[[], float],
                 mode: str = "value") -> Optional[MetricSeries]:
        """Add a sampler; returns its series (``None`` if metrics are off)."""
        if not self.enabled:
            return None
        if mode not in ("value", "delta"):
            raise ValueError(f"unknown sampler mode {mode!r}")
        key = f"{group}/{name}"
        if key in self._by_key:
            raise ValueError(f"metric {key!r} registered twice")
        track = self.trace.track(group, "counters")
        series = MetricSeries(group, name, fn, mode, track)
        self.series.append(series)
        self._by_key[key] = series
        return series

    def get(self, key: str) -> Optional[MetricSeries]:
        return self._by_key.get(key)

    def sample(self, now: float) -> None:
        """Sample every series at ``now`` and advance the window."""
        if not self.enabled:
            return
        counter = self.trace.counter
        for series in self.series:
            value = series._take()
            series.times.append(now)
            series.values.append(value)
            counter(series.track, series.name, now, value)
        # Next boundary strictly after ``now``, aligned to the window grid.
        self.next_at = (now // self.window + 1) * self.window

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-series summary statistics keyed by ``group/name``."""
        return {series.key: series.stats() for series in self.series}
