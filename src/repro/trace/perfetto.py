"""Chrome-trace (Perfetto-loadable) JSON export.

Emits the JSON Object Format: ``{"traceEvents": [...]}`` where each
event carries the Chrome-trace required keys (``ph``, ``ts``, ``pid``,
``tid``, ``name``).  Track groups become processes (``M``/``process_name``
metadata), tracks become threads (``M``/``thread_name``), spans are ``X``
(complete) events, instants are ``i``, counters are ``C``.

One simulated cycle maps to one microsecond, so Perfetto's ruler reads
directly in cycles.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: Preferred ordering of process groups in the Perfetto UI; unknown
#: groups sort after these, alphabetically.
GROUP_ORDER = ("runtime", "tiles", "cache", "hbm", "wormhole", "noc",
               "engine", "metrics")

#: Keys every emitted (non-metadata) event must carry.
REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


def _group_pids(trace: Any) -> Dict[str, int]:
    groups = sorted({group for group, _name in trace.tracks},
                    key=lambda g: (GROUP_ORDER.index(g)
                                   if g in GROUP_ORDER else len(GROUP_ORDER),
                                   g))
    return {group: pid for pid, group in enumerate(groups, start=1)}


def to_chrome(trace: Any) -> Dict[str, Any]:
    """Convert a :class:`~repro.trace.Trace` into Chrome-trace JSON."""
    pids = _group_pids(trace)
    events: List[Dict[str, Any]] = []
    for group, pid in pids.items():
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "ts": 0,
                       "args": {"name": group}})
    track_pid: List[int] = []
    for tid, (group, name) in enumerate(trace.tracks):
        pid = pids[group]
        track_pid.append(pid)
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "ts": 0,
                       "args": {"name": name}})
    for record in trace.events:
        ph, track, name, ts, payload, args = record
        event: Dict[str, Any] = {
            "ph": ph, "name": name, "pid": track_pid[track], "tid": track,
            "ts": float(ts),
        }
        if ph == "X":
            event["dur"] = float(payload)
        elif ph == "i":
            event["s"] = "t"  # thread-scoped instant
        elif ph == "C":
            event["args"] = {"value": float(payload)}
        if args is not None:
            event.setdefault("args", {}).update(
                args if isinstance(args, dict) else {"detail": args})
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.trace",
            "time_unit": "1 event-ts us == 1 simulated core cycle",
            "final_cycle": float(trace.final_time),
            "dropped_events": trace.dropped_events,
        },
    }


def write_chrome(trace: Any, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome(trace), fh)


def validate_chrome(doc: Dict[str, Any]) -> List[str]:
    """Check a document against the Chrome-trace event schema.

    Returns a list of human-readable problems (empty == valid).  Used by
    the export smoke test and the CI trace step.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["'traceEvents' is not a non-empty array"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for key in REQUIRED_KEYS:
            if key not in event:
                problems.append(f"event {i} ({event.get('ph')!r}) lacks {key!r}")
        ph = event.get("ph")
        if ph not in ("X", "i", "C", "M"):
            problems.append(f"event {i} has unknown ph {ph!r}")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(f"X event {i} lacks a numeric 'dur'")
            elif event["dur"] < 0:
                problems.append(f"X event {i} has negative dur {event['dur']}")
        if ph == "C" and "value" not in event.get("args", {}):
            problems.append(f"C event {i} lacks args.value")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} has invalid ts {ts!r}")
        if len(problems) > 20:
            problems.append("... (truncated)")
            break
    return problems
