"""Text/JSON summarization of a recorded trace.

Complements the end-of-run aggregation in :mod:`repro.perf.counters`:
where that module reduces ``RunResult`` breakdowns for the paper's
figures, this one answers "what did the timeline record" -- span counts
and total occupancy per event name, per-group track counts, and the
metric-series statistics.
"""

from __future__ import annotations

from typing import Any, Dict


def trace_report(trace: Any) -> Dict[str, Any]:
    """A JSON-able summary of one trace."""
    groups: Dict[str, int] = {}
    for group, _name in trace.tracks:
        groups[group] = groups.get(group, 0) + 1
    spans: Dict[str, Dict[str, float]] = {}
    instants: Dict[str, int] = {}
    counters = 0
    for record in trace.events:
        ph, _track, name, _ts, payload, _args = record
        if ph == "X":
            entry = spans.setdefault(name, {"count": 0, "cycles": 0.0})
            entry["count"] += 1
            entry["cycles"] += float(payload)
        elif ph == "i":
            instants[name] = instants.get(name, 0) + 1
        else:
            counters += 1
    return {
        "final_cycle": float(trace.final_time),
        "tracks": len(trace.tracks),
        "tracks_by_group": groups,
        "events": len(trace.events),
        "dropped_events": trace.dropped_events,
        "counter_samples": counters,
        "spans": spans,
        "instants": instants,
        "metrics": trace.metrics.report(),
    }


def format_report(report: Dict[str, Any], top: int = 12) -> str:
    """Render :func:`trace_report` output as readable text."""
    lines = [
        f"trace: {report['events']} events on {report['tracks']} tracks "
        f"(final cycle {report['final_cycle']:g})",
        "tracks: " + ", ".join(f"{group}={n}" for group, n in
                               sorted(report["tracks_by_group"].items())),
    ]
    if report["dropped_events"]:
        lines.append(f"dropped: {report['dropped_events']} events past the cap")
    spans = sorted(report["spans"].items(),
                   key=lambda kv: kv[1]["cycles"], reverse=True)
    if spans:
        lines.append("top spans (by occupied cycles):")
        for name, entry in spans[:top]:
            lines.append(f"  {name:24s} x{entry['count']:<8d} "
                         f"{entry['cycles']:>12,.0f} cycles")
    if report["instants"]:
        pairs = sorted(report["instants"].items(),
                       key=lambda kv: kv[1], reverse=True)
        lines.append("instants: " + ", ".join(f"{k}={v}"
                                              for k, v in pairs[:top]))
    metrics = report["metrics"]
    if metrics:
        lines.append(f"metrics ({len(metrics)} series, "
                     f"{report['counter_samples']} samples):")
        shown = 0
        for key, stats in sorted(metrics.items()):
            if not stats.get("samples"):
                continue
            lines.append(f"  {key:32s} last={stats['last']:<12g} "
                         f"mean={stats['mean']:<12.4g} max={stats['max']:g}")
            shown += 1
            if shown >= top:
                remaining = len(metrics) - shown
                if remaining > 0:
                    lines.append(f"  ... {remaining} more series")
                break
    return "\n".join(lines)
